//! Integration tests for the reduced-knowledge settings (§4.3/§4.4) and the
//! robust-training defense (§5.5), at smoke-test scale.

use diva_repro::core::attack::{linf_distance, pgd_attack, AttackCfg};
use diva_repro::core::pipeline::{
    blackbox_diva, evaluate_attack, prepare_blackbox, prepare_semi_blackbox, semi_blackbox_diva,
    BlackboxAssets, SemiBlackboxAssets,
};
use diva_repro::core::robust::{adversarial_training, RobustCfg};
use diva_repro::data::imagenet::{synth_imagenet, ImagenetCfg};
use diva_repro::data::select_validation;
use diva_repro::distill::{agreement, DistillCfg};
use diva_repro::models::{Architecture, ModelCfg};
use diva_repro::nn::train::{evaluate, train_classifier, TrainCfg};
use diva_repro::nn::{losses, Infer};
use diva_repro::quant::{Int8Engine, QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

struct World {
    original: diva_repro::nn::Network,
    qat: QatNetwork,
    deployed: Int8Engine,
    semi: SemiBlackboxAssets,
    black: BlackboxAssets,
    attack_set: diva_repro::data::Dataset,
    attacker_images: diva_repro::tensor::Tensor,
}

fn world() -> &'static World {
    static W: std::sync::OnceLock<World> = std::sync::OnceLock::new();
    W.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(60);
        let data_cfg = ImagenetCfg {
            noise: 0.06,
            color_jitter: 0.12,
            ..ImagenetCfg::default()
        };
        let train = synth_imagenet(1024, &data_cfg, 60).retain_classes(4);
        let val = synth_imagenet(1024, &data_cfg, 61).retain_classes(4);
        let attacker = synth_imagenet(512, &data_cfg, 62).retain_classes(4);
        let mut original = Architecture::ResNet.build(&ModelCfg::standard(4), &mut rng);
        let tcfg = TrainCfg {
            epochs: 12,
            batch_size: 32,
            lr: 0.03,
            momentum: 0.9,
            weight_decay: 1e-4,
        };
        train_classifier(&mut original, &train.images, &train.labels, &tcfg, &mut rng);
        let acc = evaluate(&original, &val.images, &val.labels);
        assert!(acc > 0.6, "victim failed to train: {acc}");
        let mut qat = QatNetwork::new(original.clone(), QuantCfg::default());
        qat.calibrate(&train.images);
        let deployed = Int8Engine::from_qat(&qat);

        let distill_cfg = DistillCfg::default();
        let surr_cfg = TrainCfg {
            epochs: 6,
            batch_size: 32,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let semi = prepare_semi_blackbox(
            &deployed,
            original.graph(),
            &attacker.images,
            &distill_cfg,
            &surr_cfg,
            &mut rng,
        );
        let fresh = Architecture::ResNet.build(&ModelCfg::standard(4), &mut rng);
        let black = prepare_blackbox(
            &deployed,
            fresh,
            &attacker.images,
            &distill_cfg,
            &surr_cfg,
            QuantCfg::default(),
            &mut rng,
        );
        let attack_set = select_validation(&val, &[&original, &qat], 12);
        assert!(attack_set.len() >= 24, "attack set: {}", attack_set.len());
        World {
            original,
            qat,
            deployed,
            semi,
            black,
            attack_set,
            attacker_images: attacker.images,
        }
    })
}

#[test]
fn surrogates_imitate_the_deployed_model() {
    let w = world();
    // Semi-blackbox: the recovered adapted model is near-exact; the
    // distilled surrogate close behind.
    assert!(agreement(&w.semi.recovered_adapted, &w.deployed, &w.attacker_images) > 0.9);
    assert!(agreement(&w.semi.surrogate_original, &w.deployed, &w.attacker_images) > 0.7);
    // Blackbox surrogates (distilled from scratch through query access
    // only) clear 4-class chance (0.25) by a wide margin.
    assert!(agreement(&w.black.surrogate_original, &w.deployed, &w.attacker_images) > 0.4);
    assert!(agreement(&w.black.surrogate_adapted, &w.deployed, &w.attacker_images) > 0.4);
}

#[test]
fn reduced_knowledge_attacks_stay_within_budget_and_score() {
    let w = world();
    let cfg = AttackCfg::paper_default();
    let semi_adv = semi_blackbox_diva(
        &w.semi,
        &w.attack_set.images,
        &w.attack_set.labels,
        1.0,
        &cfg,
    );
    let black_adv = blackbox_diva(
        &w.black,
        &w.attack_set.images,
        &w.attack_set.labels,
        1.0,
        &cfg,
    );
    for adv in [&semi_adv, &black_adv] {
        assert!(linf_distance(adv, &w.attack_set.images) <= cfg.eps + 1e-6);
        assert!(adv.min() >= 0.0 && adv.max() <= 1.0);
    }
    // Judged against the true models: the semi-blackbox attack must achieve
    // some evasive success and stay stealthier than white-noise PGD.
    let semi_counts = evaluate_attack(&w.original, &w.qat, &semi_adv, &w.attack_set.labels);
    let pgd = pgd_attack(&w.qat, &w.attack_set.images, &w.attack_set.labels, &cfg);
    let pgd_counts = evaluate_attack(&w.original, &w.qat, &pgd, &w.attack_set.labels);
    assert!(
        semi_counts.original_fooled_rate() <= pgd_counts.original_fooled_rate(),
        "semi-blackbox fooled the original more than PGD: {} vs {}",
        semi_counts.original_fooled_rate(),
        pgd_counts.original_fooled_rate()
    );
}

#[test]
fn adversarial_finetuning_hardens_the_victim() {
    let w = world();
    let eval_cfg = AttackCfg::paper_default();
    let x = &w.attack_set.images;
    let labels = &w.attack_set.labels;
    // Attack-only success against the undefended fp32 model.
    let before_adv = pgd_attack(&w.original, x, labels, &eval_cfg);
    let before_acc = losses::accuracy(&w.original.logits(&before_adv), labels);

    // Short adversarial finetune of a copy.
    let mut rng = StdRng::seed_from_u64(8);
    let mut hardened = w.original.clone();
    let rcfg = RobustCfg {
        train: TrainCfg {
            epochs: 4,
            batch_size: 32,
            lr: 0.005,
            momentum: 0.9,
            weight_decay: 0.0,
        },
        attack: AttackCfg::with_steps(5),
    };
    adversarial_training(&mut hardened, x, labels, &rcfg, &mut rng);
    let after_adv = pgd_attack(&hardened, x, labels, &eval_cfg);
    let after_acc = losses::accuracy(&hardened.logits(&after_adv), labels);
    assert!(
        after_acc >= before_acc,
        "adversarial finetuning lowered robust accuracy: {before_acc} -> {after_acc}"
    );
}
