//! Integration tests of the adaptation pipeline spanning crates:
//! training → QAT → int8 engine deployment → weight extraction, and
//! training → pruning → quantization, across all architecture families.

use diva_repro::data::imagenet::{synth_imagenet, ImagenetCfg};
use diva_repro::distill::agreement;
use diva_repro::models::{Architecture, ModelCfg};
use diva_repro::nn::train::{evaluate, train_classifier, TrainCfg};
use diva_repro::prune::{prune_with_finetune, PruneCfg};
use diva_repro::quant::{extract_qat, Int8Engine, QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

type Trained = (
    diva_repro::nn::Network,
    diva_repro::data::Dataset,
    diva_repro::data::Dataset,
);

/// Trains one small victim per architecture, cached across this binary's
/// tests (training dominates the runtime).
fn train_small(arch: Architecture) -> &'static Trained {
    static CACHE: std::sync::OnceLock<
        std::sync::Mutex<std::collections::HashMap<&'static str, &'static Trained>>,
    > = std::sync::OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let mut guard = cache.lock().unwrap();
    if let Some(t) = guard.get(arch.name()) {
        return t;
    }
    let seed = 60;
    let mut rng = StdRng::seed_from_u64(seed);
    // Easy data + a hot learning rate: these tests check pipeline
    // correctness, not the paper's accuracy regime.
    let data_cfg = ImagenetCfg {
        noise: 0.06,
        color_jitter: 0.12,
        ..ImagenetCfg::default()
    };
    // A 4-class subset converges quickly for every family; these tests
    // check cross-crate correctness, not the paper's accuracy regime.
    let train = synth_imagenet(1024, &data_cfg, seed).retain_classes(4);
    let val = synth_imagenet(2048, &data_cfg, seed + 1).retain_classes(4);
    let mut net = arch.build(&ModelCfg::standard(4), &mut rng);
    let tcfg = TrainCfg {
        epochs: 12,
        batch_size: 32,
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    train_classifier(&mut net, &train.images, &train.labels, &tcfg, &mut rng);
    let acc = evaluate(&net, &val.images, &val.labels);
    assert!(acc > 0.6, "{arch} failed to train: acc {acc}");
    let leaked: &'static Trained = Box::leak(Box::new((net, train, val)));
    guard.insert(arch.name(), leaked);
    leaked
}

#[test]
fn quantization_preserves_topline_accuracy_all_families() {
    for arch in Architecture::ALL {
        let (net, train, val) = train_small(arch).clone();
        let fp_acc = evaluate(&net, &val.images, &val.labels);
        let mut qat = QatNetwork::new(net, QuantCfg::default());
        qat.calibrate(&train.images);
        let q_acc = evaluate(&qat, &val.images, &val.labels);
        // Table 1's premise: the quantized model retains ≥90% of the
        // original's (already modest, small-model) accuracy.
        assert!(
            q_acc >= 0.9 * fp_acc - 0.02,
            "{arch}: fp {fp_acc} vs int8 {q_acc}"
        );
    }
}

#[test]
fn deployed_engine_matches_qat_for_every_family() {
    for arch in Architecture::ALL {
        let (net, train, val) = train_small(arch).clone();
        let mut qat = QatNetwork::new(net, QuantCfg::default());
        qat.calibrate(&train.images);
        let engine = Int8Engine::from_qat(&qat);
        let agree = agreement(&qat, &engine, &val.images);
        // Rounding (±1 LSB per op) flips only low-confidence samples, so
        // agreement is high but not perfect — as with QAT vs TFLite.
        assert!(
            agree > 0.82,
            "{arch}: QAT/engine prediction agreement only {agree}"
        );
        let qat_acc = evaluate(&qat, &val.images, &val.labels);
        let eng_acc = evaluate(&engine, &val.images, &val.labels);
        assert!(
            (qat_acc - eng_acc).abs() < 0.06,
            "{arch}: QAT acc {qat_acc} vs engine acc {eng_acc}"
        );
    }
}

#[test]
fn extraction_round_trips_through_deployment() {
    // victim QAT -> engine -> attacker extraction -> same predictions:
    // the §4.3 "recover the differentiable model ... retain its accuracy
    // without any fine-tuning" property, end to end.
    let (net, train, val) = train_small(Architecture::ResNet).clone();
    let graph = net.graph().clone();
    let mut qat = QatNetwork::new(net, QuantCfg::default());
    qat.calibrate(&train.images);
    let engine = Int8Engine::from_qat(&qat);
    let recovered = extract_qat(&engine, &graph);
    let engine_acc = evaluate(&engine, &val.images, &val.labels);
    let recovered_acc = evaluate(&recovered, &val.images, &val.labels);
    assert!(
        (engine_acc - recovered_acc).abs() < 0.05,
        "engine {engine_acc} vs recovered {recovered_acc}"
    );
    assert!(agreement(&recovered, &engine, &val.images) > 0.9);
}

#[test]
fn pruning_then_quantization_preserves_sparsity() {
    let (net, train, _val) = train_small(Architecture::MobileNet).clone();
    let mut rng = StdRng::seed_from_u64(63);
    let mut pruned = net;
    prune_with_finetune(
        &mut pruned,
        &train.images,
        &train.labels,
        &PruneCfg::with_sparsity(0.5),
        &TrainCfg {
            epochs: 4,
            batch_size: 32,
            lr: 0.005,
            momentum: 0.9,
            weight_decay: 0.0,
        },
        &mut rng,
    );
    let sparsity_before = pruned.params().global_sparsity();
    assert!(sparsity_before > 0.4, "sparsity {sparsity_before}");

    // Quantize the pruned model; QAT must not resurrect pruned weights.
    let mut pq = QatNetwork::new(pruned, QuantCfg::default());
    pq.calibrate(&train.images);
    pq.train_qat(
        &train.images,
        &train.labels,
        &TrainCfg {
            epochs: 1,
            batch_size: 32,
            lr: 0.004,
            momentum: 0.9,
            weight_decay: 0.0,
        },
        &mut rng,
    );
    let sparsity_after = pq.network().params().global_sparsity();
    assert!(
        (sparsity_after - sparsity_before).abs() < 1e-6,
        "QAT changed sparsity: {sparsity_before} -> {sparsity_after}"
    );
    // And the engine's weights for masked positions are exactly zero.
    let engine = Int8Engine::from_qat(&pq);
    let (weights, _, _) = engine.export_parameters(pq.network().graph());
    let zeros: usize = weights
        .iter()
        .filter(|t| t.shape().rank() >= 2)
        .map(|t| t.data().iter().filter(|&&v| v == 0.0).count())
        .sum();
    let kernels: usize = weights
        .iter()
        .filter(|t| t.shape().rank() >= 2)
        .map(|t| t.len())
        .sum();
    assert!(
        zeros as f32 / kernels as f32 > 0.45,
        "deployed weights lost sparsity: {zeros}/{kernels}"
    );
}
