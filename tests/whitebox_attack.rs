//! End-to-end integration test of the headline result: whitebox DIVA fools
//! the adapted model while evading the original, and does so far more
//! stealthily than PGD.
//!
//! Runs a miniature version of the §5.2 pipeline (train → QAT → select →
//! attack → evaluate) in under a minute.

use diva_repro::core::attack::{diva_attack, linf_distance, pgd_attack, AttackCfg};
use diva_repro::core::pipeline::evaluate_attack;
use diva_repro::data::imagenet::{synth_imagenet, ImagenetCfg};
use diva_repro::data::select_validation;
use diva_repro::metrics::dssim;
use diva_repro::models::{Architecture, ModelCfg};
use diva_repro::nn::train::{evaluate, train_classifier, TrainCfg};
use diva_repro::quant::{QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

struct Setup {
    original: diva_repro::nn::Network,
    adapted: QatNetwork,
    attack_set: diva_repro::data::Dataset,
}

/// The victim is expensive to train; share it across this binary's tests.
fn setup() -> &'static Setup {
    static SETUP: std::sync::OnceLock<Setup> = std::sync::OnceLock::new();
    SETUP.get_or_init(build_setup)
}

fn build_setup() -> Setup {
    let mut rng = StdRng::seed_from_u64(42);
    let data_cfg = ImagenetCfg {
        noise: 0.13,
        color_jitter: 0.26,
        ..ImagenetCfg::default()
    };
    let train = synth_imagenet(1024, &data_cfg, 1);
    let val = synth_imagenet(512, &data_cfg, 2);
    let mut original = Architecture::ResNet.build(&ModelCfg::standard(16), &mut rng);
    let tcfg = TrainCfg {
        epochs: 16,
        batch_size: 32,
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    train_classifier(&mut original, &train.images, &train.labels, &tcfg, &mut rng);
    let acc = evaluate(&original, &val.images, &val.labels);
    assert!(acc > 0.5, "victim failed to train (acc {acc})");

    let mut adapted = QatNetwork::new(original.clone(), QuantCfg::default());
    adapted.calibrate(&train.images);
    adapted.train_qat(
        &train.images,
        &train.labels,
        &TrainCfg {
            epochs: 1,
            lr: 0.004,
            ..tcfg
        },
        &mut rng,
    );
    let attack_set = select_validation(&val, &[&original, &adapted], 6);
    assert!(
        attack_set.len() >= 32,
        "attack set too small: {}",
        attack_set.len()
    );
    Setup {
        original,
        adapted,
        attack_set,
    }
}

#[test]
fn diva_is_evasive_where_pgd_is_not() {
    let s = setup();
    let cfg = AttackCfg::paper_default();
    let x = &s.attack_set.images;
    let labels = &s.attack_set.labels;

    let pgd = pgd_attack(&s.adapted, x, labels, &cfg);
    let diva = diva_attack(&s.original, &s.adapted, x, labels, 1.0, &cfg);

    // Budget discipline for both attacks.
    for adv in [&pgd, &diva] {
        assert!(linf_distance(adv, x) <= cfg.eps + 1e-6);
        assert!(adv.min() >= 0.0 && adv.max() <= 1.0);
    }

    let pgd_counts = evaluate_attack(&s.original, &s.adapted, &pgd, labels);
    let diva_counts = evaluate_attack(&s.original, &s.adapted, &diva, labels);

    // Headline: DIVA's joint (evade + attack) success beats PGD's.
    assert!(
        diva_counts.top1_rate() > pgd_counts.top1_rate(),
        "DIVA {} vs PGD {} joint success",
        diva_counts.top1_rate(),
        pgd_counts.top1_rate()
    );
    // Stealth: PGD collaterally fools the original far more often than DIVA.
    assert!(
        diva_counts.original_fooled_rate() < pgd_counts.original_fooled_rate(),
        "DIVA fooled the original {} vs PGD {}",
        diva_counts.original_fooled_rate(),
        pgd_counts.original_fooled_rate()
    );
    // DIVA must actually attack: a decent share of the edge predictions flip.
    assert!(
        diva_counts.top1_rate() > 0.08,
        "DIVA joint success too low: {}",
        diva_counts.top1_rate()
    );

    // Imperceptibility (§5.2 DSSIM check).
    for i in (0..s.attack_set.len()).step_by(7) {
        let d = dssim(&x.index_batch(i), &diva.index_batch(i));
        assert!(d < 0.05, "sample {i} dssim {d}");
    }
}

#[test]
fn attacked_images_evade_validation_on_the_original() {
    // The operator's validation view: accuracy of the original model on
    // DIVA-attacked images stays close to clean accuracy, while the adapted
    // model's collapses.
    let s = setup();
    let cfg = AttackCfg::paper_default();
    let x = &s.attack_set.images;
    let labels = &s.attack_set.labels;
    let diva = diva_attack(&s.original, &s.adapted, x, labels, 1.0, &cfg);
    let orig_acc = evaluate(&s.original, &diva, labels);
    let adapted_acc = evaluate(&s.adapted, &diva, labels);
    assert!(
        orig_acc > adapted_acc + 0.1,
        "no gap between original ({orig_acc}) and adapted ({adapted_acc}) accuracy"
    );
    assert!(
        orig_acc > 0.85,
        "original model should still validate most attacked images, got {orig_acc}"
    );
}
