//! `diva-data` — procedural image datasets standing in for ImageNet, MNIST
//! and PubFig.
//!
//! The paper's data (50k ImageNet images, MNIST, 11,640 PubFig faces) is not
//! available offline, so each dataset is replaced by a *procedural generator*
//! with the properties the experiments actually rely on:
//!
//! * [`synth_imagenet`] — 16 visually confusable object classes
//!   (shape × palette with heavy jitter and noise). Confusability matters:
//!   the paper's phenomenon — instability between a model and its quantized
//!   adaptation — lives on samples near decision boundaries, so the classes
//!   must genuinely overlap.
//! * [`synth_mnist`] — glyph-rendered digits for the PCA study (Fig. 4).
//! * [`synth_faces`] — parametric face identities for the case study (§6).
//!
//! All generators are deterministic given their seed, and emit images in
//! `[0, 1]` (the domain the attacks clip to).

pub mod faces;
pub mod imagenet;
pub mod mnist;
pub mod selection;

pub use faces::synth_faces;
pub use imagenet::synth_imagenet;
pub use mnist::synth_mnist;
pub use selection::select_validation;

use diva_tensor::Tensor;

/// A labelled image dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Batched images `[n, c, h, w]`, values in `[0, 1]`.
    pub images: Tensor,
    /// Class index per image.
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Builds a dataset, checking invariants.
    ///
    /// # Panics
    ///
    /// Panics if labels and images disagree in count or a label is out of
    /// range.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.dims()[0], labels.len(), "images/labels mismatch");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            images,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample shape `[c, h, w]`.
    pub fn sample_shape(&self) -> [usize; 3] {
        let d = self.images.dims();
        [d[1], d[2], d[3]]
    }

    /// Selects the subset at `idx` (cloning).
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let images = diva_nn::train::gather(&self.images, idx);
        let labels = idx.iter().map(|&i| self.labels[i]).collect();
        Dataset::new(images, labels, self.num_classes)
    }

    /// Restricts the dataset to labels `0..k` (useful for fast smoke tests
    /// on an easier few-class version of a generator's task).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds `num_classes`.
    pub fn retain_classes(&self, k: usize) -> Dataset {
        assert!(k > 0 && k <= self.num_classes, "bad class count {k}");
        let idx: Vec<usize> = (0..self.len()).filter(|&i| self.labels[i] < k).collect();
        let mut d = self.subset(&idx);
        d.num_classes = k;
        d
    }

    /// Splits off the first `n` samples as one dataset and the rest as
    /// another (generators already shuffle, so this is a random split).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split beyond dataset size");
        let head: Vec<usize> = (0..n).collect();
        let tail: Vec<usize> = (n..self.len()).collect();
        (self.subset(&head), self.subset(&tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_invariants() {
        let images = Tensor::zeros(&[4, 1, 2, 2]);
        let d = Dataset::new(images, vec![0, 1, 0, 1], 2);
        assert_eq!(d.len(), 4);
        assert_eq!(d.sample_shape(), [1, 2, 2]);
        let (a, b) = d.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        let s = d.subset(&[3, 0]);
        assert_eq!(s.labels, vec![1, 0]);
    }

    #[test]
    fn retain_classes_filters_and_renumbers() {
        let images = Tensor::zeros(&[6, 1, 2, 2]);
        let d = Dataset::new(images, vec![0, 1, 2, 0, 1, 2], 3);
        let r = d.retain_classes(2);
        assert_eq!(r.len(), 4);
        assert_eq!(r.num_classes, 2);
        assert!(r.labels.iter().all(|&l| l < 2));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let _ = Dataset::new(Tensor::zeros(&[1, 1, 2, 2]), vec![5], 2);
    }
}
