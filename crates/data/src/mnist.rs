//! The MNIST stand-in: digits rendered from a 5×7 bitmap font with jitter.
//!
//! Used by the Fig. 4 PCA study, which needs many samples per digit whose
//! learned representations cluster by class.

use diva_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::Dataset;

/// Image side length (grayscale `1×16×16`).
pub const SIDE: usize = 16;

/// Classic 5×7 seven-segment-style bitmap font for digits 0–9, one string
/// row per scanline ('#' = ink).
const GLYPHS: [[&str; 7]; 10] = [
    [
        " ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### ",
    ], // 0
    [
        "  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### ",
    ], // 1
    [
        " ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####",
    ], // 2
    [
        " ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### ",
    ], // 3
    [
        "   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # ",
    ], // 4
    [
        "#####", "#    ", "#### ", "    #", "    #", "#   #", " ### ",
    ], // 5
    [
        " ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### ",
    ], // 6
    [
        "#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   ",
    ], // 7
    [
        " ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### ",
    ], // 8
    [
        " ### ", "#   #", "#   #", " ####", "    #", "    #", " ### ",
    ], // 9
];

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MnistCfg {
    /// Per-pixel Gaussian noise std-dev.
    pub noise: f32,
    /// Positional jitter in pixels.
    pub pos_jitter: f32,
}

impl Default for MnistCfg {
    fn default() -> Self {
        MnistCfg {
            noise: 0.08,
            pos_jitter: 1.5,
        }
    }
}

/// Renders one digit sample with jittered placement, scale and stroke
/// intensity.
pub fn render_digit(digit: usize, cfg: &MnistCfg, rng: &mut StdRng) -> Tensor {
    assert!(digit < 10, "digit {digit} out of range");
    let glyph = &GLYPHS[digit];
    // Scale factor ~2x with jitter; glyph is 5x7 -> ~10x14 on a 16x16 canvas.
    let sx = rng.gen_range(1.7..2.2f32);
    let sy = rng.gen_range(1.7..2.2f32);
    let ox = (SIDE as f32 - 5.0 * sx) / 2.0 + jitter(rng, cfg.pos_jitter);
    let oy = (SIDE as f32 - 7.0 * sy) / 2.0 + jitter(rng, cfg.pos_jitter);
    let ink = rng.gen_range(0.75..1.0f32);
    let bg = rng.gen_range(0.0..0.12f32);
    let mut data = vec![0.0f32; SIDE * SIDE];
    for y in 0..SIDE {
        for x in 0..SIDE {
            // Map pixel back into glyph space with bilinear-ish sampling.
            let gx = (x as f32 + 0.5 - ox) / sx;
            let gy = (y as f32 + 0.5 - oy) / sy;
            let mut v = bg;
            if gx >= 0.0 && gy >= 0.0 {
                let (gi, gj) = (gx as usize, gy as usize);
                if gi < 5 && gj < 7 && GLYPHS[digit][gj].as_bytes()[gi] == b'#' {
                    v = ink;
                }
            }
            let _ = glyph;
            data[y * SIDE + x] = (v + gauss(rng) * cfg.noise).clamp(0.0, 1.0);
        }
    }
    Tensor::from_vec(data, &[1, SIDE, SIDE])
}

/// Generates a shuffled, class-balanced digit dataset of `n` samples.
pub fn synth_mnist(n: usize, cfg: &MnistCfg, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % 10;
        images.push(render_digit(digit, cfg, &mut rng));
        labels.push(digit);
    }
    let mut idx: Vec<usize> = (0..n).collect();
    use rand::seq::SliceRandom;
    idx.shuffle(&mut rng);
    let images: Vec<Tensor> = idx.iter().map(|&i| images[i].clone()).collect();
    let labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
    Dataset::new(Tensor::stack(&images), labels, 10)
}

/// Uniform jitter in `[-j, j)`, tolerating `j == 0`.
fn jitter(rng: &mut StdRng, j: f32) -> f32 {
    if j > 0.0 {
        rng.gen_range(-j..j)
    } else {
        0.0
    }
}

fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_balance() {
        let d = synth_mnist(50, &MnistCfg::default(), 1);
        assert_eq!(d.len(), 50);
        assert_eq!(d.num_classes, 10);
        assert_eq!(d.sample_shape(), [1, SIDE, SIDE]);
        assert!(d.images.min() >= 0.0 && d.images.max() <= 1.0);
        let mut counts = [0usize; 10];
        for &l in &d.labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    fn digits_have_ink() {
        let cfg = MnistCfg {
            noise: 0.0,
            pos_jitter: 0.0,
        };
        for digit in 0..10 {
            let mut rng = StdRng::seed_from_u64(2);
            let img = render_digit(digit, &cfg, &mut rng);
            // Ink pixels exist and background dominates.
            let bright = img.data().iter().filter(|&&v| v > 0.5).count();
            assert!(bright > 10, "digit {digit} has no ink");
            assert!(bright < 180, "digit {digit} is mostly ink");
        }
    }

    #[test]
    fn distinct_digits_render_distinctly() {
        let cfg = MnistCfg {
            noise: 0.0,
            pos_jitter: 0.0,
        };
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let zero = render_digit(0, &cfg, &mut r1);
        let one = render_digit(1, &cfg, &mut r2);
        assert!(zero.sub(&one).norm1() > 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = synth_mnist(20, &MnistCfg::default(), 9);
        let b = synth_mnist(20, &MnistCfg::default(), 9);
        assert_eq!(a.images, b.images);
    }
}
