//! The ImageNet stand-in: 16 procedurally rendered object classes.
//!
//! A class is a (shape, palette) prototype. Every sample draws per-image
//! jitter — position, scale, hue shift, illumination, background texture and
//! pixel noise — so classes form genuinely overlapping distributions and
//! trained models sit in the 80–95% accuracy band where quantization
//! instability (Table 1's 6–8%) appears.

use diva_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::Dataset;

/// Default image side length.
pub const SIDE: usize = 16;
/// Number of classes (4 shapes × 4 palettes).
pub const NUM_CLASSES: usize = 16;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImagenetCfg {
    /// Image side length in pixels.
    pub side: usize,
    /// Per-pixel Gaussian noise standard deviation.
    pub noise: f32,
    /// Random jitter applied to class colors (uniform half-width).
    pub color_jitter: f32,
    /// Random jitter of shape center in pixels.
    pub pos_jitter: f32,
}

impl Default for ImagenetCfg {
    fn default() -> Self {
        ImagenetCfg {
            side: SIDE,
            noise: 0.10,
            color_jitter: 0.22,
            pos_jitter: 2.0,
        }
    }
}

const SHAPES: [Shape; 4] = [Shape::Disk, Shape::Square, Shape::Ring, Shape::Cross];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Disk,
    Square,
    Ring,
    Cross,
}

/// Base palette per color group (RGB in [0,1]).
const PALETTES: [[f32; 3]; 4] = [
    [0.85, 0.25, 0.20], // red-ish
    [0.20, 0.75, 0.30], // green-ish
    [0.25, 0.35, 0.85], // blue-ish
    [0.80, 0.75, 0.25], // yellow-ish
];

/// Signed "inside-ness" of a pixel for each shape: 1 inside, 0 outside,
/// smooth at the boundary (soft edges make the classes harder and more
/// photo-like than binary masks).
fn coverage(shape: Shape, dx: f32, dy: f32, r: f32) -> f32 {
    let soft = |d: f32| (0.5 - d).clamp(0.0, 1.0).min(1.0);
    match shape {
        Shape::Disk => {
            let d = (dx * dx + dy * dy).sqrt() - r;
            soft(d)
        }
        Shape::Square => {
            let d = dx.abs().max(dy.abs()) - r;
            soft(d)
        }
        Shape::Ring => {
            let d = ((dx * dx + dy * dy).sqrt() - r).abs() - r * 0.35;
            soft(d)
        }
        Shape::Cross => {
            let arm = r * 0.45;
            let d_h = dy.abs().max(dx.abs() - r);
            let d_v = dx.abs().max(dy.abs() - r);
            let d = d_h.min(d_v) - arm;
            soft(d)
        }
    }
}

/// Renders one sample of `class` with jitter drawn from `rng`.
pub fn render_sample(class: usize, cfg: &ImagenetCfg, rng: &mut StdRng) -> Tensor {
    assert!(class < NUM_CLASSES, "class {class} out of range");
    let shape = SHAPES[class / 4];
    let base = PALETTES[class % 4];
    let s_px = cfg.side;
    let side = s_px as f32;
    // Jittered parameters.
    let pos_j = cfg.pos_jitter * side / 16.0;
    let cx = side / 2.0 + jitter(rng, pos_j);
    let cy = side / 2.0 + jitter(rng, pos_j);
    let r = side * rng.gen_range(0.22..0.34);
    let illum = rng.gen_range(0.75..1.15f32);
    let color: Vec<f32> = base
        .iter()
        .map(|&c| (c + jitter(rng, cfg.color_jitter)) * illum)
        .collect();
    let bg_base = rng.gen_range(0.25..0.55f32);
    // Low-frequency background texture: two random sinusoids.
    let (fx, fy) = (rng.gen_range(0.2..0.9f32), rng.gen_range(0.2..0.9f32));
    let (px, py) = (
        rng.gen_range(0.0..std::f32::consts::TAU),
        rng.gen_range(0.0..std::f32::consts::TAU),
    );
    let mut data = vec![0.0f32; 3 * s_px * s_px];
    // Spatial frequencies are defined relative to a 16px canvas so texture
    // looks the same at any resolution.
    let freq_scale = 16.0 / side;
    for y in 0..s_px {
        for x in 0..s_px {
            let cov = coverage(shape, x as f32 + 0.5 - cx, y as f32 + 0.5 - cy, r);
            let tex = 0.08
                * ((x as f32 * fx * freq_scale + px).sin()
                    + (y as f32 * fy * freq_scale + py).sin());
            let bg = bg_base + tex;
            for (ch, &col) in color.iter().enumerate() {
                let v = bg * (1.0 - cov) + col * cov + gauss(rng) * cfg.noise;
                data[ch * s_px * s_px + y * s_px + x] = v.clamp(0.0, 1.0);
            }
        }
    }
    Tensor::from_vec(data, &[3, s_px, s_px])
}

/// Generates a shuffled, class-balanced dataset of `n` samples.
pub fn synth_imagenet(n: usize, cfg: &ImagenetCfg, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % NUM_CLASSES;
        images.push(render_sample(class, cfg, &mut rng));
        labels.push(class);
    }
    // Shuffle sample order (class-balanced counts preserved).
    let mut idx: Vec<usize> = (0..n).collect();
    use rand::seq::SliceRandom;
    idx.shuffle(&mut rng);
    let images: Vec<Tensor> = idx.iter().map(|&i| images[i].clone()).collect();
    let labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
    Dataset::new(Tensor::stack(&images), labels, NUM_CLASSES)
}

/// Uniform jitter in `[-j, j)`, tolerating `j == 0`.
fn jitter(rng: &mut StdRng, j: f32) -> f32 {
    if j > 0.0 {
        rng.gen_range(-j..j)
    } else {
        0.0
    }
}

fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_in_range_dataset() {
        let d = synth_imagenet(64, &ImagenetCfg::default(), 1);
        assert_eq!(d.len(), 64);
        assert_eq!(d.num_classes, NUM_CLASSES);
        assert_eq!(d.sample_shape(), [3, SIDE, SIDE]);
        assert!(d.images.min() >= 0.0 && d.images.max() <= 1.0);
        // Balanced: each class appears 4 times.
        let mut counts = [0usize; NUM_CLASSES];
        for &l in &d.labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = synth_imagenet(32, &ImagenetCfg::default(), 7);
        let b = synth_imagenet(32, &ImagenetCfg::default(), 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        let c = synth_imagenet(32, &ImagenetCfg::default(), 8);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn same_class_varies_between_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = render_sample(5, &ImagenetCfg::default(), &mut rng);
        let b = render_sample(5, &ImagenetCfg::default(), &mut rng);
        assert!(!a.allclose(&b, 1e-3), "jitter produced identical images");
    }

    #[test]
    fn classes_differ_more_than_within_class() {
        // Mean image distance across classes should exceed within-class.
        let cfg = ImagenetCfg::default();
        let mut rng = StdRng::seed_from_u64(4);
        let mut within = 0.0;
        let mut across = 0.0;
        let k = 8;
        for _ in 0..k {
            let a = render_sample(0, &cfg, &mut rng);
            let b = render_sample(0, &cfg, &mut rng);
            let c = render_sample(9, &cfg, &mut rng); // different shape+palette
            within += a.sub(&b).norm2();
            across += a.sub(&c).norm2();
        }
        assert!(
            across > within,
            "classes not separated: within {within}, across {across}"
        );
    }

    #[test]
    fn all_shapes_render_nonuniform() {
        let cfg = ImagenetCfg {
            noise: 0.0,
            ..ImagenetCfg::default()
        };
        for class in 0..NUM_CLASSES {
            let mut rng = StdRng::seed_from_u64(5);
            let img = render_sample(class, &cfg, &mut rng);
            let spread = img.max() - img.min();
            assert!(spread > 0.1, "class {class} rendered flat");
        }
    }
}
