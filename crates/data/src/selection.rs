//! Validation-set selection, reproducing the paper's protocol (§5.1):
//! "we randomly select 3,000 images ... covering all 1,000 classes ... we
//! ensure that they are correctly classified by all relevant models".
//!
//! Attack success rates are only meaningful on samples every model under
//! test gets right *before* the attack; this module picks such a
//! class-balanced subset.

use diva_nn::train::gather;
use diva_nn::Infer;

use crate::Dataset;

/// Selects up to `per_class` samples of each class from `pool` that every
/// model in `models` classifies correctly, returning the subset.
///
/// Classes without enough mutually-correct samples contribute fewer (a
/// warning-worthy but non-fatal condition, mirroring real pools).
pub fn select_validation(pool: &Dataset, models: &[&dyn Infer], per_class: usize) -> Dataset {
    let n = pool.len();
    // Evaluate all models batched once.
    let mut all_correct = vec![true; n];
    let bs = 64;
    for model in models {
        let mut i = 0;
        while i < n {
            let hi = (i + bs).min(n);
            let idx: Vec<usize> = (i..hi).collect();
            let x = gather(&pool.images, &idx);
            for (j, pred) in model.predict(&x).into_iter().enumerate() {
                if pred != pool.labels[i + j] {
                    all_correct[i + j] = false;
                }
            }
            i = hi;
        }
    }
    let mut taken_per_class = vec![0usize; pool.num_classes];
    let mut chosen = Vec::new();
    for (i, (&c, &correct)) in pool.labels.iter().zip(&all_correct).enumerate() {
        if correct && taken_per_class[c] < per_class {
            taken_per_class[c] += 1;
            chosen.push(i);
        }
    }
    pool.subset(&chosen)
}

/// Fraction of the pool on which all models agree with the label — a quick
/// upper bound on how much validation data a selection can yield.
pub fn mutual_accuracy(pool: &Dataset, models: &[&dyn Infer]) -> f32 {
    if pool.is_empty() {
        return 0.0;
    }
    let selected = select_validation(pool, models, usize::MAX);
    selected.len() as f32 / pool.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_tensor::Tensor;

    /// A fake model that labels by mean brightness threshold.
    struct Thresh(f32);

    impl Infer for Thresh {
        fn logits(&self, x: &Tensor) -> Tensor {
            let n = x.dims()[0];
            let mut out = Tensor::zeros(&[n, 2]);
            for i in 0..n {
                let m = x.index_batch(i).mean();
                let c = usize::from(m > self.0);
                out.data_mut()[i * 2 + c] = 1.0;
            }
            out
        }

        fn num_classes(&self) -> usize {
            2
        }
    }

    fn pool() -> Dataset {
        // 8 samples: brightness 0.1..0.8, class = brightness > 0.45.
        let samples: Vec<Tensor> = (0..8)
            .map(|i| Tensor::full(&[1, 2, 2], 0.1 + i as f32 * 0.1))
            .collect();
        let labels = (0..8).map(|i| usize::from(i >= 4)).collect();
        Dataset::new(Tensor::stack(&samples), labels, 2)
    }

    #[test]
    fn selects_only_mutually_correct() {
        let p = pool();
        // Model A: threshold 0.45 (all correct). Model B: threshold 0.65
        // (misclassifies brightness 0.5 and 0.6 as class 0).
        let a = Thresh(0.45);
        let b = Thresh(0.65);
        let sel = select_validation(&p, &[&a, &b], 10);
        // Class-1 samples at 0.5/0.6 rejected; 0.7/0.8 kept; all class-0 kept.
        assert_eq!(sel.len(), 6);
        assert!(sel.labels.iter().zip(0..).all(|(&l, _)| l == 0 || l == 1));
    }

    #[test]
    fn respects_per_class_cap() {
        let p = pool();
        let a = Thresh(0.45);
        let sel = select_validation(&p, &[&a], 2);
        assert_eq!(sel.len(), 4);
        let c0 = sel.labels.iter().filter(|&&l| l == 0).count();
        assert_eq!(c0, 2);
    }

    #[test]
    fn mutual_accuracy_bounds() {
        let p = pool();
        assert_eq!(mutual_accuracy(&p, &[&Thresh(0.45)]), 1.0);
        assert!(mutual_accuracy(&p, &[&Thresh(0.45), &Thresh(0.65)]) < 1.0);
    }
}
