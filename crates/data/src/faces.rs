//! The PubFig stand-in: parametric face identities for the case study (§6).
//!
//! An *identity* is a point in a face-parameter space (skin tone, face
//! width/height, eye spacing and size, nose length, mouth width and curve).
//! Each rendered image adds per-photo jitter (pose shift, illumination,
//! expression wobble, sensor noise), so the classifier must learn identity
//! features rather than memorise pixels — the structure a face-recognition
//! model exploits.

use diva_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::Dataset;

/// Image side length (RGB `3×16×16`).
pub const SIDE: usize = 16;

/// One identity's facial geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceParams {
    skin: [f32; 3],
    face_rx: f32,
    face_ry: f32,
    eye_dx: f32,
    eye_y: f32,
    eye_r: f32,
    nose_len: f32,
    mouth_w: f32,
    mouth_y: f32,
    mouth_curve: f32,
    hair: f32,
}

impl FaceParams {
    /// Draws a random identity.
    pub fn random(rng: &mut StdRng) -> Self {
        let tone = rng.gen_range(0.35..0.85f32);
        FaceParams {
            skin: [
                (tone + 0.10).min(1.0),
                tone * rng.gen_range(0.75..0.9),
                tone * rng.gen_range(0.55..0.75),
            ],
            face_rx: rng.gen_range(4.5..6.5),
            face_ry: rng.gen_range(5.5..7.5),
            eye_dx: rng.gen_range(1.8..3.2),
            eye_y: rng.gen_range(-2.5..-1.2),
            eye_r: rng.gen_range(0.55..1.05),
            nose_len: rng.gen_range(1.0..2.4),
            mouth_w: rng.gen_range(1.6..3.2),
            mouth_y: rng.gen_range(2.2..3.6),
            mouth_curve: rng.gen_range(-0.8..0.8),
            hair: rng.gen_range(0.0..0.45),
        }
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FacesCfg {
    /// Number of identities (the paper uses 150 people; default scales to
    /// the reproduction's size).
    pub identities: usize,
    /// Per-pixel noise std-dev.
    pub noise: f32,
}

impl Default for FacesCfg {
    fn default() -> Self {
        FacesCfg {
            identities: 25,
            noise: 0.06,
        }
    }
}

/// Renders one photo of `id` with per-photo jitter.
pub fn render_face(id: &FaceParams, noise: f32, rng: &mut StdRng) -> Tensor {
    let cx = SIDE as f32 / 2.0 + rng.gen_range(-1.0..1.0f32);
    let cy = SIDE as f32 / 2.0 + rng.gen_range(-1.0..1.0f32);
    let illum = rng.gen_range(0.8..1.15f32);
    let expression = rng.gen_range(-0.3..0.3f32); // wobbles the mouth curve
    let bg = rng.gen_range(0.1..0.35f32);
    let mut data = vec![0.0f32; 3 * SIDE * SIDE];
    let soft = |d: f32| (0.6 - d).clamp(0.0, 1.0);
    for y in 0..SIDE {
        for x in 0..SIDE {
            let dx = x as f32 + 0.5 - cx;
            let dy = y as f32 + 0.5 - cy;
            // Face oval.
            let face_d = ((dx / id.face_rx).powi(2) + (dy / id.face_ry).powi(2)).sqrt() - 1.0;
            let face_cov = soft(face_d * id.face_rx.min(id.face_ry));
            // Hairline: darkens the top band of the face.
            let hair_cov = if dy < id.eye_y - 1.0 { id.hair } else { 0.0 };
            // Eyes: two dark disks.
            let eye_l = ((dx + id.eye_dx).powi(2) + (dy - id.eye_y).powi(2)).sqrt() - id.eye_r;
            let eye_r_ = ((dx - id.eye_dx).powi(2) + (dy - id.eye_y).powi(2)).sqrt() - id.eye_r;
            let eye_cov = soft(eye_l).max(soft(eye_r_));
            // Nose: a vertical bar from eye line downward.
            let nose_cov =
                if dx.abs() < 0.5 && dy > id.eye_y + 0.8 && dy < id.eye_y + 0.8 + id.nose_len {
                    0.6
                } else {
                    0.0
                };
            // Mouth: a horizontal curved band.
            let curve = id.mouth_curve + expression;
            let mouth_mid = id.mouth_y + curve * (dx / id.mouth_w).powi(2);
            let mouth_cov = if dx.abs() < id.mouth_w && (dy - mouth_mid).abs() < 0.6 {
                0.8
            } else {
                0.0
            };
            for ch in 0..3 {
                let mut v = bg;
                if face_cov > 0.0 {
                    let skin = id.skin[ch] * illum;
                    v = v * (1.0 - face_cov) + skin * face_cov;
                    v *= 1.0 - hair_cov * face_cov;
                    // Features darken the skin.
                    let feat = eye_cov.max(nose_cov * 0.6).max(mouth_cov * 0.8);
                    v *= 1.0 - 0.75 * feat * face_cov;
                }
                data[ch * SIDE * SIDE + y * SIDE + x] = (v + gauss(rng) * noise).clamp(0.0, 1.0);
            }
        }
    }
    Tensor::from_vec(data, &[3, SIDE, SIDE])
}

/// Generates a shuffled, identity-balanced face dataset of `n` photos.
///
/// Identities are derived deterministically from `seed`, so train/val splits
/// generated with the same seed share the same people.
pub fn synth_faces(n: usize, cfg: &FacesCfg, seed: u64) -> Dataset {
    let mut id_rng = StdRng::seed_from_u64(seed);
    let identities: Vec<FaceParams> = (0..cfg.identities)
        .map(|_| FaceParams::random(&mut id_rng))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let who = i % cfg.identities;
        images.push(render_face(&identities[who], cfg.noise, &mut rng));
        labels.push(who);
    }
    let mut idx: Vec<usize> = (0..n).collect();
    use rand::seq::SliceRandom;
    idx.shuffle(&mut rng);
    let images: Vec<Tensor> = idx.iter().map(|&i| images[i].clone()).collect();
    let labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
    Dataset::new(Tensor::stack(&images), labels, cfg.identities)
}

fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_balance() {
        let cfg = FacesCfg {
            identities: 5,
            noise: 0.05,
        };
        let d = synth_faces(25, &cfg, 1);
        assert_eq!(d.len(), 25);
        assert_eq!(d.num_classes, 5);
        assert_eq!(d.sample_shape(), [3, SIDE, SIDE]);
        assert!(d.images.min() >= 0.0 && d.images.max() <= 1.0);
        let mut counts = [0usize; 5];
        for &l in &d.labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    fn same_identity_two_photos_differ_but_less_than_two_people() {
        let mut rng = StdRng::seed_from_u64(2);
        let alice = FaceParams::random(&mut rng);
        let bob = FaceParams::random(&mut rng);
        let mut photo_rng = StdRng::seed_from_u64(3);
        let a1 = render_face(&alice, 0.02, &mut photo_rng);
        let a2 = render_face(&alice, 0.02, &mut photo_rng);
        let b1 = render_face(&bob, 0.02, &mut photo_rng);
        let within = a1.sub(&a2).norm2();
        let across = a1.sub(&b1).norm2();
        assert!(within > 0.0, "photos are identical");
        assert!(
            across > within,
            "identities not separated: within {within}, across {across}"
        );
    }

    #[test]
    fn seed_determines_identities() {
        let cfg = FacesCfg::default();
        let a = synth_faces(50, &cfg, 7);
        let b = synth_faces(50, &cfg, 7);
        assert_eq!(a.images, b.images);
        let c = synth_faces(50, &cfg, 8);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn faces_have_structure() {
        let mut rng = StdRng::seed_from_u64(4);
        let id = FaceParams::random(&mut rng);
        let img = render_face(&id, 0.0, &mut rng);
        assert!(img.max() - img.min() > 0.2, "face rendered flat");
    }
}
