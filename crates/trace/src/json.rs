//! Minimal JSON writer + parser, enough for trace.jsonl / metrics.json.
//!
//! The trace crate is intentionally dependency-free, and its JSON surface is
//! small: flat-ish objects of strings, numbers, booleans, and nesting one or
//! two levels deep. Hand-rolling keeps the crate buildable anywhere the
//! workspace is and lets tests round-trip the artifacts without serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use `BTreeMap` so serialized output is
/// deterministic (sorted keys) — important for diffable artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers parse to f64; integers within 2^53 round-trip exactly.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts a key into an object; panics on non-objects (internal misuse).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value);
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty serialization with 2-space indent (for metrics.json).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// Compact single-line serialization (`to_string` comes with it for free).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional fallback.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict enough for our own artifacts; rejects
/// trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs don't occur in our own output;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_sorts_keys() {
        let mut j = Json::obj();
        j.set("b", Json::Num(2.0));
        j.set("a", Json::Str("line\nbreak \"q\"".into()));
        assert_eq!(j.to_string(), r#"{"a":"line\nbreak \"q\"","b":2}"#);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::Num(1234567.0).to_string(), "1234567");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut inner = Json::obj();
        inner.set("count", Json::Num(17.0));
        inner.set("p95_ns", Json::Num(81919.0));
        let mut j = Json::obj();
        j.set("spans", {
            let mut m = Json::obj();
            m.set("nn.fwd.conv2d", inner);
            m
        });
        j.set("ok", Json::Bool(true));
        j.set("tags", Json::Arr(vec![Json::Str("a".into()), Json::Null]));
        for text in [j.to_string(), j.to_string_pretty()] {
            let back = parse(&text).expect("parse");
            assert_eq!(back, j, "failed on {text}");
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"k\" 1}").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = parse(r#"{"s": "tab\there é", "n": -3.5e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "tab\there é");
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), -350.0);
    }

    #[test]
    fn accessor_helpers() {
        let v = parse(r#"{"u": 42, "f": 4.5}"#).unwrap();
        assert_eq!(v.get("u").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(4.5));
        assert!(v.as_obj().is_some());
        assert!(v.get("missing").is_none());
    }
}
