//! Minimal JSON writer + parser, enough for trace.jsonl / metrics.json.
//!
//! The trace crate is intentionally dependency-free, and its JSON surface is
//! small: flat-ish objects of strings, numbers, booleans, and nesting one or
//! two levels deep. Hand-rolling keeps the crate buildable anywhere the
//! workspace is and lets tests round-trip the artifacts without serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use `BTreeMap` so serialized output is
/// deterministic (sorted keys) — important for diffable artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers parse to f64; integers within 2^53 round-trip exactly.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts a key into an object; panics on non-objects (internal misuse).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value);
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty serialization with 2-space indent (for metrics.json).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// Compact single-line serialization (`to_string` comes with it for free).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional fallback.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// What went wrong while parsing, without position information (that lives
/// on [`ParseError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended where a value, delimiter, or closing quote was required.
    UnexpectedEof,
    /// A complete value was followed by non-whitespace bytes.
    TrailingData,
    /// A `t`/`f`/`n` byte did not begin `true`/`false`/`null`.
    InvalidLiteral,
    /// A number token failed to parse as `f64`.
    InvalidNumber,
    /// A string ran to end of input without a closing quote.
    UnterminatedString,
    /// A backslash escape was not one of the supported forms.
    BadEscape,
    /// Raw bytes were not valid UTF-8.
    InvalidUtf8,
    /// Something else was found where `expected` was required.
    Expected(&'static str),
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ErrorKind::TrailingData => write!(f, "trailing data after value"),
            ErrorKind::InvalidLiteral => write!(f, "invalid literal"),
            ErrorKind::InvalidNumber => write!(f, "invalid number"),
            ErrorKind::UnterminatedString => write!(f, "unterminated string"),
            ErrorKind::BadEscape => write!(f, "invalid escape sequence"),
            ErrorKind::InvalidUtf8 => write!(f, "invalid UTF-8"),
            ErrorKind::Expected(what) => write!(f, "expected {what}"),
        }
    }
}

/// A parse failure with its position: byte offset plus the 1-based
/// line/column derived from it, so errors in multi-line artifacts
/// (`metrics.json`) point at the offending spot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// 1-based line number of the failure.
    pub line: usize,
    /// 1-based column (in bytes) within that line.
    pub col: usize,
    /// The failure class.
    pub kind: ErrorKind,
}

impl ParseError {
    fn at(input: &[u8], offset: usize, kind: ErrorKind) -> ParseError {
        let offset = offset.min(input.len());
        let mut line = 1usize;
        let mut col = 1usize;
        for &b in &input[..offset] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            offset,
            line,
            col,
            kind,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at line {}, column {} (byte {})",
            self.kind, self.line, self.col, self.offset
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document. Strict enough for our own artifacts; rejects
/// trailing garbage. Errors carry the line/column of the failure.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value =
        parse_value(bytes, &mut pos).map_err(|(off, kind)| ParseError::at(bytes, off, kind))?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError::at(bytes, pos, ErrorKind::TrailingData));
    }
    Ok(value)
}

/// Internal error form: (byte offset, kind). Converted to [`ParseError`]
/// (with line/column) at the public boundary.
type RawError = (usize, ErrorKind);

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, RawError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err((*pos, ErrorKind::UnexpectedEof)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, RawError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err((*pos, ErrorKind::InvalidLiteral))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, RawError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| (start, ErrorKind::InvalidUtf8))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| (start, ErrorKind::InvalidNumber))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, RawError> {
    debug_assert_eq!(b[*pos], b'"');
    let opened = *pos;
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err((opened, ErrorKind::UnterminatedString)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or((*pos, ErrorKind::BadEscape))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| (*pos, ErrorKind::BadEscape))?,
                            16,
                        )
                        .map_err(|_| (*pos, ErrorKind::BadEscape))?;
                        // Surrogate pairs don't occur in our own output;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err((*pos, ErrorKind::BadEscape)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| (*pos, ErrorKind::InvalidUtf8))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, RawError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err((*pos, ErrorKind::Expected("',' or ']'"))),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, RawError> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err((*pos, ErrorKind::Expected("string key")));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err((*pos, ErrorKind::Expected("':'")));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err((*pos, ErrorKind::Expected("',' or '}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_sorts_keys() {
        let mut j = Json::obj();
        j.set("b", Json::Num(2.0));
        j.set("a", Json::Str("line\nbreak \"q\"".into()));
        assert_eq!(j.to_string(), r#"{"a":"line\nbreak \"q\"","b":2}"#);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::Num(1234567.0).to_string(), "1234567");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut inner = Json::obj();
        inner.set("count", Json::Num(17.0));
        inner.set("p95_ns", Json::Num(81919.0));
        let mut j = Json::obj();
        j.set("spans", {
            let mut m = Json::obj();
            m.set("nn.fwd.conv2d", inner);
            m
        });
        j.set("ok", Json::Bool(true));
        j.set("tags", Json::Arr(vec![Json::Str("a".into()), Json::Null]));
        for text in [j.to_string(), j.to_string_pretty()] {
            let back = parse(&text).expect("parse");
            assert_eq!(back, j, "failed on {text}");
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"k\" 1}").is_err());
    }

    #[test]
    fn parse_errors_carry_kind_and_position() {
        let e = parse("{} x").unwrap_err();
        assert_eq!(e.kind, ErrorKind::TrailingData);
        assert_eq!((e.line, e.col, e.offset), (1, 4, 3));

        let e = parse("[1, 2").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Expected("',' or ']'"));

        let e = parse("\"open").unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnterminatedString);
        assert_eq!(e.offset, 0);

        let e = parse("nul").unwrap_err();
        assert_eq!(e.kind, ErrorKind::InvalidLiteral);

        let e = parse("1e").unwrap_err();
        assert_eq!(e.kind, ErrorKind::InvalidNumber);

        let e = parse("").unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnexpectedEof);

        // Multi-line input: the position points into the right line.
        let e = parse("{\n  \"a\": 1,\n  \"b\" 2\n}").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Expected("':'"));
        assert_eq!(e.line, 3);
        assert_eq!(e.col, 7);

        // Errors render as human-readable text with the position inline.
        let msg = e.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("':'"), "{msg}");
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = parse(r#"{"s": "tab\there é", "n": -3.5e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "tab\there é");
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), -350.0);
    }

    #[test]
    fn accessor_helpers() {
        let v = parse(r#"{"u": 42, "f": 4.5}"#).unwrap();
        assert_eq!(v.get("u").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(4.5));
        assert!(v.as_obj().is_some());
        assert!(v.get("missing").is_none());
    }
}
