//! Fixed log-bucket histograms for durations and other `u64` magnitudes.
//!
//! Values land in power-of-two buckets: bucket 0 holds exactly `0`, bucket
//! `i >= 1` holds `[2^(i-1), 2^i)`. With 65 buckets the full `u64` range is
//! covered, recording is a couple of integer ops, and quantile queries walk
//! at most 65 counters — no allocation, no sorting, bounded memory per
//! metric regardless of sample count.

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// Returns the bucket index for a value.
///
/// `0 -> 0`; otherwise a value with highest set bit `b` (0-based) maps to
/// bucket `b + 1`, i.e. bucket `i` covers `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive-exclusive bounds `[lo, hi)` of bucket `i` (bucket 0 is `[0,1)`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 1)
    } else if i == 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), 1u64 << i)
    }
}

/// A log-bucket histogram with exact count/sum/min/max.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean observation, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped to
    /// the exact observed `[min, max]`. Within a factor of 2 of the true
    /// quantile by construction of the buckets.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            // The final rank is the exact maximum; the bucket walk would
            // report the bucket's upper bound instead (visible in the top
            // bucket, whose `hi - 1` is `u64::MAX - 1`).
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.saturating_sub(1).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// p95 shorthand.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Per-bucket counts (test/inspection hook).
    pub fn bucket_counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's bounds round-trip through bucket_index.
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(
                bucket_index(hi.saturating_sub(1).max(lo)),
                i,
                "hi-1 of bucket {i}"
            );
        }
    }

    #[test]
    fn records_track_exact_extremes() {
        let mut h = Histogram::default();
        for v in [5u64, 9, 120, 7, 0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 120);
        assert_eq!(h.sum(), 141);
        assert!((h.mean() - 28.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_within_bucket_factor() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // True p50 = 500; log-bucket answer must be in [500, 1000) bucket
        // terms: within a factor of 2, and clamped to [min, max].
        let p50 = h.p50();
        assert!((500..=1000).contains(&p50), "p50 {p50}");
        let p95 = h.p95();
        assert!((950..=1000).contains(&p95), "p95 {p95}");
        assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), h.min().max(1));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        // Every quantile of an empty histogram is 0 — not a panic, not MAX.
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 0, "empty quantile({q})");
        }
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        // With one observation, every quantile clamps to that exact value,
        // even though its log2 bucket spans [4, 8).
        for v in [0u64, 1, 5, 1023, u64::MAX] {
            let mut h = Histogram::default();
            h.record(v);
            for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
                assert_eq!(h.quantile(q), v, "quantile({q}) of single sample {v}");
            }
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
            assert_eq!(h.mean(), v as f64);
        }
    }

    #[test]
    fn saturating_sum_keeps_quantiles_sane() {
        // Two MAX observations overflow the exact sum; it must saturate
        // (not wrap) and quantiles must stay inside [min, max].
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.0), 1);
        let p50 = h.p50();
        assert!((1..=u64::MAX).contains(&p50));
        // The top bucket (index 64) is populated and its bounds hold MAX.
        assert_eq!(h.bucket_counts()[NUM_BUCKETS - 1], 2);
        let (lo, hi) = bucket_bounds(NUM_BUCKETS - 1);
        assert_eq!(lo, 1 << 63, "top bucket starts at 2^63");
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn two_point_distribution_percentiles() {
        // 99 fast observations and 1 slow one: p50 stays in the fast
        // bucket's range, p95 likewise, quantile(1.0) finds the outlier.
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        assert!(
            h.p50() < 256,
            "p50 {} should sit near the fast mode",
            h.p50()
        );
        assert!(
            h.p95() < 256,
            "p95 {} should sit near the fast mode",
            h.p95()
        );
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    /// Pure-std property sweep (mirrors tests/properties.rs so the law is
    /// exercised even where proptest is unavailable): quantiles are monotone
    /// in q and bounded by [min, max].
    #[test]
    fn quantile_monotonicity_sweep() {
        // Deterministic LCG input stream.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut h = Histogram::default();
        for _ in 0..4096 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(state >> (state % 50));
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "quantiles not monotone: {vals:?}");
        }
        assert!(vals[0] >= h.min());
        assert_eq!(*vals.last().unwrap(), h.max());
    }
}
