//! diva-trace: structured tracing + metrics for the DIVA reproduction.
//!
//! A small, dependency-free observability layer shared by the executor,
//! attack loops, quantization engine, and bench suite:
//!
//! - **Level gate.** Everything is filtered by the `DIVA_TRACE` env var
//!   (`0` = off, `1` = spans/counters/progress, `2` = verbose per-op and
//!   per-step events). The disabled path is a single relaxed atomic load —
//!   cheap enough to leave call sites in the hottest loops.
//! - **Recorder.** A global registry of named counters and log-bucket
//!   [`Histogram`]s (p50/p95/max without storing samples), plus a bounded
//!   buffer of pre-rendered JSONL events.
//! - **Spans.** RAII timers ([`span`]) that record wall-clock nanoseconds
//!   into a histogram keyed by span name, and emit a `span` event at level
//!   >= 2 with thread-local nesting depth.
//! - **Artifacts.** [`write_artifacts`] serializes the buffered events to
//!   `trace.jsonl` and a summary (per-span p50/p95/max, counter totals) to
//!   `metrics.json`; [`json`] can parse them back for tests and tooling.
//!
//! ```
//! diva_trace::set_level(1);
//! {
//!     let _s = diva_trace::span(1, "nn.fwd.conv2d");
//!     diva_trace::counter!("quant.requant.conv", 1);
//! }
//! let summary = diva_trace::summary_json();
//! assert!(summary.get("spans").is_some());
//! # diva_trace::reset();
//! # diva_trace::set_level(0);
//! ```

pub mod histogram;
pub mod json;
pub mod summary;

pub use histogram::Histogram;
pub use json::Json;
pub use summary::{ArtifactError, MetricsSummary, SpanStats, TraceEvent};

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Maximum buffered events before new ones are dropped (and counted).
/// 256Ki pre-rendered lines bounds memory at roughly tens of MB worst-case.
pub const EVENT_BUFFER_CAP: usize = 262_144;

/// Sentinel meaning "level not yet read from the environment".
const LEVEL_UNINIT: u8 = 0xFF;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// Current trace level. First call reads `DIVA_TRACE` (unset, empty, or
/// unparseable means 0); later calls are a single relaxed atomic load.
#[inline]
pub fn level() -> u8 {
    let v = LEVEL.load(Ordering::Relaxed);
    if v == LEVEL_UNINIT {
        init_level_from_env()
    } else {
        v
    }
}

#[cold]
fn init_level_from_env() -> u8 {
    let v = std::env::var("DIVA_TRACE")
        .ok()
        .and_then(|s| s.trim().parse::<u8>().ok())
        .unwrap_or(0)
        .min(LEVEL_UNINIT - 1);
    // Create the artifact directory up front when one is requested, so the
    // first traced run of a fresh checkout (or a faulted run that aborts
    // before `write_artifacts`) never ENOENTs on it.
    if v >= 1 {
        if let Ok(dir) = std::env::var("DIVA_TRACE_DIR") {
            if !dir.trim().is_empty() {
                let _ = std::fs::create_dir_all(dir.trim());
            }
        }
    }
    LEVEL.store(v, Ordering::Relaxed);
    v
}

/// True when tracing at `lvl` is active. `enabled(0)` is always true.
#[inline]
pub fn enabled(lvl: u8) -> bool {
    level() >= lvl
}

/// Overrides the trace level (tests, or a CLI flag taking precedence over
/// the environment).
pub fn set_level(lvl: u8) {
    LEVEL.store(lvl.min(LEVEL_UNINIT - 1), Ordering::Relaxed);
}

/// A field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::U64(v) => Json::Num(*v as f64),
            Value::I64(v) => Json::Num(*v as f64),
            Value::F64(v) => Json::Num(*v),
            Value::Str(s) => Json::Str(s.clone()),
            Value::Bool(b) => Json::Bool(*b),
        }
    }
}

/// Global mutable trace state. One mutex guards everything: contention is
/// acceptable because per-event critical sections are tiny (a BTreeMap
/// lookup and an integer update), and disabled runs never reach it.
struct Recorder {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    /// Pre-rendered JSONL lines; rendering happens outside the lock.
    events: Vec<String>,
    events_dropped: u64,
    /// Monotonic origin for event timestamps.
    epoch: Instant,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            events: Vec::new(),
            events_dropped: 0,
            epoch: Instant::now(),
        }
    }

    fn push_event(&mut self, line: String) {
        if self.events.len() < EVENT_BUFFER_CAP {
            self.events.push(line);
        } else {
            self.events_dropped += 1;
        }
    }
}

fn recorder() -> MutexGuard<'static, Recorder> {
    static RECORDER: OnceLock<Mutex<Recorder>> = OnceLock::new();
    RECORDER
        .get_or_init(|| Mutex::new(Recorder::new()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    /// Current span nesting depth on this thread (for event output only).
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

thread_local! {
    /// This thread's ordinal (see [`thread_ordinal`]); 0 = unassigned.
    static THREAD_ORDINAL: Cell<u64> = const { Cell::new(0) };
}

/// A small, stable, in-process id for the calling thread: threads are
/// numbered 1, 2, 3, … in first-use order. Events carry it as `tid` so
/// offline tooling (diva-prof) can re-thread the interleaved stream —
/// span nesting is only meaningful within one thread.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|c| {
        let v = c.get();
        if v != 0 {
            return v;
        }
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}

thread_local! {
    /// Worker-local counter buffer. While `Some`, `counter_add` on this
    /// thread accumulates here instead of taking the global lock; the
    /// buffered totals are folded into the recorder when the owning
    /// [`CounterShard`] is dropped (i.e. when the worker joins).
    static COUNTER_SHARD: RefCell<Option<BTreeMap<String, u64>>> =
        const { RefCell::new(None) };
}

/// RAII guard that buffers this thread's counters locally until dropped.
///
/// Worker pools (diva-par) install one of these per worker thread so hot
/// loops never contend on the global recorder mutex; totals are flushed in
/// one batch at join. Counter *totals* are therefore schedule-independent,
/// but [`counter_value`] only reflects a worker's contribution after its
/// shard drops.
pub struct CounterShard {
    active: bool,
}

/// Starts buffering counters on the current thread. Nested shards are
/// inert (the outermost one owns the buffer), as is a shard opened while
/// tracing is disabled.
pub fn counter_shard() -> CounterShard {
    if !enabled(1) {
        return CounterShard { active: false };
    }
    COUNTER_SHARD.with(|s| {
        let mut slot = s.borrow_mut();
        if slot.is_some() {
            CounterShard { active: false }
        } else {
            *slot = Some(BTreeMap::new());
            CounterShard { active: true }
        }
    })
}

impl Drop for CounterShard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let buffered = COUNTER_SHARD.with(|s| s.borrow_mut().take());
        if let Some(buffered) = buffered {
            if !buffered.is_empty() {
                let mut rec = recorder();
                for (name, delta) in buffered {
                    *rec.counters.entry(name).or_insert(0) += delta;
                }
            }
        }
    }
}

/// Adds `delta` to the named counter. No-op below level 1. Inside a
/// [`counter_shard`] the update is buffered thread-locally and flushed at
/// shard drop; otherwise it goes straight to the global recorder.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled(1) {
        return;
    }
    let buffered = COUNTER_SHARD.with(|s| {
        if let Some(map) = s.borrow_mut().as_mut() {
            *map.entry(name.to_string()).or_insert(0) += delta;
            true
        } else {
            false
        }
    });
    if buffered {
        return;
    }
    let mut rec = recorder();
    match rec.counters.get_mut(name) {
        Some(c) => *c += delta,
        None => {
            rec.counters.insert(name.to_string(), delta);
        }
    }
}

/// Current value of a counter (0 if never touched). Test/inspection hook.
pub fn counter_value(name: &str) -> u64 {
    recorder().counters.get(name).copied().unwrap_or(0)
}

/// Records a raw observation into the named histogram. No-op below level 1.
#[inline]
pub fn record_u64(name: &str, v: u64) {
    if !enabled(1) {
        return;
    }
    record_u64_unchecked(name, v);
}

fn record_u64_unchecked(name: &str, v: u64) {
    let mut rec = recorder();
    match rec.histograms.get_mut(name) {
        Some(h) => h.record(v),
        None => {
            let mut h = Histogram::default();
            h.record(v);
            rec.histograms.insert(name.to_string(), h);
        }
    }
}

/// Records a duration in seconds into the named histogram (stored as
/// nanoseconds), gated at `lvl`. Used to fold externally-measured timings
/// (e.g. bench `gen_seconds`) into the same summary as spans.
pub fn record_secs(lvl: u8, name: &str, secs: f64) {
    if !enabled(lvl) {
        return;
    }
    let ns = (secs.max(0.0) * 1e9).round();
    record_u64_unchecked(
        name,
        if ns >= u64::MAX as f64 {
            u64::MAX
        } else {
            ns as u64
        },
    );
}

/// Snapshot of a named histogram, if any observations were recorded.
pub fn histogram_snapshot(name: &str) -> Option<Histogram> {
    recorder().histograms.get(name).cloned()
}

/// Emits a structured event with arbitrary fields, gated at `lvl`.
/// Rendering to JSON happens before taking the recorder lock.
pub fn event_at(lvl: u8, name: &str, fields: &[(&str, Value)]) {
    if !enabled(lvl) {
        return;
    }
    let depth = SPAN_DEPTH.with(|d| d.get());
    let mut obj = Json::obj();
    obj.set("ev", Json::Str(name.to_string()));
    if depth > 0 {
        obj.set("depth", Json::Num(depth as f64));
    }
    obj.set("tid", Json::Num(thread_ordinal() as f64));
    for (k, v) in fields {
        obj.set(k, v.to_json());
    }
    let mut rec = recorder();
    let t_us = rec.epoch.elapsed().as_micros() as f64;
    obj.set("t_us", Json::Num(t_us));
    rec.push_event(obj.to_string());
}

/// Emits a level-2 event. Shorthand for [`event_at`]`(2, ...)`.
pub fn event_now(name: &str, fields: &[(&str, Value)]) {
    event_at(2, name, fields);
}

/// An RAII span timer. When tracing is disabled at the span's level the
/// guard is inert (no clock read, no lock). Otherwise dropping it records
/// elapsed nanoseconds into the histogram named after the span, and at
/// level >= 2 also emits a `span` event.
pub struct Span {
    name: Option<Cow<'static, str>>,
    start: Instant,
}

/// Starts a span gated at `lvl`. Typical levels: 1 for run/experiment-scale
/// spans, 2 for per-op and per-step spans.
#[inline]
pub fn span(lvl: u8, name: impl Into<Cow<'static, str>>) -> Span {
    if !enabled(lvl) {
        return Span {
            name: None,
            start: START_PLACEHOLDER.with(|s| *s),
        };
    }
    SPAN_DEPTH.with(|d| d.set(d.get() + 1));
    Span {
        name: Some(name.into()),
        start: Instant::now(),
    }
}

thread_local! {
    /// A fixed Instant reused by inert spans so the disabled path never
    /// reads the clock.
    static START_PLACEHOLDER: Instant = Instant::now();
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else { return };
        let elapsed_ns = self.start.elapsed().as_nanos();
        let elapsed_ns = if elapsed_ns > u64::MAX as u128 {
            u64::MAX
        } else {
            elapsed_ns as u64
        };
        let depth = SPAN_DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_sub(1));
            v
        });
        // The level may have been lowered while the span was open; record
        // anyway — the span was live, and partial traces confuse more than
        // a few extra samples.
        record_u64_unchecked(&name, elapsed_ns);
        if enabled(2) {
            let mut obj = Json::obj();
            obj.set("ev", Json::Str("span".into()));
            obj.set("name", Json::Str(name.into_owned()));
            obj.set("ns", Json::Num(elapsed_ns as f64));
            obj.set("depth", Json::Num(depth as f64));
            obj.set("tid", Json::Num(thread_ordinal() as f64));
            let mut rec = recorder();
            let t_us = rec.epoch.elapsed().as_micros() as f64;
            obj.set("t_us", Json::Num(t_us));
            rec.push_event(obj.to_string());
        }
    }
}

/// Builds the metrics summary as a [`Json`] object:
///
/// ```json
/// {
///   "level": 1,
///   "spans": {"nn.fwd.conv2d": {"count":..,"p50_ns":..,"p95_ns":..,
///              "max_ns":..,"mean_ns":..,"total_ns":..}, ...},
///   "counters": {"quant.saturate.conv": 12, ...},
///   "events_buffered": 345,
///   "events_dropped": 0
/// }
/// ```
pub fn summary_json() -> Json {
    let rec = recorder();
    let mut spans = Json::obj();
    for (name, h) in &rec.histograms {
        let mut s = Json::obj();
        s.set("count", Json::Num(h.count() as f64));
        s.set("p50_ns", Json::Num(h.p50() as f64));
        s.set("p95_ns", Json::Num(h.p95() as f64));
        s.set("max_ns", Json::Num(h.max() as f64));
        s.set("mean_ns", Json::Num(h.mean()));
        s.set("total_ns", Json::Num(h.sum() as f64));
        spans.set(name, s);
    }
    let mut counters = Json::obj();
    for (name, v) in &rec.counters {
        counters.set(name, Json::Num(*v as f64));
    }
    let mut out = Json::obj();
    out.set("level", Json::Num(level() as f64));
    out.set("spans", spans);
    out.set("counters", counters);
    out.set("events_buffered", Json::Num(rec.events.len() as f64));
    out.set("events_dropped", Json::Num(rec.events_dropped as f64));
    out
}

/// The metrics-snapshot endpoint payload: [`summary_json`] plus
/// caller-supplied top-level fields (server state, queue depth, job
/// counts). Serving layers — diva-serve's `Metrics` reply and its final
/// drain snapshot — call this so a live process and its on-disk artifacts
/// share one schema. Works at any trace level: at level 0 the spans and
/// counters are simply empty, the extra fields still carry.
pub fn snapshot_json(extra: &[(&str, Json)]) -> Json {
    let mut out = summary_json();
    for (key, value) in extra {
        out.set(key, value.clone());
    }
    out
}

/// Writes `trace.jsonl` (buffered events, one JSON object per line) and
/// `metrics.json` (pretty-printed [`summary_json`]) under `dir`, creating
/// it if needed. Returns the path to `metrics.json`. Callers should gate
/// on [`enabled`]`(1)` — a disabled run has nothing to write and the
/// acceptance contract is that it writes no files.
pub fn write_artifacts(dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;

    let events: Vec<String> = {
        let rec = recorder();
        rec.events.clone()
    };
    let trace_path = dir.join("trace.jsonl");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&trace_path)?);
    for line in &events {
        writeln!(f, "{line}")?;
    }
    f.into_inner().map_err(|e| e.into_error())?.sync_all().ok();

    let metrics_path = dir.join("metrics.json");
    let mut body = summary_json().to_string_pretty();
    body.push('\n');
    std::fs::write(&metrics_path, body)?;
    Ok(metrics_path)
}

/// Clears all counters, histograms, and buffered events (tests and
/// multi-run binaries that want per-run artifacts). Leaves the level as-is.
pub fn reset() {
    let mut rec = recorder();
    rec.counters.clear();
    rec.histograms.clear();
    rec.events.clear();
    rec.events_dropped = 0;
    rec.epoch = Instant::now();
}

/// Number of currently buffered events. Test/inspection hook.
pub fn events_buffered() -> usize {
    recorder().events.len()
}

/// Emits a structured event at the given level:
/// `event!(2, "attack.step", step = i, loss = l)`. Field values go through
/// `Into<Value>`. Free below the gate except for argument evaluation.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled($lvl) {
            $crate::event_at(
                $lvl,
                $name,
                &[$((stringify!($key), $crate::Value::from($val))),*],
            );
        }
    };
}

/// Adds to a named counter: `counter!("quant.saturate.conv", 1)`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta as u64)
    };
}

/// Progress line for humans plus a structured `progress` event, both at
/// level >= 1. At level 0 this is silent — the bench suite relies on that
/// to keep stdout/stderr machine-clean.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        if $crate::enabled(1) {
            let msg = format!($($arg)*);
            eprintln!("{msg}");
            $crate::event_at(1, "progress", &[("msg", $crate::Value::from(msg))]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The recorder and level are process-global; serialize tests touching
    /// them so counts don't interleave.
    pub(crate) fn lock_global() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn snapshot_json_layers_extras_over_the_summary() {
        let _g = lock_global();
        set_level(1);
        reset();
        counter_add("snap.jobs", 3);
        let mut state = Json::obj();
        state.set("queued", Json::Num(2.0));
        let snap = snapshot_json(&[("server", state.clone()), ("uptime_ms", Json::Num(5.0))]);
        assert_eq!(snap.get("server"), Some(&state));
        assert_eq!(snap.get("uptime_ms"), Some(&Json::Num(5.0)));
        let counters = snap.get("counters").expect("summary fields survive");
        assert_eq!(counters.get("snap.jobs"), Some(&Json::Num(3.0)));
        set_level(0);
        reset();
    }

    #[test]
    fn disabled_level_records_nothing() {
        let _g = lock_global();
        set_level(0);
        reset();
        counter_add("c.off", 5);
        record_secs(1, "h.off", 0.5);
        event!(1, "nothing", k = 1u64);
        {
            let _s = span(1, "span.off");
        }
        assert_eq!(counter_value("c.off"), 0);
        assert!(histogram_snapshot("h.off").is_none());
        assert!(histogram_snapshot("span.off").is_none());
        assert_eq!(events_buffered(), 0);
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let _g = lock_global();
        set_level(1);
        reset();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        counter_add("c.racy", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter_value("c.racy"), 8000);
        set_level(0);
    }

    #[test]
    fn spans_record_durations_and_nest() {
        let _g = lock_global();
        set_level(2);
        reset();
        {
            let _outer = span(1, "t.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span(2, "t.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let outer = histogram_snapshot("t.outer").expect("outer recorded");
        let inner = histogram_snapshot("t.inner").expect("inner recorded");
        assert_eq!(outer.count(), 1);
        assert_eq!(inner.count(), 1);
        assert!(outer.max() >= inner.max(), "outer should contain inner");
        assert!(inner.max() >= 1_000_000, "inner slept >= 1ms");

        // Level-2 span events exist; the inner span closes first and has
        // greater depth.
        let rec_events: Vec<Json> = {
            let rec = recorder();
            rec.events.iter().map(|l| json::parse(l).unwrap()).collect()
        };
        let span_events: Vec<&Json> = rec_events
            .iter()
            .filter(|e| e.get("ev").and_then(Json::as_str) == Some("span"))
            .collect();
        assert_eq!(span_events.len(), 2);
        assert_eq!(
            span_events[0].get("name").unwrap().as_str(),
            Some("t.inner")
        );
        assert_eq!(span_events[0].get("depth").unwrap().as_u64(), Some(2));
        assert_eq!(
            span_events[1].get("name").unwrap().as_str(),
            Some("t.outer")
        );
        assert_eq!(span_events[1].get("depth").unwrap().as_u64(), Some(1));
        set_level(0);
        reset();
    }

    #[test]
    fn summary_includes_percentiles_and_counters() {
        let _g = lock_global();
        set_level(1);
        reset();
        for i in 1..=100u64 {
            record_u64("t.hist", i * 1000);
        }
        counter_add("t.counter", 7);
        let s = summary_json();
        let spans = s.get("spans").unwrap();
        let h = spans.get("t.hist").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(100));
        assert!(h.get("p50_ns").unwrap().as_u64().unwrap() >= 50_000);
        assert!(h.get("p95_ns").unwrap().as_u64().unwrap() >= 95_000);
        assert_eq!(h.get("max_ns").unwrap().as_u64(), Some(100_000));
        assert_eq!(
            s.get("counters")
                .unwrap()
                .get("t.counter")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        // Summary text is valid JSON that round-trips through the parser.
        let parsed = json::parse(&s.to_string_pretty()).unwrap();
        assert_eq!(parsed, s);
        set_level(0);
        reset();
    }

    #[test]
    fn artifacts_written_and_parseable() {
        let _g = lock_global();
        set_level(2);
        reset();
        event!(1, "test.event", answer = 42u64, label = "x");
        {
            let _s = span(1, "t.art");
        }
        let dir = std::env::temp_dir().join(format!("diva-trace-test-{}", std::process::id()));
        let metrics = write_artifacts(&dir).expect("write");
        let metrics_text = std::fs::read_to_string(&metrics).unwrap();
        let parsed = json::parse(&metrics_text).expect("metrics parses");
        assert!(parsed.get("spans").unwrap().get("t.art").is_some());

        let trace_text = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
        let lines: Vec<&str> = trace_text.lines().collect();
        assert_eq!(lines.len(), events_buffered());
        let first = json::parse(lines[0]).expect("event line parses");
        assert_eq!(first.get("ev").unwrap().as_str(), Some("test.event"));
        assert_eq!(first.get("answer").unwrap().as_u64(), Some(42));
        std::fs::remove_dir_all(&dir).ok();
        set_level(0);
        reset();
    }

    #[test]
    fn event_buffer_drops_beyond_cap_without_losing_count() {
        let _g = lock_global();
        set_level(1);
        reset();
        {
            let mut rec = recorder();
            // Simulate a full buffer without paying for 256k renders.
            rec.events = vec![String::new(); EVENT_BUFFER_CAP];
        }
        event!(1, "overflow");
        let s = summary_json();
        assert_eq!(
            s.get("events_dropped").unwrap().as_u64(),
            Some(1),
            "overflow event should be counted as dropped"
        );
        set_level(0);
        reset();
    }
}
