//! Typed readers for the trace artifacts.
//!
//! `trace.jsonl` and `metrics.json` were originally consumed as raw
//! [`Json`] trees, which pushed schema knowledge (and `unwrap`s) into every
//! consumer. This module is the one place that knows the artifact schema:
//! [`MetricsSummary`] mirrors `metrics.json`, [`TraceEvent`] mirrors one
//! `trace.jsonl` line, and both return typed [`ArtifactError`]s — never
//! panics — on malformed input, so tooling (diva-prof, tests) can report
//! *where* an artifact is broken.

use std::collections::BTreeMap;
use std::path::Path;

use crate::json::{self, Json, ParseError};

/// Why an artifact could not be read.
#[derive(Debug)]
pub enum ArtifactError {
    /// The file could not be read.
    Io(std::io::Error),
    /// A whole-document JSON parse failure (`metrics.json`).
    Json(ParseError),
    /// A JSONL line failed to parse (`trace.jsonl`); `line` is 1-based.
    Line {
        /// 1-based line number within the JSONL file.
        line: usize,
        /// The parse failure on that line.
        error: ParseError,
    },
    /// The JSON parsed but did not match the artifact schema.
    Schema(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "io error: {e}"),
            ArtifactError::Json(e) => write!(f, "json error: {e}"),
            ArtifactError::Line { line, error } => {
                write!(f, "jsonl line {line}: {error}")
            }
            ArtifactError::Schema(what) => write!(f, "schema error: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Json(e) => Some(e),
            ArtifactError::Line { error, .. } => Some(error),
            ArtifactError::Schema(_) => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<ParseError> for ArtifactError {
    fn from(e: ParseError) -> Self {
        ArtifactError::Json(e)
    }
}

/// Per-span (or per-histogram) statistics, one `metrics.json` `spans` entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStats {
    /// Number of recorded observations.
    pub count: u64,
    /// Approximate median, nanoseconds.
    pub p50_ns: u64,
    /// Approximate 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// Exact maximum, nanoseconds.
    pub max_ns: u64,
    /// Exact mean, nanoseconds.
    pub mean_ns: f64,
    /// Exact (saturating) total, nanoseconds.
    pub total_ns: u64,
}

/// Typed form of `metrics.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSummary {
    /// Trace level the run was recorded at.
    pub level: u8,
    /// Per-span/histogram statistics, keyed by span name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Counter totals, keyed by counter name.
    pub counters: BTreeMap<String, u64>,
    /// Events held in the buffer when the summary was taken.
    pub events_buffered: u64,
    /// Events dropped after the buffer filled.
    pub events_dropped: u64,
}

fn schema_err(path: &str, what: &str) -> ArtifactError {
    ArtifactError::Schema(format!("`{path}` {what}"))
}

fn req_u64(obj: &Json, path: &str, key: &str) -> Result<u64, ArtifactError> {
    obj.get(key)
        .ok_or_else(|| schema_err(&format!("{path}.{key}"), "missing"))?
        .as_u64()
        .ok_or_else(|| schema_err(&format!("{path}.{key}"), "not a non-negative integer"))
}

impl MetricsSummary {
    /// Builds a summary from a parsed `metrics.json` tree.
    pub fn from_json(v: &Json) -> Result<MetricsSummary, ArtifactError> {
        let level = req_u64(v, "", "level")?.min(u8::MAX as u64) as u8;
        let mut spans = BTreeMap::new();
        let span_map = v
            .get("spans")
            .and_then(Json::as_obj)
            .ok_or_else(|| schema_err("spans", "missing or not an object"))?;
        for (name, s) in span_map {
            let path = format!("spans.{name}");
            let mean_ns = s
                .get("mean_ns")
                .and_then(Json::as_f64)
                .ok_or_else(|| schema_err(&format!("{path}.mean_ns"), "missing or not a number"))?;
            spans.insert(
                name.clone(),
                SpanStats {
                    count: req_u64(s, &path, "count")?,
                    p50_ns: req_u64(s, &path, "p50_ns")?,
                    p95_ns: req_u64(s, &path, "p95_ns")?,
                    max_ns: req_u64(s, &path, "max_ns")?,
                    mean_ns,
                    total_ns: req_u64(s, &path, "total_ns")?,
                },
            );
        }
        let mut counters = BTreeMap::new();
        let counter_map = v
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or_else(|| schema_err("counters", "missing or not an object"))?;
        for (name, c) in counter_map {
            let val = c
                .as_u64()
                .ok_or_else(|| schema_err(&format!("counters.{name}"), "not an integer"))?;
            counters.insert(name.clone(), val);
        }
        Ok(MetricsSummary {
            level,
            spans,
            counters,
            events_buffered: req_u64(v, "", "events_buffered").unwrap_or(0),
            events_dropped: req_u64(v, "", "events_dropped").unwrap_or(0),
        })
    }

    /// Parses `metrics.json` text.
    pub fn parse(text: &str) -> Result<MetricsSummary, ArtifactError> {
        MetricsSummary::from_json(&json::parse(text)?)
    }

    /// Loads and parses a `metrics.json` file.
    pub fn load(path: impl AsRef<Path>) -> Result<MetricsSummary, ArtifactError> {
        MetricsSummary::parse(&std::fs::read_to_string(path)?)
    }

    /// Snapshot of the live recorder in this process (cannot fail: the
    /// in-memory summary always matches its own schema).
    pub fn current() -> MetricsSummary {
        MetricsSummary::from_json(&crate::summary_json())
            .expect("in-process summary matches its own schema")
    }

    /// Statistics for one span, if recorded.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// A counter total (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// One parsed `trace.jsonl` line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the `ev` field).
    pub name: String,
    /// Microseconds since recorder start.
    pub t_us: f64,
    /// Span nesting depth on the emitting thread (0 = outside all spans).
    pub depth: u32,
    /// Stable in-process id of the emitting thread (see
    /// [`crate::thread_ordinal`]). 0 when absent (pre-`tid` artifacts).
    pub tid: u64,
    /// All remaining fields, verbatim.
    pub fields: BTreeMap<String, Json>,
}

impl TraceEvent {
    /// A numeric field.
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(Json::as_f64)
    }

    /// A non-negative integer field.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.fields.get(key).and_then(Json::as_u64)
    }

    /// A string field.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Json::as_str)
    }

    fn from_json(v: Json, line: usize) -> Result<TraceEvent, ArtifactError> {
        let Json::Obj(mut map) = v else {
            return Err(schema_err(&format!("line {line}"), "not an object"));
        };
        let name = match map.remove("ev") {
            Some(Json::Str(s)) => s,
            _ => {
                return Err(schema_err(
                    &format!("line {line}.ev"),
                    "missing or not a string",
                ))
            }
        };
        let t_us = map.remove("t_us").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let depth = map
            .remove("depth")
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
            .min(u32::MAX as u64) as u32;
        let tid = map.remove("tid").and_then(|v| v.as_u64()).unwrap_or(0);
        Ok(TraceEvent {
            name,
            t_us,
            depth,
            tid,
            fields: map,
        })
    }
}

/// Parses `trace.jsonl` text: one event per non-empty line. Errors carry
/// the 1-based line number.
pub fn parse_events(text: &str) -> Result<Vec<TraceEvent>, ArtifactError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = json::parse(raw).map_err(|error| ArtifactError::Line { line, error })?;
        out.push(TraceEvent::from_json(v, line)?);
    }
    Ok(out)
}

/// Loads and parses a `trace.jsonl` file.
pub fn load_events(path: impl AsRef<Path>) -> Result<Vec<TraceEvent>, ArtifactError> {
    parse_events(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_summary_round_trips_live_recorder() {
        let _g = crate::tests::lock_global();
        crate::set_level(1);
        crate::reset();
        crate::record_u64("s.round", 500);
        crate::record_u64("s.round", 700);
        crate::counter_add("c.round", 3);
        let text = crate::summary_json().to_string_pretty();
        let summary = MetricsSummary::parse(&text).expect("parses");
        assert_eq!(summary.level, 1);
        let s = summary.span("s.round").expect("span present");
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 1200);
        assert_eq!(s.max_ns, 700);
        assert_eq!(summary.counter("c.round"), 3);
        assert_eq!(summary.counter("c.absent"), 0);
        assert_eq!(summary, MetricsSummary::current());
        crate::set_level(0);
        crate::reset();
    }

    #[test]
    fn malformed_metrics_is_err_not_panic() {
        // Truncated document: parse error with a position.
        match MetricsSummary::parse("{\"level\": 1,") {
            Err(ArtifactError::Json(e)) => assert_eq!(e.line, 1),
            other => panic!("expected Json error, got {other:?}"),
        }
        // Parses but violates the schema.
        match MetricsSummary::parse("{\"level\": \"high\"}") {
            Err(ArtifactError::Schema(msg)) => assert!(msg.contains("level"), "{msg}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
        match MetricsSummary::parse(r#"{"level":1,"spans":{"x":{"count":1}},"counters":{}}"#) {
            Err(ArtifactError::Schema(msg)) => assert!(msg.contains("spans.x"), "{msg}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
        // Missing file: Io, not panic.
        assert!(matches!(
            MetricsSummary::load("/nonexistent/metrics.json"),
            Err(ArtifactError::Io(_))
        ));
    }

    #[test]
    fn events_parse_with_line_numbers_on_error() {
        let good =
            "{\"ev\":\"a\",\"t_us\":10,\"step\":3}\n\n{\"ev\":\"b\",\"depth\":2,\"tid\":7}\n";
        let events = parse_events(good).expect("parses");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].u64("step"), Some(3));
        assert_eq!(events[1].depth, 2);
        assert_eq!(events[1].tid, 7);

        let bad = "{\"ev\":\"a\"}\n{broken\n";
        match parse_events(bad) {
            Err(ArtifactError::Line { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Line error, got {other:?}"),
        }

        // A line that parses but isn't an event object.
        match parse_events("[1,2,3]\n") {
            Err(ArtifactError::Schema(msg)) => assert!(msg.contains("line 1"), "{msg}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
    }
}
