//! Property tests for the log-bucket histogram and JSON round-trips.

use diva_trace::histogram::{bucket_bounds, bucket_index, Histogram, NUM_BUCKETS};
use diva_trace::json;
use proptest::prelude::*;

proptest! {
    /// Every value lands in a bucket whose bounds contain it.
    #[test]
    fn bucket_index_respects_bounds(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(v >= lo, "{v} below bucket {i} lo {lo}");
        // Bucket 64's upper bound is u64::MAX inclusive.
        prop_assert!(v < hi || (i == 64 && v <= hi), "{v} above bucket {i} hi {hi}");
    }

    /// bucket_index is monotone: larger values never map to smaller buckets.
    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Quantiles are monotone in q and always within [min, max].
    #[test]
    fn quantiles_monotone_and_bounded(values in proptest::collection::vec(any::<u64>(), 1..256)) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let true_min = *values.iter().min().unwrap();
        let true_max = *values.iter().max().unwrap();
        prop_assert_eq!(h.min(), true_min);
        prop_assert_eq!(h.max(), true_max);
        prop_assert_eq!(h.count(), values.len() as u64);

        let mut prev = 0u64;
        for step in 0..=20u32 {
            let q = step as f64 / 20.0;
            let qv = h.quantile(q);
            prop_assert!(qv >= true_min && qv <= true_max,
                "q={q} gave {qv} outside [{true_min}, {true_max}]");
            prop_assert!(qv >= prev, "quantile not monotone at q={q}");
            prev = qv;
        }
        prop_assert_eq!(h.quantile(1.0), true_max);
    }

    /// The log-bucket quantile is within a factor of 2 of the exact one
    /// (the defining accuracy bound of power-of-two buckets).
    #[test]
    fn quantile_within_factor_two(values in proptest::collection::vec(1u64..1_000_000, 1..128)) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &(q, _name) in &[(0.5, "p50"), (0.95, "p95")] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = h.quantile(q);
            prop_assert!(approx >= exact / 2 && approx <= exact.saturating_mul(2).max(exact),
                "q={q}: approx {approx} not within 2x of exact {exact}");
        }
    }

    /// JSON writer output always parses back to an equal value.
    #[test]
    fn json_number_string_round_trip(n in any::<i32>(), s in "[ -~]{0,40}") {
        let mut obj = json::Json::obj();
        obj.set("n", json::Json::Num(n as f64));
        obj.set("s", json::Json::Str(s));
        let compact = json::parse(&obj.to_string()).unwrap();
        let pretty = json::parse(&obj.to_string_pretty()).unwrap();
        prop_assert_eq!(&compact, &obj);
        prop_assert_eq!(&pretty, &obj);
    }
}
