//! `diva-distill` — knowledge distillation and surrogate-model
//! reconstruction for the semi-blackbox and blackbox attacks (§4.3/§4.4).
//!
//! In the semi-blackbox setting the attacker holds only the *adapted* model
//! and some unlabelled attacker-collected data. They rebuild a full-precision
//! stand-in for the original model by treating the adapted model as the
//! *teacher* and a same-architecture fp32 *student* as the surrogate —
//! inverted from ordinary distillation, exactly as the paper describes:
//! "Unlike typical knowledge distillation that trains a model with less
//! precision using an original model, we use knowledge distillation to
//! create \[the\] semi-blackbox attack."
//!
//! In the blackbox setting the adapted model's parameters are unknown too:
//! the attacker distills a surrogate fp32 model from query access only
//! (teacher logits), then *adapts* that surrogate (calibration + QAT) to get
//! a surrogate adapted model.

use diva_nn::train::{gather, shuffled_batches, TrainCfg};
use diva_nn::{losses, optim::Sgd, Infer, Network};
use diva_quant::{extract_qat, Int8Engine, QatNetwork, QuantCfg};
use diva_tensor::Tensor;
use rand::rngs::StdRng;

/// Distillation hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillCfg {
    /// Softmax temperature of the KL term.
    pub temperature: f32,
    /// Weight of the hard-label term (labels taken from the teacher's
    /// argmax, since the attacker has no ground truth).
    pub hard_weight: f32,
    /// Weight of the soft (KL) term.
    pub soft_weight: f32,
}

impl Default for DistillCfg {
    fn default() -> Self {
        DistillCfg {
            temperature: 4.0,
            hard_weight: 0.3,
            soft_weight: 0.7,
        }
    }
}

/// Trains `student` to imitate `teacher` on unlabelled `images`.
///
/// The loss is `soft_weight · KL(teacher ‖ student at temperature T) +
/// hard_weight · CE(student, argmax(teacher))` — minimizing the distillation
/// loss while matching the teacher's predicted labels (§4.3).
///
/// Returns the per-epoch mean combined loss.
pub fn distill<T: Infer>(
    student: &mut Network,
    teacher: &T,
    images: &Tensor,
    cfg: &DistillCfg,
    train_cfg: &TrainCfg,
    rng: &mut StdRng,
) -> Vec<f32> {
    let n = images.dims()[0];
    let mut opt = Sgd::new(train_cfg.lr, train_cfg.momentum, train_cfg.weight_decay);
    let mut epoch_losses = Vec::with_capacity(train_cfg.epochs);
    for _ in 0..train_cfg.epochs {
        let mut loss_sum = 0.0;
        for batch in shuffled_batches(n, train_cfg.batch_size, rng) {
            let x = gather(images, &batch);
            let t_logits = teacher.logits(&x);
            let t_labels: Vec<usize> = (0..batch.len())
                .map(|i| t_logits.row(i).argmax().unwrap_or(0))
                .collect();
            let exec = student.forward(&x);
            let s_logits = exec.output(student.graph()).clone();
            let (kl, d_kl) = losses::distillation_kl(&s_logits, &t_logits, cfg.temperature);
            let (ce, d_ce) = losses::cross_entropy(&s_logits, &t_labels);
            let loss = cfg.soft_weight * kl + cfg.hard_weight * ce;
            let mut dlogits = d_kl.scale(cfg.soft_weight);
            dlogits.axpy(cfg.hard_weight, &d_ce);
            loss_sum += loss * batch.len() as f32;
            student.backward(&exec, &dlogits);
            opt.step(student.params_mut());
        }
        epoch_losses.push(loss_sum / n as f32);
    }
    epoch_losses
}

/// Semi-blackbox surrogate reconstruction (§4.3): given the deployed adapted
/// model, recover a differentiable QAT copy by weight extraction, initialise
/// a full-precision student from its (dequantized) weights, and distill the
/// student against the adapted teacher on attacker data.
///
/// Returns `(surrogate_fp32, recovered_adapted)` — the pair the attacker
/// plugs into the DIVA loss in place of `(original, adapted)`.
pub fn reconstruct_surrogate_original(
    deployed: &Int8Engine,
    architecture: &diva_nn::Graph,
    attacker_images: &Tensor,
    cfg: &DistillCfg,
    train_cfg: &TrainCfg,
    rng: &mut StdRng,
) -> (Network, QatNetwork) {
    // Step 1: recover the differentiable adapted model from the device.
    let recovered = extract_qat(deployed, architecture);
    // Step 2: the surrogate's parameters are initialised from the adapted
    // model (the paper uses pretrained weights "when possible or the
    // parameters of the adapted model" — without a pretrained zoo, the
    // latter).
    let mut student = recovered.network().clone();
    // Step 3: teach the surrogate to imitate the adapted model.
    distill(
        &mut student,
        &recovered,
        attacker_images,
        cfg,
        train_cfg,
        rng,
    );
    (student, recovered)
}

/// Blackbox surrogate reconstruction (§4.4): with query access only, distill
/// a freshly initialised fp32 surrogate from the deployed model's outputs,
/// then adapt it (calibration + QAT on teacher labels) to obtain a surrogate
/// adapted model.
///
/// Returns `(surrogate_fp32, surrogate_adapted)`.
pub fn reconstruct_surrogate_pair(
    deployed: &Int8Engine,
    fresh_student: Network,
    attacker_images: &Tensor,
    cfg: &DistillCfg,
    train_cfg: &TrainCfg,
    quant_cfg: QuantCfg,
    rng: &mut StdRng,
) -> (Network, QatNetwork) {
    let mut student = fresh_student;
    distill(&mut student, deployed, attacker_images, cfg, train_cfg, rng);
    // Adapt the surrogate the same way the victim would: calibrate + QAT,
    // with labels taken from the teacher's predictions.
    let teacher_labels: Vec<usize> = {
        let mut labels = Vec::new();
        let n = attacker_images.dims()[0];
        let bs = 64;
        let mut i = 0;
        while i < n {
            let hi = (i + bs).min(n);
            let idx: Vec<usize> = (i..hi).collect();
            let x = gather(attacker_images, &idx);
            labels.extend(deployed.predict(&x));
            i = hi;
        }
        labels
    };
    let mut surrogate_adapted = QatNetwork::new(student.clone(), quant_cfg);
    surrogate_adapted.calibrate(attacker_images);
    let qat_train = TrainCfg {
        epochs: (train_cfg.epochs / 2).max(1),
        ..train_cfg.clone()
    };
    surrogate_adapted.train_qat(attacker_images, &teacher_labels, &qat_train, rng);
    (student, surrogate_adapted)
}

/// Agreement rate between two models' top-1 predictions on a dataset — the
/// fidelity measure for judging surrogate quality.
pub fn agreement<A: Infer, B: Infer>(a: &A, b: &B, images: &Tensor) -> f32 {
    let n = images.dims()[0];
    if n == 0 {
        return 0.0;
    }
    let mut same = 0usize;
    let bs = 64;
    let mut i = 0;
    while i < n {
        let hi = (i + bs).min(n);
        let idx: Vec<usize> = (i..hi).collect();
        let x = gather(images, &idx);
        same += a
            .predict(&x)
            .iter()
            .zip(b.predict(&x))
            .filter(|(p, q)| **p == *q)
            .count();
        i = hi;
    }
    same as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_models::{Architecture, ModelCfg};
    use rand::{Rng, SeedableRng};

    fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
        let per: usize = dims.iter().product();
        let samples: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.0..1.0)).collect(), dims))
            .collect();
        Tensor::stack(&samples)
    }

    #[test]
    fn distillation_reduces_loss_and_raises_agreement() {
        let mut rng = StdRng::seed_from_u64(30);
        let cfg = ModelCfg::tiny(4);
        let teacher = Architecture::ResNet.build(&cfg, &mut rng);
        let mut student = Architecture::ResNet.build(&cfg, &mut rng); // different init
        let images = rand_images(&mut rng, 96, &[3, 8, 8]);
        let before = agreement(&teacher, &student, &images);
        let train_cfg = TrainCfg {
            epochs: 10,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let losses = distill(
            &mut student,
            &teacher,
            &images,
            &DistillCfg::default(),
            &train_cfg,
            &mut rng,
        );
        assert!(
            losses.last().unwrap() < &losses[0],
            "distillation loss did not fall: {losses:?}"
        );
        let after = agreement(&teacher, &student, &images);
        assert!(
            after > before,
            "agreement did not improve: {before} -> {after}"
        );
        assert!(after > 0.7, "final agreement too low: {after}");
    }

    #[test]
    fn semi_blackbox_surrogate_matches_teacher() {
        let mut rng = StdRng::seed_from_u64(31);
        let cfg = ModelCfg::tiny(4);
        let victim = Architecture::ResNet.build(&cfg, &mut rng);
        let graph = victim.graph().clone();
        let calib = rand_images(&mut rng, 32, &[3, 8, 8]);
        let mut qat = QatNetwork::new(victim, QuantCfg::default());
        qat.calibrate(&calib);
        let deployed = Int8Engine::from_qat(&qat);
        let attacker_data = rand_images(&mut rng, 64, &[3, 8, 8]);
        let train_cfg = TrainCfg {
            epochs: 4,
            batch_size: 16,
            lr: 0.02,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let (surrogate, recovered) = reconstruct_surrogate_original(
            &deployed,
            &graph,
            &attacker_data,
            &DistillCfg::default(),
            &train_cfg,
            &mut rng,
        );
        // The recovered adapted model mirrors the deployed one...
        assert!(agreement(&recovered, &deployed, &attacker_data) > 0.9);
        // ...and the surrogate fp32 model stays close to the teacher.
        assert!(agreement(&surrogate, &deployed, &attacker_data) > 0.8);
    }

    #[test]
    fn blackbox_pair_reconstruction_runs() {
        let mut rng = StdRng::seed_from_u64(32);
        let cfg = ModelCfg::tiny(3);
        let victim = Architecture::MobileNet.build(&cfg, &mut rng);
        let calib = rand_images(&mut rng, 32, &[3, 8, 8]);
        let mut qat = QatNetwork::new(victim, QuantCfg::default());
        qat.calibrate(&calib);
        let deployed = Int8Engine::from_qat(&qat);
        let attacker_data = rand_images(&mut rng, 48, &[3, 8, 8]);
        let fresh = Architecture::MobileNet.build(&cfg, &mut rng);
        let train_cfg = TrainCfg {
            epochs: 4,
            batch_size: 16,
            lr: 0.02,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let (fp, adapted) = reconstruct_surrogate_pair(
            &deployed,
            fresh,
            &attacker_data,
            &DistillCfg::default(),
            &train_cfg,
            QuantCfg::default(),
            &mut rng,
        );
        // Surrogates must at least beat chance-level agreement (1/3).
        assert!(agreement(&fp, &deployed, &attacker_data) > 0.5);
        assert!(agreement(&adapted, &deployed, &attacker_data) > 0.5);
    }

    #[test]
    fn agreement_is_one_for_identical_models() {
        let mut rng = StdRng::seed_from_u64(33);
        let net = Architecture::DenseNet.build(&ModelCfg::tiny(4), &mut rng);
        let images = rand_images(&mut rng, 16, &[3, 8, 8]);
        assert_eq!(agreement(&net, &net, &images), 1.0);
    }
}
