//! Supervised execution: deadlines, cancellation, retry/backoff, and stall
//! detection for diva-par fan-outs.
//!
//! The attack matrix is thousands of multi-second trajectories; a bounded
//! campaign needs per-item budgets, a way to cancel the whole run, and a
//! policy for transient failures — without giving up the fixed-order
//! determinism rule (DESIGN.md §7). This module layers exactly that over
//! [`crate::par_map_indexed`]'s shape:
//!
//! - **Cooperative, not preemptive.** A [`CancelToken`] and a per-item
//!   deadline are *observed* at well-defined checkpoints ([`interrupted`] is
//!   called per attack step, per work item, and per engine inference chunk).
//!   Safe Rust cannot kill a wedged thread; what the supervisor guarantees
//!   is that any item which reaches a checkpoint stops promptly, and that a
//!   stalled item is detected, flagged, and *signalled* (its token is
//!   cancelled) by the watchdog so even token-only polling loops wake up.
//! - **Watchdog + heartbeats.** When a deadline is set,
//!   [`par_map_supervised`] runs a watchdog thread over per-worker
//!   heartbeat slots. Every [`interrupted`] call bumps the worker's beat;
//!   an item past its deadline gets its token cancelled (once) and a
//!   `job.stall` event when its heartbeat has gone silent — the batch keeps
//!   going and the item is reported [`JobStatus::TimedOut`] instead of
//!   wedging the run.
//! - **Replayable retry/backoff.** Transient failures (panics, divergence
//!   budget exhaustion) are retried up to [`RetryPolicy::max_attempts`]
//!   with a backoff derived only from `(seed, item, attempt)` — never from
//!   wall-clock or schedule — so a retried run is replayable under any
//!   `DIVA_JOBS`, consistent with diva-fault's determinism rule (DESIGN.md
//!   §8). Items that fail every attempt are [`JobStatus::Quarantined`].
//! - **Completion beats cancellation.** An item that finishes its work
//!   before observing a stop keeps its `Ok` result even if the deadline
//!   lapsed mid-flight; only *observed* stops discard work. Ok items are
//!   therefore bit-identical to an unsupervised run: the checkpoints read
//!   state, they never perturb the computation.
//!
//! The inert policy (no deadline, one attempt, untriggered token — the
//! default from [`SupervisePolicy::from_env`] with no env vars set) spawns
//! no watchdog and emits no `job.*` telemetry, so default runs stay
//! byte-identical to the unsupervised fan-out.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A cloneable cooperative cancellation flag. Cloning shares the flag:
/// cancelling any clone cancels them all. Cancellation is one-way and
/// sticky.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untriggered token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Coordination for graceful drain: once draining, *unstarted* items are
/// refused (reported [`JobStatus::Cancelled`] without consuming an
/// attempt) while items already in flight run to completion and keep their
/// results — the opposite trade from [`CancelToken`], which discards
/// everything at the next checkpoint. Cloning shares the gate, like the
/// token.
#[derive(Debug, Clone, Default)]
pub struct DrainGate {
    inner: Arc<GateInner>,
}

#[derive(Debug, Default)]
struct GateInner {
    draining: AtomicBool,
    in_flight: Mutex<usize>,
    idle: std::sync::Condvar,
}

impl DrainGate {
    /// Whether a drain has begun (sticky, like cancellation).
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Relaxed)
    }

    /// Items currently in flight across every fan-out sharing this gate.
    pub fn in_flight(&self) -> usize {
        *self.lock()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.inner
            .in_flight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// Marks the gate draining. Taken under the in-flight lock so no item
    /// can slip past a drainer that already observed quiescence.
    fn begin(&self) {
        let _n = self.lock();
        self.inner.draining.store(true, Ordering::Relaxed);
    }

    /// Registers an item as in flight, unless the gate is draining.
    fn try_enter(&self) -> Option<FlightGuard> {
        let mut n = self.lock();
        if self.inner.draining.load(Ordering::Relaxed) {
            return None;
        }
        *n += 1;
        Some(FlightGuard {
            inner: self.inner.clone(),
        })
    }

    /// Waits until no items are in flight or `timeout` lapses, returning
    /// how many were still running.
    fn await_idle(&self, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let mut n = self.lock();
        while *n > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return *n;
            }
            let (guard, res) = self
                .inner
                .idle
                .wait_timeout(n, left)
                .unwrap_or_else(|p| p.into_inner());
            n = guard;
            if res.timed_out() && *n > 0 {
                return *n;
            }
        }
        0
    }
}

/// RAII in-flight registration; the drop wakes waiting drainers at zero.
struct FlightGuard {
    inner: Arc<GateInner>,
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        let mut n = self
            .inner
            .in_flight
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.inner.idle.notify_all();
        }
    }
}

/// Outcome of a bounded [`SupervisePolicy::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainOutcome {
    /// True when every in-flight item completed within the timeout.
    pub clean: bool,
    /// Items still in flight when the timeout lapsed (0 when clean). They
    /// have been signalled via the cancel token as a fallback.
    pub remaining: usize,
}

/// Why a supervised item was stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The per-item deadline lapsed.
    TimedOut,
    /// The run (or this item) was cancelled.
    Cancelled,
}

impl StopReason {
    /// Stable lowercase label for events and reports.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::TimedOut => "timed_out",
            StopReason::Cancelled => "cancelled",
        }
    }
}

/// Terminal status of one supervised work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Completed and produced a result.
    Ok,
    /// Failed (panic or reported error) with no retry budget left — the
    /// single-attempt failure status.
    Failed,
    /// Stopped by its deadline (self-detected or watchdog-signalled).
    TimedOut,
    /// Stopped by cancellation.
    Cancelled,
    /// Failed every attempt of a multi-attempt retry policy.
    Quarantined,
}

impl JobStatus {
    /// Whether the item completed and its value is trustworthy.
    pub fn is_ok(self) -> bool {
        matches!(self, JobStatus::Ok)
    }

    /// Stable lowercase label for events and reports.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Failed => "failed",
            JobStatus::TimedOut => "timed_out",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Quarantined => "quarantined",
        }
    }
}

impl From<StopReason> for JobStatus {
    fn from(r: StopReason) -> JobStatus {
        match r {
            StopReason::TimedOut => JobStatus::TimedOut,
            StopReason::Cancelled => JobStatus::Cancelled,
        }
    }
}

/// Bounded, seeded retry-with-backoff for transient item failures.
///
/// The backoff for `(item, attempt)` depends only on the policy's seed, so
/// a retried run takes the same delays — and, because faults are keyed by
/// item/step predicates, the same outcomes — under any `DIVA_JOBS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per item (1 = no retry).
    pub max_attempts: u32,
    /// Base backoff in milliseconds; attempt `k` waits roughly
    /// `base << (k-1)` plus a seeded jitter, capped at 2 s.
    pub backoff_base_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 25,
            seed: 0xD1BA,
        }
    }
}

impl RetryPolicy {
    /// Reads `DIVA_RETRY` (attempts per item, >= 1) and `DIVA_BACKOFF_MS`;
    /// unset/unparseable values keep the defaults (no retry, 25 ms base).
    pub fn from_env() -> RetryPolicy {
        let d = RetryPolicy::default();
        RetryPolicy {
            max_attempts: env_u64("DIVA_RETRY")
                .map(|v| v.clamp(1, 64) as u32)
                .unwrap_or(d.max_attempts),
            backoff_base_ms: env_u64("DIVA_BACKOFF_MS").unwrap_or(d.backoff_base_ms),
            seed: d.seed,
        }
    }

    /// The deterministic delay before retrying `item` after `attempt`
    /// failed attempts: exponential in the attempt, jittered by a seeded
    /// mix of `(seed, item, attempt)`, capped at 2 s.
    pub fn backoff(&self, item: usize, attempt: u32) -> Duration {
        let base = self.backoff_base_ms.max(1);
        let exp = base.saturating_shl(attempt.saturating_sub(1).min(6));
        let jitter = mix64(self.seed ^ (item as u64) ^ ((attempt as u64) << 32)) % (base + 1);
        Duration::from_millis((exp + jitter).min(2_000))
    }
}

trait SaturatingShl {
    fn saturating_shl(self, by: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, by: u32) -> u64 {
        self.checked_shl(by).unwrap_or(u64::MAX)
    }
}

/// splitmix64 finalizer: a stateless, schedule-independent mixer.
fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
}

/// How a [`par_map_supervised`] fan-out is bounded.
#[derive(Debug, Clone, Default)]
pub struct SupervisePolicy {
    /// Wall-clock budget per item (per attempt); `None` = unbounded and no
    /// watchdog is spawned.
    pub item_deadline: Option<Duration>,
    /// Run-level cancellation: cancel it (from any thread) and unstarted
    /// items report [`JobStatus::Cancelled`] while running items stop at
    /// their next checkpoint.
    pub cancel: CancelToken,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Graceful-drain gate: see [`SupervisePolicy::drain`].
    pub gate: DrainGate,
}

impl SupervisePolicy {
    /// Builds a policy from the environment: `DIVA_DEADLINE_MS` (per-item
    /// budget), `DIVA_RETRY`, `DIVA_BACKOFF_MS`. With none of them set the
    /// policy is inert and supervised fan-outs behave exactly like
    /// unsupervised ones.
    pub fn from_env() -> SupervisePolicy {
        SupervisePolicy {
            item_deadline: env_u64("DIVA_DEADLINE_MS").map(Duration::from_millis),
            cancel: CancelToken::new(),
            retry: RetryPolicy::from_env(),
            gate: DrainGate::default(),
        }
    }

    /// True when the policy cannot change any item's behaviour: no
    /// deadline, no retries, cancellation not requested, and not draining.
    pub fn is_inert(&self) -> bool {
        self.item_deadline.is_none()
            && self.retry.max_attempts <= 1
            && !self.cancel.is_cancelled()
            && !self.gate.is_draining()
    }

    /// Graceful drain: refuse new items, wait up to `timeout` for items
    /// already in flight to finish *with their results kept*, and only if
    /// the timeout lapses fall back to the cancel token (the next
    /// checkpoint of each straggler discards its work). Idempotent;
    /// callable from any thread holding a clone of the policy.
    pub fn drain(&self, timeout: Duration) -> DrainOutcome {
        self.gate.begin();
        let remaining = self.gate.await_idle(timeout);
        if remaining > 0 {
            diva_trace::counter!("job.drain_timeouts", 1);
            diva_trace::event!(1, "job.drain_timeout", remaining = remaining);
            self.cancel.cancel();
        }
        DrainOutcome {
            clean: remaining == 0,
            remaining,
        }
    }
}

/// Per-item result of a supervised fan-out.
#[derive(Debug, Clone)]
pub struct JobReport<T> {
    /// Terminal status.
    pub status: JobStatus,
    /// The produced value. Present for `Ok`; may be present for stopped
    /// items (a partial result) — callers decide whether to trust it.
    pub value: Option<T>,
    /// Attempts consumed (0 when cancelled before the first attempt).
    pub attempts: u32,
    /// Last failure message, for `Failed`/`Quarantined`.
    pub error: Option<String>,
}

/// Heartbeat slot shared between one worker and the watchdog.
struct WorkerSlot {
    /// Item being processed; `usize::MAX` = idle.
    item: AtomicUsize,
    /// Nanoseconds since the fan-out epoch when the item started.
    started_ns: AtomicU64,
    /// Nanoseconds since the epoch at the last cooperative checkpoint.
    beat_ns: AtomicU64,
    /// The current item's token, for the watchdog to cancel.
    token: Mutex<Option<CancelToken>>,
}

impl WorkerSlot {
    fn idle() -> WorkerSlot {
        WorkerSlot {
            item: AtomicUsize::new(usize::MAX),
            started_ns: AtomicU64::new(0),
            beat_ns: AtomicU64::new(0),
            token: Mutex::new(None),
        }
    }

    fn begin(&self, item: usize, token: &CancelToken, epoch: Instant) {
        let now = epoch.elapsed().as_nanos() as u64;
        self.started_ns.store(now, Ordering::Relaxed);
        self.beat_ns.store(now, Ordering::Relaxed);
        *self.token.lock().unwrap_or_else(|p| p.into_inner()) = Some(token.clone());
        self.item.store(item, Ordering::Release);
    }

    fn end(&self) {
        self.item.store(usize::MAX, Ordering::Release);
        *self.token.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }
}

/// The supervision scope of the item the current thread is processing.
struct ActiveItem {
    deadline: Option<Instant>,
    item_token: CancelToken,
    run_token: CancelToken,
    stopped: Cell<Option<StopReason>>,
    slot: Option<Arc<WorkerSlot>>,
    epoch: Instant,
}

thread_local! {
    static ACTIVE: RefCell<Option<Rc<ActiveItem>>> = const { RefCell::new(None) };
}

/// RAII installation of an [`ActiveItem`] scope; nests and restores.
struct ItemGuard {
    prev: Option<Rc<ActiveItem>>,
}

impl ItemGuard {
    fn enter(active: Rc<ActiveItem>) -> ItemGuard {
        let prev = ACTIVE.with(|a| a.borrow_mut().replace(active));
        ItemGuard { prev }
    }
}

impl Drop for ItemGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE.with(|a| *a.borrow_mut() = prev);
    }
}

fn active() -> Option<Rc<ActiveItem>> {
    ACTIVE.with(|a| a.borrow().clone())
}

/// The cooperative checkpoint. Call it at natural pause points (attack
/// steps, inference chunks): it bumps the worker's heartbeat and returns
/// the stop reason once the item's deadline has lapsed or cancellation was
/// requested. The first observed stop is sticky — later calls return it
/// without re-deriving, so an item reports one consistent reason.
///
/// Outside a supervised item this returns `None` after a single
/// thread-local read, so instrumented hot paths cost nothing extra in
/// unsupervised runs.
pub fn interrupted() -> Option<StopReason> {
    let active = active()?;
    if let Some(slot) = &active.slot {
        slot.beat_ns
            .store(active.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    if let Some(r) = active.stopped.get() {
        return Some(r);
    }
    let reason = if active.deadline.is_some_and(|d| Instant::now() >= d) {
        Some(StopReason::TimedOut)
    } else if active.item_token.is_cancelled() || active.run_token.is_cancelled() {
        // The watchdog cancels the item token only after the deadline, so a
        // token observed without a lapsed deadline means run-level cancel.
        Some(if active.deadline.is_some_and(|d| Instant::now() >= d) {
            StopReason::TimedOut
        } else {
            StopReason::Cancelled
        })
    } else {
        None
    };
    if let Some(r) = reason {
        active.stopped.set(Some(r));
    }
    reason
}

/// The stop already observed by this item, without performing a new check
/// (and without bumping the heartbeat). Lets callers ask "did this item
/// finish cleanly?" after the work returns.
pub fn stop_observed() -> Option<StopReason> {
    active().and_then(|a| a.stopped.get())
}

/// Raw token check: whether the current item's (or run's) cancellation has
/// been requested. Unlike [`interrupted`] this neither consults the
/// deadline nor bumps the heartbeat — it models foreign code that honours
/// only an abort flag, which is exactly what the watchdog exists to wake.
pub fn cancelled() -> bool {
    match active() {
        Some(a) => a.item_token.is_cancelled() || a.run_token.is_cancelled(),
        None => false,
    }
}

/// True while the current thread is inside a supervised item.
pub fn supervised() -> bool {
    active().is_some()
}

/// A `Send + Sync` snapshot of the current item's supervision scope, for
/// forwarding the checkpoint into *nested* fan-outs — worker threads do
/// not inherit the thread-local scope, so code like the int8 engine's
/// chunked inference moves a snapshot into its closures instead. The
/// snapshot observes the same deadline and tokens; it cannot record the
/// stop on the owning item (the owner does that at its own next
/// [`interrupted`] call).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    deadline: Option<Instant>,
    item_token: CancelToken,
    run_token: CancelToken,
}

impl Checkpoint {
    /// Whether a stop is due right now (lapsed deadline or cancellation).
    pub fn stop_due(&self) -> Option<StopReason> {
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            Some(StopReason::TimedOut)
        } else if self.item_token.is_cancelled() || self.run_token.is_cancelled() {
            Some(StopReason::Cancelled)
        } else {
            None
        }
    }
}

/// The current item's supervision scope as a sendable snapshot, or `None`
/// outside supervision.
pub fn snapshot() -> Option<Checkpoint> {
    active().map(|a| Checkpoint {
        deadline: a.deadline,
        item_token: a.item_token.clone(),
        run_token: a.run_token.clone(),
    })
}

/// Sleeps for `total`, polling only the cancel token (never the deadline,
/// never the heartbeat) — the stand-in for a stalled worker stuck in
/// non-cooperative code. Returns early as soon as [`cancelled`] fires,
/// which for a deadline overrun requires the watchdog to signal the token.
pub fn cooperative_stall(total: Duration) {
    let until = Instant::now() + total;
    let nap = Duration::from_millis(2);
    while Instant::now() < until {
        if cancelled() {
            return;
        }
        std::thread::sleep(nap.min(until.saturating_duration_since(Instant::now())));
    }
}

/// Maps `f` over `0..n` under `policy`, returning one [`JobReport`] per
/// index, in index order.
///
/// `f` returns `Err(message)` for a *transient* failure (retried under the
/// policy); panics are caught per item and treated the same way. An item
/// that observes a stop via [`interrupted`] is reported
/// `TimedOut`/`Cancelled` and never retried (its budget is spent). Items
/// failing every attempt of a multi-attempt policy are `Quarantined`;
/// single-attempt failures stay `Failed`, matching the unsupervised
/// fan-out's semantics.
///
/// Scheduling mirrors [`crate::par_map_indexed`]: a shared cursor, scoped
/// workers, index-order merge, per-worker counter shards, serial fallback
/// at `jobs() == 1` or inside a worker. A watchdog thread is spawned only
/// when `policy.item_deadline` is set (including on the serial path, so a
/// stalled serial run is still signalled).
pub fn par_map_supervised<T, F>(n: usize, policy: &SupervisePolicy, f: F) -> Vec<JobReport<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T, String> + Sync,
{
    let workers = crate::jobs().min(n);
    let epoch = Instant::now();
    if workers <= 1 || crate::in_worker() {
        // Serial path: one slot so the watchdog (deadline only, and never
        // nested inside another worker) can still signal a stalled item.
        let slot = Arc::new(WorkerSlot::idle());
        let done = Arc::new(AtomicBool::new(false));
        let dog = match policy.item_deadline {
            Some(d) if !crate::in_worker() => Some(spawn_watchdog(
                vec![slot.clone()],
                d,
                policy,
                done.clone(),
                epoch,
            )),
            _ => None,
        };
        let out = (0..n)
            .map(|i| run_item(i, policy, &slot, epoch, &f))
            .collect();
        done.store(true, Ordering::Relaxed);
        if let Some(h) = dog {
            let _ = h.join();
        }
        return out;
    }
    let _span = diva_trace::span(2, "par.fan_out");
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Arc<WorkerSlot>> = (0..workers).map(|_| Arc::new(WorkerSlot::idle())).collect();
    let done = Arc::new(AtomicBool::new(false));
    let dog = policy
        .item_deadline
        .map(|d| spawn_watchdog(slots.clone(), d, policy, done.clone(), epoch));
    let mut merged: Vec<Option<JobReport<T>>> = Vec::with_capacity(n);
    merged.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let slot = slots[w].clone();
                let f = &f;
                let cursor = &cursor;
                scope.spawn(move || {
                    crate::IN_WORKER.with(|flag| flag.set(true));
                    let shard = diva_trace::counter_shard();
                    let mut local: Vec<(usize, JobReport<T>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, run_item(i, policy, &slot, epoch, f)));
                    }
                    drop(shard);
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (i, r) in local {
                        merged[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    done.store(true, Ordering::Relaxed);
    if let Some(h) = dog {
        let _ = h.join();
    }
    merged
        .into_iter()
        .map(|r| r.expect("par_map_supervised: every index computed exactly once"))
        .collect()
}

/// One item's attempt loop: install the supervision scope, run `f`, decide
/// the status, retry transient failures under the policy.
fn run_item<T, F>(
    i: usize,
    policy: &SupervisePolicy,
    slot: &Arc<WorkerSlot>,
    epoch: Instant,
    f: &F,
) -> JobReport<T>
where
    F: Fn(usize) -> Result<T, String>,
{
    let Some(_flight) = policy.gate.try_enter() else {
        // Draining: the item never started, so it is refused rather than
        // interrupted — Cancelled with zero attempts, same as a
        // pre-cancelled run.
        diva_trace::counter!("job.drained", 1);
        diva_trace::event!(1, "job.drained", item = i);
        return JobReport {
            status: JobStatus::Cancelled,
            value: None,
            attempts: 0,
            error: None,
        };
    };
    let max_attempts = policy.retry.max_attempts.max(1);
    let mut attempts = 0u32;
    let mut last_err: Option<String> = None;
    loop {
        if policy.cancel.is_cancelled() {
            diva_trace::counter!("job.cancelled", 1);
            diva_trace::event!(1, "job.cancelled", item = i, attempts = attempts);
            return JobReport {
                status: JobStatus::Cancelled,
                value: None,
                attempts,
                error: last_err,
            };
        }
        attempts += 1;
        let token = CancelToken::new();
        let active = Rc::new(ActiveItem {
            deadline: policy.item_deadline.map(|d| Instant::now() + d),
            item_token: token.clone(),
            run_token: policy.cancel.clone(),
            stopped: Cell::new(None),
            slot: policy.item_deadline.is_some().then(|| slot.clone()),
            epoch,
        });
        if policy.item_deadline.is_some() {
            slot.begin(i, &token, epoch);
        }
        let guard = ItemGuard::enter(active.clone());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
        drop(guard);
        if policy.item_deadline.is_some() {
            slot.end();
        }
        let stopped = active.stopped.get();
        match result {
            Ok(Ok(v)) => {
                return match stopped {
                    // Completion beats cancellation: an unobserved lapse
                    // keeps the finished value. Observed stops returned a
                    // partial value the caller must not trust as complete.
                    None => JobReport {
                        status: JobStatus::Ok,
                        value: Some(v),
                        attempts,
                        error: None,
                    },
                    Some(r) => stopped_report(i, r, Some(v), attempts, last_err),
                };
            }
            Ok(Err(e)) => {
                if let Some(r) = stopped {
                    return stopped_report(i, r, None, attempts, Some(e));
                }
                last_err = Some(e);
            }
            Err(payload) => {
                let msg = crate::panic_message(payload.as_ref());
                diva_trace::counter!("par.item_panics", 1);
                diva_trace::event!(1, "par.item_panic", item = i, message = msg.clone());
                if let Some(r) = stopped {
                    return stopped_report(i, r, None, attempts, Some(msg));
                }
                last_err = Some(msg);
            }
        }
        if attempts >= max_attempts {
            if max_attempts > 1 {
                diva_trace::counter!("job.quarantined", 1);
                diva_trace::event!(
                    1,
                    "job.quarantine",
                    item = i,
                    attempts = attempts,
                    error = last_err.clone().unwrap_or_default(),
                );
                return JobReport {
                    status: JobStatus::Quarantined,
                    value: None,
                    attempts,
                    error: last_err,
                };
            }
            return JobReport {
                status: JobStatus::Failed,
                value: None,
                attempts,
                error: last_err,
            };
        }
        let backoff = policy.retry.backoff(i, attempts);
        diva_trace::counter!("job.retries", 1);
        diva_trace::event!(
            1,
            "job.retry",
            item = i,
            attempt = attempts,
            backoff_ms = backoff.as_millis() as u64,
        );
        std::thread::sleep(backoff);
    }
}

fn stopped_report<T>(
    i: usize,
    reason: StopReason,
    value: Option<T>,
    attempts: u32,
    error: Option<String>,
) -> JobReport<T> {
    match reason {
        StopReason::TimedOut => {
            diva_trace::counter!("job.timed_out", 1);
            diva_trace::event!(1, "job.timeout", item = i, attempts = attempts);
        }
        StopReason::Cancelled => {
            diva_trace::counter!("job.cancelled", 1);
            diva_trace::event!(1, "job.cancelled", item = i, attempts = attempts);
        }
    }
    JobReport {
        status: reason.into(),
        value,
        attempts,
        error,
    }
}

/// Watchdog loop: polls the heartbeat slots and cancels the token of any
/// item past the deadline (once per item), emitting a `job.stall` event
/// when the item's heartbeat went silent — the signature of a worker stuck
/// in non-cooperative code rather than one merely running long.
fn spawn_watchdog(
    slots: Vec<Arc<WorkerSlot>>,
    deadline: Duration,
    policy: &SupervisePolicy,
    done: Arc<AtomicBool>,
    epoch: Instant,
) -> std::thread::JoinHandle<()> {
    let run_token = policy.cancel.clone();
    let poll = (deadline / 4).clamp(Duration::from_millis(5), Duration::from_millis(50));
    let deadline_ns = deadline.as_nanos() as u64;
    std::thread::spawn(move || {
        while !done.load(Ordering::Relaxed) {
            std::thread::sleep(poll);
            let now = epoch.elapsed().as_nanos() as u64;
            let run_cancelled = run_token.is_cancelled();
            for slot in &slots {
                let item = slot.item.load(Ordering::Acquire);
                if item == usize::MAX {
                    continue;
                }
                let elapsed = now.saturating_sub(slot.started_ns.load(Ordering::Relaxed));
                if !run_cancelled && elapsed <= deadline_ns {
                    continue;
                }
                let token = slot.token.lock().unwrap_or_else(|p| p.into_inner()).clone();
                let Some(token) = token else { continue };
                if token.is_cancelled() {
                    continue;
                }
                token.cancel();
                diva_trace::counter!("job.watchdog_cancels", 1);
                let silent_ns = now.saturating_sub(slot.beat_ns.load(Ordering::Relaxed));
                if silent_ns > 2 * poll.as_nanos() as u64 {
                    diva_trace::counter!("job.stalls_detected", 1);
                    diva_trace::event!(
                        1,
                        "job.stall",
                        item = item,
                        silent_ms = silent_ns / 1_000_000,
                        elapsed_ms = elapsed / 1_000_000,
                    );
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_jobs;

    /// `set_jobs` is process-global; serialize with the lib tests.
    fn lock_global() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn inert() -> SupervisePolicy {
        SupervisePolicy::default()
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn inert_policy_matches_catch_semantics() {
        let _g = lock_global();
        for jobs in [1, 4] {
            set_jobs(jobs);
            let out = par_map_supervised(12, &inert(), |i| {
                if i == 3 {
                    panic!("boom on {i}");
                }
                if i == 5 {
                    return Err("soft failure".to_string());
                }
                Ok(i * 2)
            });
            assert_eq!(out.len(), 12);
            for (i, r) in out.iter().enumerate() {
                match i {
                    3 => {
                        assert_eq!(r.status, JobStatus::Failed);
                        assert!(r.error.as_deref().unwrap().contains("boom on 3"));
                    }
                    5 => {
                        assert_eq!(r.status, JobStatus::Failed);
                        assert_eq!(r.error.as_deref(), Some("soft failure"));
                    }
                    _ => {
                        assert_eq!(r.status, JobStatus::Ok, "item {i}");
                        assert_eq!(r.value, Some(i * 2));
                        assert_eq!(r.attempts, 1);
                    }
                }
            }
        }
        set_jobs(0);
    }

    #[test]
    fn interrupted_is_none_outside_supervision() {
        assert_eq!(interrupted(), None);
        assert!(!cancelled());
        assert!(!supervised());
        assert_eq!(stop_observed(), None);
    }

    #[test]
    fn deadline_self_detection_marks_timed_out() {
        let _g = lock_global();
        set_jobs(1);
        let policy = SupervisePolicy {
            item_deadline: Some(Duration::from_millis(20)),
            ..inert()
        };
        let out = par_map_supervised(3, &policy, |i| {
            if i == 1 {
                // Busy item that checks in cooperatively: the deadline is
                // self-detected at a checkpoint, no watchdog needed.
                let until = Instant::now() + Duration::from_millis(300);
                while Instant::now() < until {
                    if interrupted().is_some() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            Ok(i)
        });
        assert_eq!(out[0].status, JobStatus::Ok);
        assert_eq!(out[1].status, JobStatus::TimedOut);
        assert_eq!(out[2].status, JobStatus::Ok, "batch survives the timeout");
        set_jobs(0);
    }

    #[test]
    fn watchdog_wakes_token_only_stall() {
        let _g = lock_global();
        for jobs in [1, 4] {
            set_jobs(jobs);
            let policy = SupervisePolicy {
                item_deadline: Some(Duration::from_millis(60)),
                ..inert()
            };
            let started = Instant::now();
            let out = par_map_supervised(4, &policy, |i| {
                if i == 2 {
                    // Polls only the token: without the watchdog this naps
                    // for 30 s and the test times out.
                    cooperative_stall(Duration::from_secs(30));
                    // The next checkpoint reports the lapsed deadline.
                    interrupted();
                }
                Ok(i)
            });
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "watchdog must break the stall (jobs={jobs})"
            );
            assert_eq!(out[2].status, JobStatus::TimedOut, "jobs={jobs}");
            for i in [0usize, 1, 3] {
                assert_eq!(out[i].status, JobStatus::Ok, "item {i} at jobs={jobs}");
            }
        }
        set_jobs(0);
    }

    #[test]
    fn cancellation_stops_started_and_unstarted_items() {
        let _g = lock_global();
        set_jobs(2);
        let policy = inert();
        let token = policy.cancel.clone();
        token.cancel();
        let out = par_map_supervised(6, &policy, Ok::<usize, String>);
        for r in &out {
            assert_eq!(r.status, JobStatus::Cancelled);
            assert_eq!(r.attempts, 0, "cancelled before the first attempt");
        }
        set_jobs(0);
    }

    #[test]
    fn mid_run_cancellation_preserves_completed_items() {
        let _g = lock_global();
        set_jobs(2);
        let policy = inert();
        let token = policy.cancel.clone();
        let waiter = policy.cancel.clone();
        let out = par_map_supervised(8, &policy, move |i| {
            if i == 0 {
                // First item cancels the run and finishes without ever
                // *observing* the stop it triggered, so its result is kept.
                token.cancel();
                return Ok(i);
            }
            // Everyone else holds until the cancel is visible, then checks
            // in — the runner discards them as observed-Cancelled.
            while !waiter.is_cancelled() {
                std::thread::yield_now();
            }
            if interrupted().is_some() {
                return Err("should have been caught by the runner".into());
            }
            Ok(i)
        });
        assert_eq!(
            out[0].status,
            JobStatus::Ok,
            "completion beats cancellation"
        );
        let cancelled = out
            .iter()
            .filter(|r| r.status == JobStatus::Cancelled)
            .count();
        assert_eq!(cancelled, 7, "every other item must observe the cancel");
        set_jobs(0);
    }

    #[test]
    fn retry_recovers_transient_failures_and_quarantines_persistent_ones() {
        let _g = lock_global();
        set_jobs(1);
        let policy = SupervisePolicy {
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base_ms: 1,
                seed: 7,
            },
            ..inert()
        };
        let tries = Mutex::new(vec![0u32; 4]);
        let out = par_map_supervised(4, &policy, |i| {
            let mut t = tries.lock().unwrap();
            t[i] += 1;
            let attempt = t[i];
            match i {
                // Fails twice, succeeds on the third attempt.
                1 if attempt < 3 => Err(format!("transient {attempt}")),
                // Fails every attempt: quarantined.
                2 => Err("persistent".to_string()),
                _ => Ok(i * 10),
            }
        });
        assert_eq!(out[0].status, JobStatus::Ok);
        assert_eq!(out[1].status, JobStatus::Ok);
        assert_eq!(out[1].attempts, 3);
        assert_eq!(out[1].value, Some(10));
        assert_eq!(out[2].status, JobStatus::Quarantined);
        assert_eq!(out[2].attempts, 3);
        assert_eq!(out[2].error.as_deref(), Some("persistent"));
        assert_eq!(out[3].status, JobStatus::Ok);
        set_jobs(0);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base_ms: 10,
            seed: 42,
        };
        for item in 0..8 {
            for attempt in 1..5 {
                assert_eq!(p.backoff(item, attempt), p.backoff(item, attempt));
                assert!(p.backoff(item, attempt) <= Duration::from_secs(2));
            }
            assert!(p.backoff(item, 3) >= p.backoff(item, 1) / 2);
        }
        let q = RetryPolicy { seed: 43, ..p };
        assert!(
            (0..32).any(|i| p.backoff(i, 1) != q.backoff(i, 1)),
            "different seeds must produce different jitter somewhere"
        );
    }

    #[test]
    fn from_env_reads_the_knobs() {
        let _g = lock_global();
        let stash = |k: &str| std::env::var(k).ok();
        let prev = (
            stash("DIVA_DEADLINE_MS"),
            stash("DIVA_RETRY"),
            stash("DIVA_BACKOFF_MS"),
        );
        std::env::set_var("DIVA_DEADLINE_MS", "1500");
        std::env::set_var("DIVA_RETRY", "3");
        std::env::set_var("DIVA_BACKOFF_MS", "7");
        let p = SupervisePolicy::from_env();
        assert_eq!(p.item_deadline, Some(Duration::from_millis(1500)));
        assert_eq!(p.retry.max_attempts, 3);
        assert_eq!(p.retry.backoff_base_ms, 7);
        assert!(!p.is_inert());
        std::env::remove_var("DIVA_DEADLINE_MS");
        std::env::remove_var("DIVA_RETRY");
        std::env::remove_var("DIVA_BACKOFF_MS");
        assert!(SupervisePolicy::from_env().is_inert());
        let restore = |k: &str, v: Option<String>| match v {
            Some(v) => std::env::set_var(k, v),
            None => std::env::remove_var(k),
        };
        restore("DIVA_DEADLINE_MS", prev.0);
        restore("DIVA_RETRY", prev.1);
        restore("DIVA_BACKOFF_MS", prev.2);
    }

    #[test]
    fn drain_keeps_in_flight_results_and_refuses_unstarted() {
        let _g = lock_global();
        set_jobs(2);
        let policy = inert();
        let gate = policy.gate.clone();
        let worker_policy = policy.clone();
        let worker_gate = gate.clone();
        let h = std::thread::spawn(move || {
            par_map_supervised(6, &worker_policy, move |i| {
                if i < 2 {
                    // Hold until the drain begins, then finish normally:
                    // these are the in-flight items whose results must
                    // survive.
                    while !worker_gate.is_draining() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                Ok::<usize, String>(i * 10)
            })
        });
        // Wait for both workers to be inside items 0 and 1.
        let started = Instant::now();
        while gate.in_flight() < 2 {
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "items never started"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let out = policy.drain(Duration::from_secs(10));
        assert!(out.clean, "in-flight items finish within the budget");
        assert_eq!(out.remaining, 0);
        assert!(!policy.cancel.is_cancelled(), "clean drain never cancels");
        let reports = h.join().unwrap();
        for (i, r) in reports.iter().enumerate() {
            if i < 2 {
                assert_eq!(r.status, JobStatus::Ok, "in-flight item {i}");
                assert_eq!(r.value, Some(i * 10));
            } else {
                assert_eq!(r.status, JobStatus::Cancelled, "unstarted item {i}");
                assert_eq!(r.attempts, 0);
            }
        }
        assert!(!policy.is_inert(), "a draining policy is not inert");
        set_jobs(0);
    }

    #[test]
    fn drain_timeout_falls_back_to_cancellation() {
        let _g = lock_global();
        set_jobs(1);
        let policy = inert();
        let gate = policy.gate.clone();
        let worker_policy = policy.clone();
        let begun = Instant::now();
        let h = std::thread::spawn(move || {
            par_map_supervised(2, &worker_policy, |_| {
                // Polls only the token: a drain timeout must cancel to
                // unstick it.
                cooperative_stall(Duration::from_secs(30));
                Ok::<usize, String>(0)
            })
        });
        while gate.in_flight() < 1 {
            assert!(
                begun.elapsed() < Duration::from_secs(10),
                "item never started"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let out = policy.drain(Duration::from_millis(50));
        assert!(!out.clean);
        assert_eq!(out.remaining, 1);
        assert!(policy.cancel.is_cancelled(), "timeout falls back to cancel");
        let reports = h.join().unwrap();
        assert!(
            begun.elapsed() < Duration::from_secs(10),
            "cancel must break the stall"
        );
        assert_eq!(
            reports[1].status,
            JobStatus::Cancelled,
            "the unstarted item is refused"
        );
        set_jobs(0);
    }

    #[test]
    fn results_merge_in_index_order_for_any_job_count() {
        let _g = lock_global();
        for jobs in [1, 3, 8] {
            set_jobs(jobs);
            let out = par_map_supervised(50, &inert(), |i| Ok::<usize, String>(i * i));
            let values: Vec<usize> = out.into_iter().map(|r| r.value.unwrap()).collect();
            assert_eq!(values, (0..50).map(|i| i * i).collect::<Vec<_>>());
        }
        set_jobs(0);
    }
}
