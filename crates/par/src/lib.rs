//! diva-par: a tiny deterministic scoped worker pool.
//!
//! Every hot path in this repo — the per-image attack matrix, minibatch
//! gradient accumulation, int8 batch inference — is embarrassingly parallel
//! *per index*: item `i`'s result depends only on `i`, never on which worker
//! computed it or in what order. [`par_map_indexed`] exploits exactly that
//! shape and nothing more:
//!
//! - **Deterministic by construction.** Results are collected per index and
//!   merged in index order after all workers join, so the output `Vec` is
//!   identical for any worker count and any schedule. Callers keep the
//!   stronger guarantee (bit-identical floats) by making `f(i)` itself
//!   schedule-independent — see DESIGN.md §7 for the fixed-order-reduction
//!   rule.
//! - **`DIVA_JOBS` sizing.** Worker count comes from [`jobs`]: an in-process
//!   override ([`set_jobs`]), else the `DIVA_JOBS` env var, else
//!   `std::thread::available_parallelism()`. `DIVA_JOBS=1` is an *exact*
//!   serial fallback: no threads are spawned at all and `f` runs inline on
//!   the caller's thread.
//! - **No nesting explosion.** A fan-out from inside a worker runs inline
//!   serially (tracked by a thread-local flag), so e.g. the chunked
//!   `Int8Engine` running inside a per-image attack worker does not spawn
//!   workers-times-workers threads.
//! - **Observability.** Each worker installs a [`diva_trace::counter_shard`]
//!   so counters incremented in worker threads are buffered locally and
//!   flushed once at join — totals match a serial run exactly, without the
//!   workers contending on the global recorder mutex.
//!
//! The crate is std-only (scoped threads + atomics); there is no channel,
//! no work-stealing deque, and no persistent pool. Fan-outs here wrap work
//! items that cost milliseconds to seconds (a full attack trajectory, a
//! forward/backward over a gradient shard), so spawn overhead is noise and
//! a shared atomic cursor is all the load balancing required.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod supervise;

pub use supervise::{CancelToken, JobReport, JobStatus, SupervisePolicy};

/// In-process worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while this thread is a diva-par worker; nested fan-outs run
    /// inline serially instead of spawning another layer of threads.
    pub(crate) static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the worker count for this process, taking precedence over
/// `DIVA_JOBS`. `set_jobs(0)` clears the override. Intended for tests and
/// CLI flags; normal configuration goes through the environment.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Effective worker count: the [`set_jobs`] override if set, else the
/// `DIVA_JOBS` env var (values >= 1; unset, empty, `0`, or unparseable fall
/// through), else `std::thread::available_parallelism()`. Always >= 1.
///
/// The env var is re-read on every call (fan-outs are coarse, so this is
/// off any hot path) so tests can flip it between runs.
pub fn jobs() -> usize {
    let o = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    match std::env::var("DIVA_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// True when called from inside a diva-par worker thread. A fan-out issued
/// here would run inline serially; callers sensitive to that (e.g. chunked
/// inference) can use this to skip chunking overhead entirely.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// With an effective worker count of 1 (or when already inside a worker)
/// this is exactly `(0..n).map(f).collect()` on the calling thread.
/// Otherwise `min(jobs(), n)` scoped workers pull indices from a shared
/// atomic cursor, stash `(index, result)` pairs locally, and the caller
/// merges them by index after joining — so the returned `Vec` is the same
/// for every schedule. A panic in any `f(i)` is propagated to the caller
/// after all workers have been joined.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs().min(n);
    if workers <= 1 || in_worker() {
        return (0..n).map(f).collect();
    }
    let _span = diva_trace::span(2, "par.fan_out");
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let shard = diva_trace::counter_shard();
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    drop(shard);
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (i, v) in local {
                        slots[i] = Some(v);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("par_map_indexed: every index computed exactly once"))
        .collect()
}

/// [`par_map_indexed`] with per-item panic isolation: a panic in `f(i)` is
/// caught and surfaced as `Err(message)` for that index while every other
/// item still completes and merges in order. This is the degradation path
/// for fan-outs that must report partial results (e.g. the per-image attack
/// matrix) instead of aborting a multi-minute run on one poisoned item.
///
/// The catch is per *item*, not per worker: the worker thread survives and
/// keeps pulling indices, so panic isolation does not change which items
/// run or in what order — determinism is preserved for every job count,
/// including the serial `DIVA_JOBS=1` path.
pub fn par_map_indexed_catch<T, F>(n: usize, f: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed(n, |i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).map_err(|payload| {
            let msg = panic_message(payload.as_ref());
            diva_trace::counter!("par.item_panics", 1);
            diva_trace::event!(1, "par.item_panic", item = i, message = msg.clone());
            msg
        })
    })
}

/// Best-effort text of a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Splits `0..n` into fixed-size chunks of `chunk` (the last may be short),
/// returned as `(start, end)` ranges. Chunk boundaries depend only on `n`
/// and `chunk` — never on the worker count — which is what keeps chunked
/// float reductions bit-identical across `DIVA_JOBS` settings.
pub fn fixed_chunks(n: usize, chunk: usize) -> Vec<(usize, usize)> {
    assert!(chunk > 0, "chunk size must be >= 1");
    (0..n.div_ceil(chunk))
        .map(|c| (c * chunk, ((c + 1) * chunk).min(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `set_jobs` and the env var are process-global; serialize tests.
    fn lock_global() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn results_are_in_index_order_for_any_job_count() {
        let _g = lock_global();
        for jobs in [1, 2, 3, 8, 64] {
            set_jobs(jobs);
            let out = par_map_indexed(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        set_jobs(0);
    }

    #[test]
    fn serial_fallback_runs_on_calling_thread() {
        let _g = lock_global();
        set_jobs(1);
        let caller = std::thread::current().id();
        let out = par_map_indexed(8, |i| (i, std::thread::current().id()));
        for (_, id) in out {
            assert_eq!(id, caller, "DIVA_JOBS=1 must not spawn threads");
        }
        set_jobs(0);
    }

    #[test]
    fn nested_fan_out_runs_inline() {
        let _g = lock_global();
        set_jobs(4);
        let out = par_map_indexed(4, |i| {
            assert!(in_worker());
            // Inner fan-out must not spawn another layer of workers.
            let inner_caller = std::thread::current().id();
            let inner = par_map_indexed(3, move |j| {
                assert_eq!(std::thread::current().id(), inner_caller);
                i * 10 + j
            });
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![3, 33, 63, 93]);
        assert!(!in_worker(), "flag must not leak to the caller");
        set_jobs(0);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let _g = lock_global();
        set_jobs(4);
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
        set_jobs(0);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let _g = lock_global();
        set_jobs(4);
        let result = std::panic::catch_unwind(|| {
            par_map_indexed(16, |i| {
                if i == 5 {
                    panic!("worker bug");
                }
                i
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        set_jobs(0);
    }

    #[test]
    fn catch_variant_isolates_per_item_panics() {
        let _g = lock_global();
        for jobs in [1, 4] {
            set_jobs(jobs);
            let out = par_map_indexed_catch(12, |i| {
                if i == 3 {
                    panic!("boom on {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 12);
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("boom on 3"), "unexpected message {msg}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "item {i} must complete");
                }
            }
        }
        set_jobs(0);
    }

    #[test]
    fn worker_counters_flush_at_join() {
        let _g = lock_global();
        diva_trace::set_level(1);
        diva_trace::reset();
        set_jobs(4);
        let before = diva_trace::counter_value("par.test.items");
        assert_eq!(before, 0);
        par_map_indexed(100, |_| diva_trace::counter_add("par.test.items", 1));
        assert_eq!(
            diva_trace::counter_value("par.test.items"),
            100,
            "worker-shard counters must be flushed when workers join"
        );
        set_jobs(0);
        diva_trace::set_level(0);
        diva_trace::reset();
    }

    #[test]
    fn fixed_chunks_cover_range_independent_of_jobs() {
        let chunks = fixed_chunks(10, 4);
        assert_eq!(chunks, vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(fixed_chunks(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(fixed_chunks(4, 4), vec![(0, 4)]);
        assert_eq!(fixed_chunks(4, 64), vec![(0, 4)]);
    }

    #[test]
    fn jobs_env_var_is_honored() {
        let _g = lock_global();
        set_jobs(0);
        // Env manipulation is process-global; restore afterwards.
        let prev = std::env::var("DIVA_JOBS").ok();
        std::env::set_var("DIVA_JOBS", "3");
        assert_eq!(jobs(), 3);
        std::env::set_var("DIVA_JOBS", "0");
        assert!(jobs() >= 1, "DIVA_JOBS=0 falls back to a sane default");
        std::env::set_var("DIVA_JOBS", "not-a-number");
        assert!(jobs() >= 1);
        // The in-process override wins over the environment.
        std::env::set_var("DIVA_JOBS", "2");
        set_jobs(7);
        assert_eq!(jobs(), 7);
        set_jobs(0);
        match prev {
            Some(v) => std::env::set_var("DIVA_JOBS", v),
            None => std::env::remove_var("DIVA_JOBS"),
        }
    }
}
