//! `repro serve` / `repro attack --remote` — attack-as-a-service on top of
//! [`diva_serve`].
//!
//! The daemon prepares a victim (and optionally its surrogate bundles)
//! exactly once — reusing the `DIVA_RESUME` checkpoint machinery, so a
//! restart after a crash skips retraining — then serves attack jobs over
//! the length-prefixed TCP protocol until a client sends `Shutdown`.
//! `repro attack --remote ADDR` is the matching client: it regenerates the
//! deterministic validation pool locally, picks an image, and submits one
//! attack job.
//!
//! # Job wire format (`DAJ1`)
//!
//! All integers little-endian:
//!
//! ```text
//! "DAJ1" | kind u8 | c f32 | eps f32 | alpha f32 | momentum f32
//!        | steps u32 | label u32 | ndims u8 | dims u32 × ndims
//!        | image f32 × Π dims
//! ```
//!
//! `kind`: 0 PGD, 1 Momentum PGD, 2 CW, 3 DIVA whitebox, 4 DIVA
//! semi-blackbox, 5 DIVA blackbox (4 and 5 need `--surrogates` on the
//! server). `dims` are per-image (no batch axis) and must match the
//! served models' input shape.
//!
//! # Result wire format (`DAR1`)
//!
//! ```text
//! "DAR1" | first_flip i64 (-1 = never) | original_pred u32
//!        | engine_pred u32 | label u32 | evaded u8
//!        | ndims u8 | dims u32 × ndims | adv f32 × Π dims
//! ```
//!
//! `evaded` is the paper's success criterion: the deployed int8 engine
//! flips off the true label while the original model stays correct.
//!
//! A malformed or mis-shaped job fails deterministically, so under a
//! retrying policy it lands as `Quarantined` rather than poisoning the
//! pool. Attack jobs check for cancellation/stall faults before the
//! gradient loop starts; once iterating they run to completion and an
//! exceeded deadline surfaces as `TimedOut` with the journal left
//! pending for replay.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use diva_core::attack::{
    cw_attack_traced, diva_attack_traced, momentum_pgd_attack_traced, pgd_attack_traced, AttackCfg,
};
use diva_core::pipeline::FirstFlipTracker;
use diva_nn::Infer;
use diva_par::supervise::SupervisePolicy;
use diva_serve::{Client, JobExecutor, Reply, ServeConfig, Server, WireStatus};
use diva_tensor::Tensor;

use crate::experiments::resume_ckpt_dir;
use crate::suite::{
    datasets, prepare_surrogates_resumable, prepare_victim_resumable, ExperimentScale, Surrogates,
    VictimModels,
};
use diva_models::Architecture;

const JOB_MAGIC: &[u8; 4] = b"DAJ1";
const RESULT_MAGIC: &[u8; 4] = b"DAR1";

/// One remote attack request: which attack, its hyper-parameters, and the
/// natural image with its true label.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackJob {
    /// Attack selector (see the module docs for the numbering).
    pub kind: u8,
    /// DIVA balance constant `c` (ignored by kinds 0–2).
    pub c: f32,
    /// PGD hyper-parameters; `random_start` is not carried over the wire.
    pub cfg: AttackCfg,
    /// True label of the image.
    pub label: usize,
    /// Per-image dims (no batch axis), e.g. `[3, 32, 32]`.
    pub dims: Vec<usize>,
    /// Natural image data, `Π dims` floats in `[0, 1]`.
    pub image: Vec<f32>,
}

/// The server's answer to an `Ok` job: first-flip metrics plus the
/// adversarial image itself.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackResult {
    /// Earliest attack step at which the engine's label left its clean
    /// prediction (`None` = never flipped during the trajectory).
    pub first_flip: Option<usize>,
    /// Original (fp32) model's prediction on the adversarial image.
    pub original_pred: usize,
    /// Deployed int8 engine's prediction on the adversarial image.
    pub engine_pred: usize,
    /// True label, echoed back.
    pub label: usize,
    /// The paper's evasion criterion: engine wrong, original right.
    pub evaded: bool,
    /// Per-image dims of `adv`.
    pub dims: Vec<usize>,
    /// Adversarial image data.
    pub adv: Vec<f32>,
}

/// Encodes an [`AttackJob`] into a `DAJ1` payload.
pub fn encode_job(job: &AttackJob) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 4 * job.dims.len() + 4 * job.image.len());
    out.extend_from_slice(JOB_MAGIC);
    out.push(job.kind);
    for f in [job.c, job.cfg.eps, job.cfg.alpha, job.cfg.momentum] {
        out.extend_from_slice(&f.to_le_bytes());
    }
    out.extend_from_slice(&(job.cfg.steps as u32).to_le_bytes());
    out.extend_from_slice(&(job.label as u32).to_le_bytes());
    out.push(job.dims.len() as u8);
    for &d in &job.dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in &job.image {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Bounds-checked little-endian reader over a job/result payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, String> {
        let raw = self.take(4 * n)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn dims_and_data(cur: &mut Cursor) -> Result<(Vec<usize>, Vec<f32>), String> {
    let ndims = cur.u8()? as usize;
    if ndims == 0 || ndims > 8 {
        return Err(format!("unreasonable rank {ndims}"));
    }
    let mut dims = Vec::with_capacity(ndims);
    let mut product: usize = 1;
    for _ in 0..ndims {
        let d = cur.u32()? as usize;
        product = product
            .checked_mul(d)
            .filter(|&p| p <= 1 << 24)
            .ok_or_else(|| "image volume overflows the 16M-element cap".to_string())?;
        dims.push(d);
    }
    let data = cur.f32s(product)?;
    Ok((dims, data))
}

/// Decodes a `DAJ1` payload.
///
/// # Errors
///
/// Returns a description of the first structural problem (bad magic,
/// truncation, unreasonable dims, trailing bytes).
pub fn decode_job(payload: &[u8]) -> Result<AttackJob, String> {
    let mut cur = Cursor {
        buf: payload,
        pos: 0,
    };
    if cur.take(4)? != JOB_MAGIC {
        return Err("bad job magic (want DAJ1)".into());
    }
    let kind = cur.u8()?;
    if kind > 5 {
        return Err(format!("unknown attack kind {kind}"));
    }
    let c = cur.f32()?;
    let eps = cur.f32()?;
    let alpha = cur.f32()?;
    let momentum = cur.f32()?;
    let steps = cur.u32()? as usize;
    if steps == 0 || steps > 10_000 {
        return Err(format!("unreasonable step count {steps}"));
    }
    let label = cur.u32()? as usize;
    let (dims, image) = dims_and_data(&mut cur)?;
    cur.finish()?;
    Ok(AttackJob {
        kind,
        c,
        cfg: AttackCfg {
            eps,
            alpha,
            steps,
            momentum,
            random_start: false,
        },
        label,
        dims,
        image,
    })
}

fn encode_result(res: &AttackResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + 4 * res.adv.len());
    out.extend_from_slice(RESULT_MAGIC);
    let flip: i64 = res.first_flip.map_or(-1, |s| s as i64);
    out.extend_from_slice(&flip.to_le_bytes());
    out.extend_from_slice(&(res.original_pred as u32).to_le_bytes());
    out.extend_from_slice(&(res.engine_pred as u32).to_le_bytes());
    out.extend_from_slice(&(res.label as u32).to_le_bytes());
    out.push(res.evaded as u8);
    out.push(res.dims.len() as u8);
    for &d in &res.dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in &res.adv {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a `DAR1` payload (the client half of [`encode_result`]).
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn decode_result(payload: &[u8]) -> Result<AttackResult, String> {
    let mut cur = Cursor {
        buf: payload,
        pos: 0,
    };
    if cur.take(4)? != RESULT_MAGIC {
        return Err("bad result magic (want DAR1)".into());
    }
    let flip = cur.i64()?;
    let original_pred = cur.u32()? as usize;
    let engine_pred = cur.u32()? as usize;
    let label = cur.u32()? as usize;
    let evaded = cur.u8()? != 0;
    let (dims, adv) = dims_and_data(&mut cur)?;
    cur.finish()?;
    Ok(AttackResult {
        first_flip: if flip < 0 { None } else { Some(flip as usize) },
        original_pred,
        engine_pred,
        label,
        evaded,
        dims,
        adv,
    })
}

/// The [`JobExecutor`] serving attack jobs against one prepared victim.
///
/// Jobs fail (→ retry → quarantine) rather than panic on malformed input,
/// and the fingerprint ties the journal to the exact `(arch, scale,
/// surrogates?)` the models were prepared from, so stale journals from a
/// differently-configured server replay nothing.
pub struct AttackService {
    victim: VictimModels,
    surrogates: Option<Surrogates>,
    input_dims: Vec<usize>,
    fingerprint: u64,
}

impl AttackService {
    /// Wraps prepared models for serving.
    pub fn new(
        victim: VictimModels,
        surrogates: Option<Surrogates>,
        scale: &ExperimentScale,
    ) -> AttackService {
        let input_dims = victim.val_pool.images.dims()[1..].to_vec();
        let fingerprint = diva_fault::fnv1a64(
            format!(
                "serve|{:?}|{:?}|surrogates={}",
                victim.arch,
                scale,
                surrogates.is_some()
            )
            .as_bytes(),
        );
        AttackService {
            victim,
            surrogates,
            input_dims,
            fingerprint,
        }
    }

    fn attack(&self, job: &AttackJob) -> Result<AttackResult, String> {
        let mut batch_dims = vec![1];
        batch_dims.extend_from_slice(&job.dims);
        let xi = Tensor::from_vec(job.image.clone(), &batch_dims);
        let labels = [job.label];
        let victim = &self.victim;
        let mut tracker = FirstFlipTracker::new(&victim.engine, &xi);
        let hook = |info: &diva_core::attack::StepInfo| tracker.observe(&victim.engine, info);
        let cfg = &job.cfg;
        let surrogate = |kind: &str| {
            self.surrogates
                .as_ref()
                .ok_or_else(|| format!("{kind} needs a server started with --surrogates"))
        };
        let adv = match job.kind {
            0 => pgd_attack_traced(&victim.qat, &xi, &labels, cfg, hook),
            1 => momentum_pgd_attack_traced(&victim.qat, &xi, &labels, cfg, hook),
            2 => cw_attack_traced(&victim.qat, &xi, &labels, cfg, hook),
            3 => diva_attack_traced(
                &victim.original,
                &victim.qat,
                &xi,
                &labels,
                job.c,
                cfg,
                hook,
            ),
            4 => {
                let s = surrogate("DIVA semi-blackbox")?;
                diva_attack_traced(
                    &s.semi.surrogate_original,
                    &s.semi.recovered_adapted,
                    &xi,
                    &labels,
                    job.c,
                    cfg,
                    hook,
                )
            }
            5 => {
                let s = surrogate("DIVA blackbox")?;
                diva_attack_traced(
                    &s.black.surrogate_original,
                    &s.black.surrogate_adapted,
                    &xi,
                    &labels,
                    job.c,
                    cfg,
                    hook,
                )
            }
            other => return Err(format!("unknown attack kind {other}")),
        };
        let original_pred = victim.original.predict(&adv)[0];
        let engine_pred = victim.engine.predict(&adv)[0];
        Ok(AttackResult {
            first_flip: tracker.first_flips()[0],
            original_pred,
            engine_pred,
            label: job.label,
            evaded: engine_pred != job.label && original_pred == job.label,
            dims: job.dims.clone(),
            adv: adv.data().to_vec(),
        })
    }
}

impl JobExecutor for AttackService {
    fn execute(&self, _job: u64, payload: &[u8]) -> Result<Vec<u8>, String> {
        let job = decode_job(payload)?;
        if job.dims != self.input_dims {
            return Err(format!(
                "image dims {:?} do not match the served models' input {:?}",
                job.dims, self.input_dims
            ));
        }
        if job.label >= self.victim.val_pool.num_classes {
            return Err(format!(
                "label {} out of range for {} classes",
                job.label, self.victim.val_pool.num_classes
            ));
        }
        self.attack(&job).map(|res| encode_result(&res))
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

fn parse_arch(name: &str) -> Result<Architecture, String> {
    match name.to_ascii_lowercase().as_str() {
        "resnet" => Ok(Architecture::ResNet),
        "mobilenet" => Ok(Architecture::MobileNet),
        "densenet" => Ok(Architecture::DenseNet),
        other => Err(format!(
            "unknown architecture {other} (want resnet|mobilenet|densenet)"
        )),
    }
}

fn parse_kind(name: &str) -> Result<u8, String> {
    match name.to_ascii_lowercase().as_str() {
        "pgd" => Ok(0),
        "mpgd" | "momentum" => Ok(1),
        "cw" => Ok(2),
        "diva" | "whitebox" => Ok(3),
        "semi" => Ok(4),
        "black" | "blackbox" => Ok(5),
        other => Err(format!(
            "unknown attack kind {other} (want pgd|mpgd|cw|diva|semi|black)"
        )),
    }
}

/// Minimal flag cursor shared by the two subcommands.
struct Flags {
    args: Vec<String>,
    pos: usize,
}

impl Flags {
    fn next(&mut self) -> Option<String> {
        let a = self.args.get(self.pos).cloned();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }

    fn value(&mut self, flag: &str) -> Result<String, String> {
        self.next().ok_or_else(|| format!("{flag} needs a value"))
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        self.value(flag)?
            .parse()
            .map_err(|_| format!("{flag}: unparseable value"))
    }
}

fn serve_usage() -> &'static str {
    "usage: repro serve [chaos] [flags]\n\
     \n\
     server flags:\n\
       --arch NAME        resnet (default) | mobilenet | densenet\n\
       --quick            smoke-test scale (matches `repro ... --quick`)\n\
       --surrogates       also prepare the semi/blackbox surrogate bundles\n\
       --addr HOST:PORT   listen address (default 127.0.0.1:4171)\n\
       --journal DIR      write-ahead job journal (default repro_out/serve-journal)\n\
       --no-journal       disable the journal (no crash replay)\n\
       --queue N          admission queue capacity (default 64)\n\
       --batch N          dispatcher batch size (default 8)\n\
       --deadline-ms N    per-job deadline (default: DIVA_DEADLINE_MS)\n\
       --retries N        attempts per job (default: DIVA_RETRY)\n\
     \n\
     chaos flags (repro serve chaos):\n\
       --seed N           campaign seed (default 0xD1BA5EED)\n\
       --dir PATH         artifact directory (default target/serve-chaos)\n\
       --jobs a,b,...     worker counts to cross-check (default 1,4)\n\
     \n\
     The server runs until a client sends Shutdown\n\
     (`repro attack --remote ADDR --shutdown`)."
}

/// `repro serve` — prepare models once, then serve attack jobs until a
/// remote shutdown. `repro serve chaos` runs the seeded fault-injection
/// campaign against an in-process server instead.
pub fn run_serve(args: &[String]) -> i32 {
    match run_serve_inner(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("repro serve: {e}");
            eprintln!("{}", serve_usage());
            2
        }
    }
}

fn run_serve_chaos(flags: &mut Flags) -> Result<i32, String> {
    let mut seed: u64 = 0xD1BA_5EED;
    let mut dir = PathBuf::from("target/serve-chaos");
    let mut jobs: Vec<usize> = vec![1, 4];
    while let Some(arg) = flags.next() {
        match arg.as_str() {
            "--seed" => seed = flags.parsed("--seed")?,
            "--dir" => dir = PathBuf::from(flags.value("--dir")?),
            "--jobs" => {
                jobs = flags
                    .value("--jobs")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| "--jobs: unparseable value"))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown chaos flag {other}")),
        }
    }
    match diva_serve::chaos::run_matrix(&dir, seed, &jobs) {
        Ok(reports) => {
            for (j, report) in &reports {
                let s = &report.stats_run;
                println!(
                    "serve-chaos jobs={j} submitted={} ok={} shed={} timed_out={} \
                     quarantined={} cancelled={} replies_failed={} replayed={} \
                     byte_identical={}",
                    s.submitted,
                    s.ok,
                    s.shed,
                    s.timed_out,
                    s.quarantined,
                    s.cancelled,
                    s.replies_failed,
                    report.stats_replay.replayed,
                    report.merge_byte_identical
                );
            }
            println!("serve-chaos PASS seed={seed} jobs={jobs:?}");
            Ok(0)
        }
        Err(e) => {
            eprintln!("serve-chaos FAIL: {e}");
            Ok(1)
        }
    }
}

fn run_serve_inner(args: &[String]) -> Result<i32, String> {
    let mut flags = Flags {
        args: args.to_vec(),
        pos: 0,
    };
    if args.first().map(String::as_str) == Some("chaos") {
        flags.pos = 1;
        return run_serve_chaos(&mut flags);
    }

    let mut arch = Architecture::ResNet;
    let mut quick = false;
    let mut with_surrogates = false;
    let mut addr = "127.0.0.1:4171".to_string();
    let mut journal: Option<PathBuf> = Some(PathBuf::from("repro_out/serve-journal"));
    let mut queue_capacity = 64usize;
    let mut batch_max = 8usize;
    let mut deadline_ms: Option<u64> = None;
    let mut retries: Option<u32> = None;
    while let Some(arg) = flags.next() {
        match arg.as_str() {
            "--arch" => arch = parse_arch(&flags.value("--arch")?)?,
            "--quick" => quick = true,
            "--surrogates" => with_surrogates = true,
            "--addr" => {
                addr = flags.value("--addr")?;
                addr.parse::<SocketAddr>()
                    .map_err(|_| "--addr: want HOST:PORT".to_string())?;
            }
            "--journal" => journal = Some(PathBuf::from(flags.value("--journal")?)),
            "--no-journal" => journal = None,
            "--queue" => queue_capacity = flags.parsed("--queue")?,
            "--batch" => batch_max = flags.parsed("--batch")?,
            "--deadline-ms" => deadline_ms = Some(flags.parsed("--deadline-ms")?),
            "--retries" => retries = Some(flags.parsed("--retries")?),
            "--help" | "-h" => {
                println!("{}", serve_usage());
                return Ok(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }

    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::standard()
    };
    let ckpt = resume_ckpt_dir();
    eprintln!(
        "diva-serve: preparing {} victim ({} scale{}) ...",
        arch.name(),
        if quick { "quick" } else { "standard" },
        if ckpt.is_some() {
            ", DIVA_RESUME on"
        } else {
            ""
        }
    );
    let (victim, resumed) = prepare_victim_resumable(arch, &scale, ckpt.as_deref());
    eprintln!(
        "diva-serve: victim ready (resumed={resumed}, original acc {:.3}, qat acc {:.3})",
        victim.original_acc, victim.qat_acc
    );
    let surrogates = if with_surrogates {
        let (s, resumed) = prepare_surrogates_resumable(&victim, &scale, ckpt.as_deref());
        eprintln!("diva-serve: surrogate bundles ready (resumed={resumed})");
        Some(s)
    } else {
        None
    };

    let mut policy = SupervisePolicy::from_env();
    if let Some(ms) = deadline_ms {
        policy.item_deadline = Some(Duration::from_millis(ms));
    }
    if let Some(n) = retries {
        policy.retry.max_attempts = n.max(1);
    }
    let exec = Arc::new(AttackService::new(victim, surrogates, &scale));
    let cfg = ServeConfig {
        addr,
        queue_capacity,
        batch_max,
        journal_dir: journal,
        policy,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, exec).map_err(|e| e.to_string())?;
    println!("diva-serve listening on {}", server.addr());
    println!(
        "stop with: repro attack --remote {} --shutdown",
        server.addr()
    );
    let report = server.join();
    println!(
        "diva-serve drained (clean={}): ok={} timed_out={} quarantined={} \
         cancelled={} shed={} replayed={}",
        report.clean,
        report.stats.ok,
        report.stats.timed_out,
        report.stats.quarantined,
        report.stats.cancelled,
        report.stats.shed,
        report.stats.replayed
    );
    Ok(if report.clean { 0 } else { 1 })
}

fn attack_usage() -> &'static str {
    "usage: repro attack --remote HOST:PORT [flags]\n\
     \n\
     flags:\n\
       --index N        validation-pool image to attack (default 0)\n\
       --kind NAME      pgd|mpgd|cw|diva|semi|black (default diva)\n\
       --c F            DIVA balance constant (default 1.0)\n\
       --eps F          L-inf bound (default 8/255)\n\
       --alpha F        step size (default 1/255)\n\
       --steps N        attack steps (default 20)\n\
       --quick          regenerate the quick-scale pool (must match the server)\n\
       --ping           health-check the server and exit\n\
       --metrics        print the server's metrics snapshot and exit\n\
       --shutdown       ask the server to drain and exit"
}

/// `repro attack --remote` — submit one attack job to a running
/// `repro serve` daemon and print the first-flip metrics.
pub fn run_attack(args: &[String]) -> i32 {
    match run_attack_inner(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("repro attack: {e}");
            eprintln!("{}", attack_usage());
            2
        }
    }
}

fn run_attack_inner(args: &[String]) -> Result<i32, String> {
    let mut flags = Flags {
        args: args.to_vec(),
        pos: 0,
    };
    let mut remote: Option<SocketAddr> = None;
    let mut index = 0usize;
    let mut kind = 3u8;
    let mut c = 1.0f32;
    let mut cfg = AttackCfg::paper_default();
    let mut quick = false;
    let mut ping = false;
    let mut metrics = false;
    let mut shutdown = false;
    while let Some(arg) = flags.next() {
        match arg.as_str() {
            "--remote" => {
                remote = Some(
                    flags
                        .value("--remote")?
                        .parse()
                        .map_err(|_| "--remote: want HOST:PORT".to_string())?,
                );
            }
            "--index" => index = flags.parsed("--index")?,
            "--kind" => kind = parse_kind(&flags.value("--kind")?)?,
            "--c" => c = flags.parsed("--c")?,
            "--eps" => cfg.eps = flags.parsed("--eps")?,
            "--alpha" => cfg.alpha = flags.parsed("--alpha")?,
            "--steps" => cfg.steps = flags.parsed("--steps")?,
            "--quick" => quick = true,
            "--ping" => ping = true,
            "--metrics" => metrics = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                println!("{}", attack_usage());
                return Ok(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let addr = remote.ok_or("--remote HOST:PORT is required")?;
    if kind == 1 && cfg.momentum == 0.0 {
        cfg.momentum = 0.5; // the paper's Momentum PGD coefficient
    }

    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    if ping {
        client.ping().map_err(|e| e.to_string())?;
        println!("diva-serve at {addr} is alive");
        return Ok(0);
    }
    if metrics {
        println!("{}", client.metrics().map_err(|e| e.to_string())?);
        return Ok(0);
    }
    if shutdown {
        match client.shutdown(60_000).map_err(|e| e.to_string())? {
            Reply::ShutdownStarted { pending } => {
                println!("diva-serve draining ({pending} jobs still queued)");
                Ok(0)
            }
            other => Err(format!("unexpected reply {other:?}")),
        }
    } else {
        // The pool is pure in the scale, so the client regenerates the
        // exact image the server's models were validated on.
        let scale = if quick {
            ExperimentScale::quick()
        } else {
            ExperimentScale::standard()
        };
        let (_, val_pool, _) = datasets(&scale);
        if index >= val_pool.len() {
            return Err(format!(
                "--index {index} out of range for a validation pool of {}",
                val_pool.len()
            ));
        }
        let image = val_pool.images.index_batch(index);
        let job = AttackJob {
            kind,
            c,
            cfg,
            label: val_pool.labels[index],
            dims: image.dims().to_vec(),
            image: image.data().to_vec(),
        };
        let payload = encode_job(&job);
        println!(
            "submitting {} job for image {index} (label {}) to {addr} ...",
            ["pgd", "mpgd", "cw", "diva", "semi", "black"][kind as usize],
            job.label
        );
        match client.submit(payload).map_err(|e| e.to_string())? {
            Reply::Done {
                job: id,
                status: WireStatus::Ok,
                payload,
            } => {
                let res = decode_result(&payload)?;
                let linf = res
                    .adv
                    .iter()
                    .zip(&job.image)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f32, f32::max);
                println!("job {id} done:");
                println!(
                    "  first flip   : {}",
                    res.first_flip
                        .map_or("never".to_string(), |s| format!("step {s}"))
                );
                println!(
                    "  original pred: {} (label {})",
                    res.original_pred, res.label
                );
                println!("  engine pred  : {}", res.engine_pred);
                println!("  evaded       : {}", res.evaded);
                println!("  L-inf        : {linf:.6} (eps {:.6})", job.cfg.eps);
                Ok(0)
            }
            Reply::Done {
                job: id, status, ..
            } => {
                eprintln!("job {id} finished without a result: {status:?}");
                Ok(1)
            }
            Reply::Overloaded { queued, capacity } => {
                eprintln!("server shed the job (queue {queued}/{capacity}); retry later");
                Ok(1)
            }
            Reply::Draining => {
                eprintln!("server is draining and refuses new jobs");
                Ok(1)
            }
            Reply::Rejected { message } => Err(format!("server rejected the job: {message}")),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> AttackJob {
        AttackJob {
            kind: 3,
            c: 1.5,
            cfg: AttackCfg {
                eps: 8.0 / 255.0,
                alpha: 1.0 / 255.0,
                steps: 20,
                momentum: 0.0,
                random_start: false,
            },
            label: 7,
            dims: vec![3, 8, 8],
            image: (0..192).map(|i| i as f32 / 192.0).collect(),
        }
    }

    #[test]
    fn job_roundtrips_through_the_wire_format() {
        let j = job();
        assert_eq!(decode_job(&encode_job(&j)).unwrap(), j);
    }

    #[test]
    fn result_roundtrips_through_the_wire_format() {
        let r = AttackResult {
            first_flip: Some(11),
            original_pred: 7,
            engine_pred: 2,
            label: 7,
            evaded: true,
            dims: vec![3, 8, 8],
            adv: (0..192).map(|i| (i as f32).sin()).collect(),
        };
        let back = decode_result(&encode_result(&r)).unwrap();
        assert_eq!(back, r);
        let never = AttackResult {
            first_flip: None,
            evaded: false,
            ..r
        };
        assert_eq!(decode_result(&encode_result(&never)).unwrap(), never);
    }

    #[test]
    fn malformed_jobs_are_rejected_with_reasons() {
        let good = encode_job(&job());
        assert!(decode_job(b"no").unwrap_err().contains("truncated"));
        assert!(decode_job(b"nope").unwrap_err().contains("magic"));
        assert!(decode_job(&good[1..]).unwrap_err().contains("magic"));
        let mut truncated = good.clone();
        truncated.truncate(good.len() - 3);
        assert!(decode_job(&truncated).unwrap_err().contains("truncated"));
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_job(&trailing).unwrap_err().contains("trailing"));
        let mut bad_kind = good.clone();
        bad_kind[4] = 99;
        assert!(decode_job(&bad_kind).unwrap_err().contains("kind"));
    }
}
