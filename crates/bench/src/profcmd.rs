//! The `repro profile` and `repro regress` analysis subcommands.
//!
//! Unlike the experiment subcommands these never train models: `profile`
//! post-processes the trace artifacts an instrumented run already wrote,
//! and `regress` re-measures the microbench catalog and compares it
//! against the committed `BENCH_<area>.json` baselines. Both are thin
//! argument-parsing shells over `diva_prof`.

use std::path::{Path, PathBuf};

use diva_prof::{Analysis, BenchSummary, RegressReport};

use crate::microbench::{self, MeasureCfg};

/// `repro profile [--trace-dir DIR] [--out DIR]`
///
/// Reads `metrics.json` + `trace.jsonl` from the trace directory
/// (`--trace-dir`, else `DIVA_TRACE_DIR`, else `repro_out`), prints the
/// per-op profile, and writes the report files (profile table, collapsed
/// stacks, convergence CSVs) under `--out` (default `repro_out/prof`).
/// Returns the process exit code.
pub fn run_profile(args: &[String]) -> i32 {
    let trace_dir = flag_value(args, "--trace-dir")
        .map(PathBuf::from)
        .or_else(|| std::env::var("DIVA_TRACE_DIR").ok().map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("repro_out"));
    let out_dir = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("repro_out/prof"));

    let analysis = match Analysis::load_dir(&trace_dir) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "profile: cannot read trace artifacts in `{}`: {e}",
                trace_dir.display()
            );
            eprintln!(
                "hint: run an instrumented experiment first, e.g. `DIVA_TRACE=2 repro smoke`"
            );
            return 1;
        }
    };

    print!("{}", analysis.profile.render());
    println!();
    if analysis.convergence.is_empty() {
        println!(
            "no attack telemetry in this trace (level {} artifact, {} events); \
             self time and convergence need DIVA_TRACE=2",
            analysis.summary.level, analysis.events
        );
    } else {
        print!("{}", analysis.convergence.render_summary());
    }

    match analysis.write_reports(&out_dir) {
        Ok(paths) => {
            println!(
                "wrote {} report file(s) under {}",
                paths.len(),
                out_dir.display()
            );
            0
        }
        Err(e) => {
            eprintln!(
                "profile: cannot write reports under `{}`: {e}",
                out_dir.display()
            );
            1
        }
    }
}

/// `repro regress [--area kernels|attacks] [--threshold PCT] [--iters N]
/// [--baseline-dir DIR] [--update] [--enforce]`
///
/// Re-measures the microbench catalog and compares medians against the
/// committed `BENCH_<area>.json` baselines. Informational by default: the
/// table always prints and the fresh measurements are archived under
/// `repro_out/prof/BENCH_<area>.fresh.json`, but the exit code only turns
/// non-zero with `--enforce`. `--update` rewrites the baselines in place
/// (run it on the reference machine when a deliberate perf change lands).
/// Returns the process exit code.
pub fn run_regress(args: &[String]) -> i32 {
    let threshold: f64 = match flag_value(args, "--threshold").map(str::parse) {
        None => 10.0,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("regress: --threshold wants a number (percent)");
            return 2;
        }
    };
    let iters: u32 = match flag_value(args, "--iters").map(str::parse) {
        None => MeasureCfg::default().iters,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("regress: --iters wants a positive integer");
            return 2;
        }
    };
    let area_filter = flag_value(args, "--area");
    if let Some(a) = area_filter {
        if !microbench::AREAS.contains(&a) {
            eprintln!(
                "regress: unknown area `{a}` (known: {})",
                microbench::AREAS.join(", ")
            );
            return 2;
        }
    }
    let baseline_dir = PathBuf::from(flag_value(args, "--baseline-dir").unwrap_or("."));
    let update = args.iter().any(|a| a == "--update");
    let enforce = args.iter().any(|a| a == "--enforce");
    let out_dir = Path::new("repro_out").join("prof");
    let cfg = MeasureCfg {
        iters,
        ..MeasureCfg::default()
    };

    let mut regressions = 0usize;
    let mut broken = 0usize;
    for area in microbench::AREAS {
        if area_filter.is_some_and(|f| f != *area) {
            continue;
        }
        let fresh = microbench::run_area(area, &cfg).expect("area comes from AREAS");
        if std::fs::create_dir_all(&out_dir).is_ok() {
            let archive = out_dir.join(format!("BENCH_{area}.fresh.json"));
            if let Err(e) = fresh.save(&archive) {
                eprintln!("regress: cannot archive {}: {e}", archive.display());
            }
        }
        let baseline_path = baseline_dir.join(microbench::baseline_file(area));
        if update {
            match fresh.save(&baseline_path) {
                Ok(()) => println!("updated {}", baseline_path.display()),
                Err(e) => {
                    eprintln!("regress: cannot update {}: {e}", baseline_path.display());
                    broken += 1;
                }
            }
            continue;
        }
        match BenchSummary::load(&baseline_path) {
            Ok(baseline) => {
                let report = RegressReport::compare(&baseline, &fresh, threshold);
                print!("{}", report.render());
                println!();
                regressions += report.regressions();
            }
            Err(e) => {
                eprintln!(
                    "regress: no usable baseline at {} ({e}); \
                     run `repro regress --update` to create one",
                    baseline_path.display()
                );
                broken += 1;
            }
        }
    }

    if regressions > 0 {
        println!("{regressions} bench(es) regressed beyond {threshold:.1}%");
    }
    if enforce && (regressions > 0 || broken > 0) {
        return 1;
    }
    if regressions > 0 || broken > 0 {
        println!("informational mode: exit 0 (pass --enforce to gate)");
    }
    0
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}
