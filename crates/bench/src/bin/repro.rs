//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p diva-bench --bin repro -- <experiment> [flags]
//!
//! experiments:
//!   table1      original vs quantized accuracy + instability (Table 1)
//!   fig1        PGD vs DIVA prediction quadrants on ResNet (Figure 1)
//!   fig2        decision-boundary raster + DIVA trajectory (Figure 2)
//!   fig3        qualitative single-image attack (Figure 3)
//!   fig4        PCA of MNIST representations pre/post attack (Figure 4)
//!   fig6        the main attack matrix incl. Table 2 (Figure 6a-c)
//!   fig6d       success vs attack steps (Figure 6d)
//!   fig7        the c-ablation (Figure 7)
//!   table2      evasion cost (printed as part of fig6; alias)
//!   baselines   CW and Momentum PGD (§5.4)
//!   robust      robust training defense (§5.5)
//!   fig8        pruning + pruning+quantization (Figure 8)
//!   fig10       face recognition case study incl. targeted attack (§6)
//!   transfer    extension: cross-architecture transfer of PGD vs DIVA
//!   bits        extension: divergence vs quantization bit width
//!   detect      extension: differential detection defense
//!   smoke       seconds-long pass through every instrumented layer
//!   all         everything above, reusing trained victims
//!
//! analysis subcommands (no training; see DESIGN.md §6):
//!   profile     per-op time profile + attack-convergence CSVs from the
//!               trace artifacts of a previous DIVA_TRACE=2 run
//!   regress     re-measure the microbench catalog and compare against the
//!               committed BENCH_<area>.json baselines
//!
//! service subcommands (see DESIGN.md §11):
//!   serve       attack-as-a-service daemon: prepare models once, serve
//!               attack jobs over TCP until a remote shutdown; `serve
//!               chaos` runs the seeded fault-injection campaign instead
//!   attack      remote client: `attack --remote HOST:PORT` submits one
//!               attack job to a running daemon (--ping / --metrics /
//!               --shutdown for service control)
//!
//! flags:
//!   --quick          small smoke-test scale
//!   --no-blackbox    skip surrogate settings in fig6
//!   --qat-epochs N   table1 ablation: QAT epoch count
//!   --bits N         table1 ablation: quantization bit width
//!   --per-tensor     table1 ablation: per-tensor weight quantization
//! ```
//!
//! Reports are printed and archived under `repro_out/`. With `DIVA_TRACE=1`
//! (or higher) the run additionally writes `trace.jsonl` and `metrics.json`
//! under `repro_out/` (or `DIVA_TRACE_DIR` when set) — see DESIGN.md's
//! "Observability" section. `DIVA_JOBS` controls the worker count of the
//! deterministic fan-out (see README "Parallelism").

use diva_bench::experiments::{
    self, archive, baselines, bits, detect, fig1, fig10, fig2, fig3, fig4, fig6, fig7, fig8,
    robust, smoke, table1, transfer, VictimCache,
};
use diva_bench::suite::ExperimentScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The analysis subcommands parse their own flags and never touch the
    // experiment machinery; dispatch them before the experiment parsing.
    match args.first().map(String::as_str) {
        Some("profile") => std::process::exit(diva_bench::profcmd::run_profile(&args[1..])),
        Some("regress") => std::process::exit(diva_bench::profcmd::run_regress(&args[1..])),
        Some("serve") => std::process::exit(diva_bench::servecmd::run_serve(&args[1..])),
        Some("attack") => std::process::exit(diva_bench::servecmd::run_attack(&args[1..])),
        _ => {}
    }
    // All leading non-flag arguments are experiment names; several can be
    // given at once to share trained victims (e.g. `repro fig1 fig3 bits`).
    let cmds: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // skip values belonging to value-flags
            let prev = args
                .iter()
                .position(|x| x == a)
                .and_then(|i| i.checked_sub(1))
                .map(|i| args[i].as_str());
            !matches!(prev, Some("--qat-epochs") | Some("--bits"))
        })
        .collect();
    let cmd = cmds.first().copied().unwrap_or("help");
    let quick = args.iter().any(|a| a == "--quick");
    let no_blackbox = args.iter().any(|a| a == "--no-blackbox");
    let per_tensor = args.iter().any(|a| a == "--per-tensor");
    let qat_epochs = flag_value(&args, "--qat-epochs").map(|v| v.parse().expect("--qat-epochs N"));
    let bits: u8 = flag_value(&args, "--bits")
        .map(|v| v.parse().expect("--bits N"))
        .unwrap_or(8);

    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::standard()
    };
    let mut cache = VictimCache::new();
    let started = std::time::Instant::now();

    let run_one = |cache: &mut VictimCache, cmd: &str| -> Option<String> {
        let _span = diva_trace::span(1, format!("experiment.{cmd}"));
        // Suite telemetry recorded inside (e.g. attack generation seconds)
        // additionally lands in per-experiment histograms for diva-prof.
        let _exp = diva_bench::suite::ExperimentScope::enter(cmd);
        let report = match cmd {
            "table1" => table1::run(
                cache,
                &scale,
                &table1::Table1Options {
                    bits,
                    per_tensor,
                    qat_epochs,
                },
            ),
            "fig1" => fig1::run(cache, &scale),
            "fig2" => fig2::run(if quick { 31 } else { 61 }),
            "fig3" => fig3::run(cache, &scale),
            "fig4" => fig4::run(if quick { 60 } else { 150 }).0,
            "fig6" | "table2" => fig6::run(cache, &scale, !no_blackbox),
            "fig6d" => fig6::success_vs_steps(cache, &scale, 20),
            "fig7" => fig7::run(cache, &scale),
            "baselines" => baselines::run(cache, &scale),
            "robust" => robust::run(cache, &scale),
            "fig8" => fig8::run(cache, &scale),
            "fig10" => fig10::run(&if quick {
                fig10::FaceScale::quick()
            } else {
                fig10::FaceScale::standard()
            }),
            "transfer" => transfer::run(cache, &scale),
            "bits" => bits::run(cache, &scale),
            "detect" => detect::run(cache, &scale),
            "smoke" => smoke::run(),
            _ => return None,
        };
        Some(archive(cmd, report))
    };

    match cmd {
        "all" => {
            for c in [
                "table1",
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig6",
                "fig6d",
                "fig7",
                "baselines",
                "robust",
                "fig8",
                "fig10",
                "transfer",
                "bits",
                "detect",
            ] {
                diva_trace::progress!("=== repro {c} ===");
                let report = run_one(&mut cache, c).expect("known experiment");
                println!("{report}\n{}\n", "=".repeat(78));
            }
        }
        "help" | "--help" | "-h" => {
            eprintln!("usage: repro <experiment> [--quick] [--no-blackbox] ...");
            eprintln!("experiments: table1 fig1 fig2 fig3 fig4 fig6 fig6d fig7 table2");
            eprintln!("             baselines robust fig8 fig10 transfer bits detect smoke all");
            eprintln!("analysis:    profile [--trace-dir DIR] [--out DIR]");
            eprintln!("             regress [--area A] [--threshold PCT] [--update] [--enforce]");
            std::process::exit(2);
        }
        _ => {
            for c in &cmds {
                match run_one(&mut cache, c) {
                    Some(report) => println!("{report}\n{}\n", "=".repeat(78)),
                    None => {
                        eprintln!("unknown experiment `{c}`; try `repro help`");
                        std::process::exit(2);
                    }
                }
            }
        }
    }
    let _ = experiments::archive_csv; // keep module reachable for docs
    let total = started.elapsed().as_secs_f64();
    diva_trace::record_secs(1, "repro.total_seconds", total);
    diva_trace::progress!("[done in {total:.1}s]");
    if diva_trace::enabled(1) {
        // DIVA_TRACE_DIR overrides the artifact directory so concurrent
        // invocations (e.g. parallel test binaries) don't race on
        // trace.jsonl/metrics.json.
        let trace_dir = std::env::var("DIVA_TRACE_DIR").unwrap_or_else(|_| "repro_out".to_string());
        match diva_trace::write_artifacts(&trace_dir) {
            Ok(path) => diva_trace::progress!("[trace] wrote {}", path.display()),
            Err(e) => eprintln!("[trace] failed to write artifacts: {e}"),
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}
