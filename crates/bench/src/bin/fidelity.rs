//! Development probe: quantify QAT-vs-engine divergence on a trained model,
//! node by node, to pin down where rounding drift enters.

use diva_data::imagenet::{synth_imagenet, ImagenetCfg};
use diva_models::{Architecture, ModelCfg};
use diva_nn::train::{evaluate, gather, train_classifier, TrainCfg};
use diva_nn::Infer;
use diva_quant::{Int8Engine, QatNetwork, QuantCfg, RequantMode};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|s| s.parse().unwrap())
        .collect();
    let (n, epochs) = (
        args.first().copied().unwrap_or(512),
        args.get(1).copied().unwrap_or(6),
    );
    let noise = args.get(2).copied().unwrap_or(10) as f32 / 100.0;
    let cj = args.get(3).copied().unwrap_or(22) as f32 / 100.0;
    let lr = args.get(4).copied().unwrap_or(20) as f32 / 1000.0;
    let seed = args.get(5).copied().unwrap_or(61) as u64;
    let arch = match args.get(6).copied().unwrap_or(0) {
        1 => Architecture::MobileNet,
        2 => Architecture::DenseNet,
        _ => Architecture::ResNet,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let data_cfg = ImagenetCfg {
        noise,
        color_jitter: cj,
        ..ImagenetCfg::default()
    };
    let train = synth_imagenet(n, &data_cfg, 61);
    let val = synth_imagenet(256, &data_cfg, 62);
    let mut net = arch.build(&ModelCfg::standard(16), &mut rng);
    let tcfg = TrainCfg {
        epochs,
        batch_size: 32,
        lr,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    train_classifier(&mut net, &train.images, &train.labels, &tcfg, &mut rng);
    println!("fp acc {:.3}", evaluate(&net, &val.images, &val.labels));
    let mut qat = QatNetwork::new(net, QuantCfg::default());
    qat.calibrate(&train.images);
    println!("qat acc {:.3}", evaluate(&qat, &val.images, &val.labels));
    // Per-node divergence: engine dequantized vs QAT activations.
    {
        let engine = Int8Engine::from_qat(&qat);
        let x = gather(&val.images, &(0..16).collect::<Vec<_>>());
        let exec = qat.forward(&x);
        let qts = engine.run(&x);
        let qps = qat.act_qparams();
        for (i, node) in qat.network().graph().nodes().iter().enumerate() {
            let qa = exec.activation(diva_nn::NodeId(i));
            let qe = qps[i].dequantize_tensor(&qts[i].data, &qts[i].dims);
            let diff = qa.sub(&qe).abs();
            println!(
                "node {i:2} {:10} scale {:.5} | mean diff {:.5} ({:.2} LSB) max {:.5} ({:.2} LSB)",
                node.op.name(),
                qps[i].scale,
                diff.mean(),
                diff.mean() / qps[i].scale,
                diff.max(),
                diff.max() / qps[i].scale,
            );
        }
    }
    for mode in [RequantMode::FixedPoint, RequantMode::Float] {
        let engine = Int8Engine::from_qat_with_mode(&qat, mode);
        println!(
            "engine[{mode:?}] acc {:.3}",
            evaluate(&engine, &val.images, &val.labels)
        );
        let x = gather(&val.images, &(0..64).collect::<Vec<_>>());
        let lq = qat.logits(&x);
        let le = engine.logits(&x);
        let diff = lq.sub(&le);
        let scale = engine.qparams().last().unwrap().scale;
        println!(
            "  logit diff mean {:.4} max {:.4} (out scale {:.4} => max {:.1} LSB)",
            diff.abs().mean(),
            diff.abs().max(),
            scale,
            diff.abs().max() / scale
        );
        let agree = qat
            .predict(&x)
            .iter()
            .zip(engine.predict(&x))
            .filter(|(a, b)| **a == *b)
            .count();
        println!("  prediction agreement {agree}/64");
    }
}
