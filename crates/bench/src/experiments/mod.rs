//! One module per paper table/figure. Every experiment returns a printable
//! report; the `repro` binary prints it and archives it under `repro_out/`.
//!
//! Victim preparation (train → QAT → engine) is the expensive part, so a
//! [`VictimCache`] shares prepared victims across the experiments of one
//! process (`repro all` reuses each architecture's victim everywhere).

pub mod baselines;
pub mod bits;
pub mod detect;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod robust;
pub mod smoke;
pub mod table1;
pub mod transfer;

use std::collections::HashMap;

use diva_models::Architecture;

use crate::suite::{prepare_surrogates, prepare_victim, ExperimentScale, Surrogates, VictimModels};

/// Caches prepared victims and surrogate bundles per architecture for one
/// process.
#[derive(Default)]
pub struct VictimCache {
    victims: HashMap<&'static str, VictimModels>,
    surrogates: HashMap<&'static str, Surrogates>,
}

impl VictimCache {
    /// An empty cache.
    pub fn new() -> Self {
        VictimCache::default()
    }

    /// Returns the prepared victim for `arch`, training it on first use.
    pub fn victim(&mut self, arch: Architecture, scale: &ExperimentScale) -> &VictimModels {
        self.victims.entry(arch.name()).or_insert_with(|| {
            diva_trace::progress!("[prepare] training + adapting {arch} ...");
            prepare_victim(arch, scale)
        })
    }

    /// Returns the surrogate bundle for `arch`, distilling it on first use.
    pub fn surrogates(&mut self, arch: Architecture, scale: &ExperimentScale) -> Surrogates {
        if !self.surrogates.contains_key(arch.name()) {
            let victim = self.victim(arch, scale).clone();
            diva_trace::progress!("[prepare] distilling surrogates for {arch} ...");
            let s = prepare_surrogates(&victim, scale);
            self.surrogates.insert(arch.name(), s);
        }
        self.surrogates[arch.name()].clone()
    }
}

/// Writes a report to `repro_out/<id>.txt` (best effort) and returns it.
pub fn archive(id: &str, report: String) -> String {
    let _ = std::fs::create_dir_all("repro_out");
    let _ = std::fs::write(format!("repro_out/{id}.txt"), &report);
    report
}

/// Writes raw series data to `repro_out/<id>.csv` (best effort).
pub fn archive_csv(id: &str, csv: &str) {
    let _ = std::fs::create_dir_all("repro_out");
    let _ = std::fs::write(format!("repro_out/{id}.csv"), csv);
}
