//! One module per paper table/figure. Every experiment returns a printable
//! report; the `repro` binary prints it and archives it under `repro_out/`.
//!
//! Victim preparation (train → QAT → engine) is the expensive part, so a
//! [`VictimCache`] shares prepared victims across the experiments of one
//! process (`repro all` reuses each architecture's victim everywhere).

pub mod baselines;
pub mod bits;
pub mod detect;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod robust;
pub mod smoke;
pub mod table1;
pub mod transfer;

use std::collections::HashMap;
use std::path::PathBuf;

use diva_models::Architecture;

use crate::suite::{
    prepare_surrogates_resumable, prepare_victim_resumable, ExperimentScale, Surrogates,
    VictimModels,
};

/// The checkpoint directory for phase-level resume, or `None` when resume
/// is off. Enabled by `DIVA_RESUME=1`; the directory defaults to
/// `repro_out/ckpt` and can be overridden with `DIVA_CKPT_DIR`. With
/// resume off nothing is read or written, so default runs stay
/// byte-identical.
pub fn resume_ckpt_dir() -> Option<PathBuf> {
    let on = std::env::var("DIVA_RESUME")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false);
    if !on {
        return None;
    }
    let dir = std::env::var("DIVA_CKPT_DIR")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| "repro_out/ckpt".to_string());
    Some(PathBuf::from(dir))
}

/// Caches prepared victims and surrogate bundles per architecture for one
/// process. With `DIVA_RESUME=1` the cache also checkpoints each prepared
/// phase to disk and reloads it (after validation) on the next run, so an
/// interrupted experiment skips retraining.
#[derive(Default)]
pub struct VictimCache {
    victims: HashMap<&'static str, VictimModels>,
    surrogates: HashMap<&'static str, Surrogates>,
}

impl VictimCache {
    /// An empty cache.
    pub fn new() -> Self {
        VictimCache::default()
    }

    /// Returns the prepared victim for `arch`, training it on first use
    /// (or resuming it from a checkpoint under `DIVA_RESUME=1`).
    pub fn victim(&mut self, arch: Architecture, scale: &ExperimentScale) -> &VictimModels {
        self.victims.entry(arch.name()).or_insert_with(|| {
            diva_trace::progress!("[prepare] training + adapting {arch} ...");
            let (victim, resumed) =
                prepare_victim_resumable(arch, scale, resume_ckpt_dir().as_deref());
            if resumed {
                diva_trace::progress!("[prepare] resumed {arch} victim from checkpoint");
            }
            victim
        })
    }

    /// Returns the surrogate bundle for `arch`, distilling it on first use
    /// (or resuming it from a checkpoint under `DIVA_RESUME=1`).
    pub fn surrogates(&mut self, arch: Architecture, scale: &ExperimentScale) -> Surrogates {
        if !self.surrogates.contains_key(arch.name()) {
            let victim = self.victim(arch, scale).clone();
            diva_trace::progress!("[prepare] distilling surrogates for {arch} ...");
            let (s, resumed) =
                prepare_surrogates_resumable(&victim, scale, resume_ckpt_dir().as_deref());
            if resumed {
                diva_trace::progress!("[prepare] resumed {arch} surrogates from checkpoint");
            }
            self.surrogates.insert(arch.name(), s);
        }
        self.surrogates[arch.name()].clone()
    }
}

/// Writes a report to `repro_out/<id>.txt` (best effort) and returns it.
pub fn archive(id: &str, report: String) -> String {
    let _ = std::fs::create_dir_all("repro_out");
    let _ = std::fs::write(format!("repro_out/{id}.txt"), &report);
    report
}

/// Writes raw series data to `repro_out/<id>.csv` (best effort).
pub fn archive_csv(id: &str, csv: &str) {
    let _ = std::fs::create_dir_all("repro_out");
    let _ = std::fs::write(format!("repro_out/{id}.csv"), csv);
}
