//! `smoke` — a seconds-long end-to-end pass through every instrumented
//! layer: fp32 forward/backward ops, attack steps, the deployed int8
//! engine, and the first-flip tracker. Its purpose is validating the
//! tracing pipeline (`DIVA_TRACE=1 repro smoke` populates every span
//! family), not reproducing a paper figure.

use diva_core::attack::{diva_attack_traced, pgd_attack_traced, AttackCfg};
use diva_core::parallel::par_attack_images;
use diva_core::pipeline::evaluate_outcomes_with_flips;
use diva_metrics::success::{AttackOutcome, JobStatus, SuccessCounts};
use diva_models::{Architecture, ModelCfg};
use diva_nn::Infer;
use diva_quant::{Int8Engine, QatNetwork, QuantCfg};
use diva_tensor::Tensor;

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Runs the smoke pass and returns a short report.
pub fn run() -> String {
    let mut rng = StdRng::seed_from_u64(7);
    let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);

    // 16 random 8x8 RGB images; labels are whatever the untrained net says,
    // so the attack starts from "correctly classified" points by definition.
    let per: usize = 3 * 8 * 8;
    let samples: Vec<Tensor> = (0..16)
        .map(|_| {
            Tensor::from_vec(
                (0..per).map(|_| rng.gen_range(0.0..1.0)).collect(),
                &[3, 8, 8],
            )
        })
        .collect();
    let images = Tensor::stack(&samples);
    let labels = net.predict(&images);

    diva_trace::progress!("[smoke] calibrating + deploying tiny ResNet ...");
    let mut qat = QatNetwork::new(net.clone(), QuantCfg::default());
    qat.calibrate(&images);
    let engine = Int8Engine::from_qat(&qat);

    // Short PGD then DIVA, generated per-image through the diva-par fan-out
    // (sized by DIVA_JOBS; results identical for every job count), both
    // watched by the first-flip tracker against the deployed engine
    // (exercises attack.step + quant.engine.run).
    let cfg = AttackCfg::with_steps(6);
    let gen_pgd = par_attack_images("PGD", &images, &labels, Some(&engine), |_, xi, yi, hook| {
        pgd_attack_traced(&qat, xi, yi, &cfg, hook)
    });
    let gen_diva = par_attack_images(
        "DIVA (whitebox)",
        &images,
        &labels,
        Some(&engine),
        |_, xi, yi, hook| diva_attack_traced(&net, &qat, xi, yi, 1.0, &cfg, hook),
    );
    let (adv_pgd, adv_diva) = (gen_pgd.adv, gen_diva.adv);

    // Images whose generation did not complete (guard budget exhausted,
    // worker panic, deadline, cancellation) carry the natural sample; mark
    // them with their terminal status so the counts bucket them instead of
    // scoring the unperturbed image.
    let mark = |outcomes: Vec<AttackOutcome>, statuses: &[JobStatus]| -> SuccessCounts {
        outcomes
            .into_iter()
            .zip(statuses)
            .map(|(o, &s)| o.with_status(s))
            .collect()
    };
    let pgd = mark(
        evaluate_outcomes_with_flips(&net, &qat, &adv_pgd, &labels, &gen_pgd.first_flips),
        &gen_pgd.statuses,
    );
    let diva = mark(
        evaluate_outcomes_with_flips(&net, &qat, &adv_diva, &labels, &gen_diva.first_flips),
        &gen_diva.statuses,
    );
    // One final engine pass on the adversarial batch for good measure.
    let engine_preds = engine.predict(&adv_diva);
    let engine_flips = engine_preds
        .iter()
        .zip(engine.predict(&images))
        .filter(|(a, c)| **a != *c)
        .count();

    let mut out = String::from("smoke: tracing end-to-end pass (not a paper figure)\n");
    out.push_str(&format!(
        "  PGD : adapted fooled {}/{}, mean first-flip step {}\n",
        pgd.attack_only,
        pgd.total,
        fmt_step(pgd.mean_first_flip_step()),
    ));
    out.push_str(&format!(
        "  DIVA: adapted fooled {}/{}, mean first-flip step {}\n",
        diva.attack_only,
        diva.total,
        fmt_step(diva.mean_first_flip_step()),
    ));
    out.push_str(&format!(
        "  int8 engine flipped {engine_flips}/{} predictions on the DIVA batch\n",
        labels.len()
    ));
    out.push_str(&format!(
        "  trace: level {} with {} buffered events\n",
        diva_trace::level(),
        diva_trace::events_buffered()
    ));

    // Fault evidence, printed only when a fault plan is armed so the
    // default run stays byte-identical. Three degradation surfaces:
    // per-image generation failures (guard budget / worker panics), the
    // deployed engine's weight checksum (bit flips land here), and a
    // checkpoint round-trip (file faults land here).
    // Supervision evidence, printed only when the env armed a deadline or
    // any item actually hit a supervision bucket, so unsupervised runs stay
    // byte-identical. CI's deadline-enforcement smoke greps this line.
    let (t, c, q) = (
        pgd.timed_out + diva.timed_out,
        pgd.cancelled + diva.cancelled,
        pgd.quarantined + diva.quarantined,
    );
    if std::env::var("DIVA_DEADLINE_MS").is_ok() || t + c + q > 0 {
        out.push_str(&format!(
            "  supervision: timed_out={t} cancelled={c} quarantined={q}\n"
        ));
    }

    if diva_fault::armed() {
        let image_failures = pgd.unscored() + diva.unscored();
        let integrity_failures = usize::from(!engine.integrity_ok());
        if integrity_failures > 0 {
            diva_trace::event!(1, "smoke.integrity_failed", surface = "engine");
        }
        let ckpt_path =
            std::env::temp_dir().join(format!("diva-smoke-ckpt-{}.bin", std::process::id()));
        let ckpt_failures = match diva_fault::ckpt::write_atomic(&ckpt_path, out.as_bytes())
            .and_then(|()| diva_fault::ckpt::read_verified(&ckpt_path))
        {
            Ok(_) => 0usize,
            Err(e) => {
                diva_trace::event!(1, "smoke.ckpt_rejected", reason = format!("{e}"));
                1
            }
        };
        let _ = std::fs::remove_file(&ckpt_path);
        let total = image_failures + integrity_failures + ckpt_failures;
        out.push_str(&format!(
            "  fault: plan '{}' armed\n",
            diva_fault::armed_spec().unwrap_or_default()
        ));
        out.push_str(&format!(
            "  fault: failed={total} (images {image_failures}, integrity {integrity_failures}, checkpoint {ckpt_failures})\n"
        ));
    }
    out
}

fn fmt_step(step: Option<f32>) -> String {
    match step {
        Some(s) => format!("{s:.1}"),
        None => "-".into(),
    }
}
