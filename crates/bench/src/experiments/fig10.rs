//! §6 / Figures 9–10: the face-recognition case study — untargeted PGD vs
//! DIVA on a face model whose int8 engine plays the "edge device", plus the
//! targeted attack.

use diva_core::attack::{diva_attack, diva_targeted_attack, pgd_attack, AttackCfg};
use diva_core::pipeline::evaluate_attack;
use diva_data::faces::{synth_faces, FacesCfg};
use diva_data::select_validation;
use diva_metrics::dssim;
use diva_models::face_net;
use diva_nn::train::{evaluate, gather, train_classifier, TrainCfg};
use diva_nn::Infer;
use diva_quant::{Int8Engine, QatNetwork, QuantCfg};
use diva_tensor::ops::softmax_rows;
use rand::{rngs::StdRng, SeedableRng};

use crate::experiments::archive_csv;
use crate::suite::pct;

/// Scale of the face study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceScale {
    /// Number of identities (the paper uses 150).
    pub identities: usize,
    /// Photos per identity in the training set.
    pub photos_per_id: usize,
    /// Validation photos per identity (the paper selects 3 per person).
    pub val_per_id: usize,
    /// Targeted-attack sources to test (the paper evaluates 10 people).
    pub targeted_sources: usize,
}

impl FaceScale {
    /// Default scale for EXPERIMENTS.md.
    pub fn standard() -> Self {
        FaceScale {
            identities: 25,
            photos_per_id: 60,
            val_per_id: 3,
            targeted_sources: 10,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        FaceScale {
            identities: 8,
            photos_per_id: 24,
            val_per_id: 2,
            targeted_sources: 3,
        }
    }
}

/// Runs the face-recognition case study.
pub fn run(scale: &FaceScale) -> String {
    let mut rng = StdRng::seed_from_u64(6);
    let faces_cfg = FacesCfg {
        identities: scale.identities,
        noise: 0.06,
    };
    let train = synth_faces(scale.identities * scale.photos_per_id, &faces_cfg, 300);
    let val_pool = synth_faces(scale.identities * 12, &faces_cfg, 300); // same ids, later photos
                                                                        // NOTE: photos differ because the photo-rng continues; identities are
                                                                        // seed-determined, so train and val share people, like PubFig splits.

    diva_trace::progress!("[faces] training VGGFace stand-in ...");
    let mut original = face_net(scale.identities, &mut rng);
    let tcfg = TrainCfg {
        epochs: 12,
        batch_size: 32,
        lr: 0.02,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    let t2 = TrainCfg {
        epochs: 4,
        lr: 0.005,
        ..tcfg.clone()
    };
    train_classifier(&mut original, &train.images, &train.labels, &tcfg, &mut rng);
    train_classifier(&mut original, &train.images, &train.labels, &t2, &mut rng);

    let mut qat = QatNetwork::new(original.clone(), QuantCfg::default());
    qat.calibrate(&train.images);
    qat.train_qat(
        &train.images,
        &train.labels,
        &TrainCfg {
            epochs: 2,
            lr: 0.004,
            ..tcfg.clone()
        },
        &mut rng,
    );
    // The deployed edge model: the real int8 engine (the paper's TFLite on
    // AArch64 step). Gradients come from the QAT model, success is judged on
    // the engine.
    let engine = Int8Engine::from_qat(&qat);

    let orig_acc = evaluate(&original, &val_pool.images, &val_pool.labels);
    let engine_acc = evaluate(&engine, &val_pool.images, &val_pool.labels);
    let attack_set = select_validation(&val_pool, &[&original, &qat, &engine], scale.val_per_id);

    let cfg = AttackCfg::paper_default();
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 10 / §6 — face recognition case study\n\
         {} identities; original acc {}, deployed int8 engine acc {}\n\
         attack set: {} photos correct on all of (original, QAT, engine)\n\n",
        scale.identities,
        pct(orig_acc),
        pct(engine_acc),
        attack_set.len()
    ));

    out.push_str("Attack | Top-1 joint | Top-5 joint | Attack-only | Orig-fooled | max DSSIM\n");
    out.push_str("-------|-------------|-------------|-------------|-------------|----------\n");
    let mut csv = String::from("attack,top1,top5,attack_only,orig_fooled\n");
    for attack in ["PGD", "DIVA"] {
        let adv = match attack {
            "PGD" => pgd_attack(&qat, &attack_set.images, &attack_set.labels, &cfg),
            _ => diva_attack(
                &original,
                &qat,
                &attack_set.images,
                &attack_set.labels,
                1.0,
                &cfg,
            ),
        };
        // Judge against the deployed engine, validating against the original.
        let counts = evaluate_attack(&original, &engine, &adv, &attack_set.labels);
        let max_d = (0..attack_set.len())
            .map(|i| dssim(&attack_set.images.index_batch(i), &adv.index_batch(i)))
            .fold(0.0f32, f32::max);
        out.push_str(&format!(
            "{:6} | {}      | {}      | {}      | {}      | {:.5}\n",
            attack,
            pct(counts.top1_rate()),
            pct(counts.top5_rate()),
            pct(counts.attack_only_rate()),
            pct(counts.original_fooled_rate()),
            max_d,
        ));
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            attack,
            counts.top1_rate(),
            counts.top5_rate(),
            counts.attack_only_rate(),
            counts.original_fooled_rate()
        ));
    }
    archive_csv("fig10_faces", &csv);

    // Qualitative example (the Nicolas Cage -> Jerry Seinfeld figure).
    if !attack_set.is_empty() {
        let x = gather(&attack_set.images, &[0]);
        let y = attack_set.labels[0];
        let adv = diva_attack(&original, &qat, &x, &[y], 1.0, &cfg);
        let e_pred = engine.predict(&adv)[0];
        let o_pred = original.predict(&adv)[0];
        if e_pred != y && o_pred == y {
            let e_conf = softmax_rows(&engine.logits(&adv)).data()[e_pred];
            let o_conf = softmax_rows(&original.logits(&adv)).data()[o_pred];
            out.push_str(&format!(
                "\nqualitative example (cf. Fig. 9): edge engine identifies person {y}\n\
                 as person {e_pred} ({}), while the original model still says person\n\
                 {o_pred} ({}).\n",
                pct(e_conf),
                pct(o_conf)
            ));
        }
    }

    // Targeted attack (§6 "Targeted attack").
    diva_trace::progress!("[faces] targeted attack sweep ...");
    let sources = scale.targeted_sources.min(attack_set.len());
    let mut reachable = Vec::with_capacity(sources);
    for i in 0..sources {
        let x = gather(&attack_set.images, &[i]);
        let y = attack_set.labels[i];
        let mut hits = 0usize;
        for target in 0..scale.identities {
            if target == y {
                continue;
            }
            let adv = diva_targeted_attack(
                &original,
                &qat,
                &x,
                &[y],
                target,
                1.0,
                4.0,
                &AttackCfg::with_steps(30),
            );
            if engine.predict(&adv)[0] == target && original.predict(&adv)[0] == y {
                hits += 1;
            }
        }
        reachable.push(hits);
    }
    let avg: f32 = reachable.iter().sum::<usize>() as f32 / reachable.len().max(1) as f32;
    out.push_str(&format!(
        "\ntargeted attack: over {} source photos, the evasive attack can steer\n\
         the edge model to an average of {:.1} of the {} other identities\n\
         (per-source counts: {:?}).\n",
        sources,
        avg,
        scale.identities - 1,
        reachable
    ));
    out.push_str(
        "\nPaper shape: DIVA ≫ PGD on the face model; top-5 margins narrower than\n\
         ImageNet's because the label space is small; the targeted variant can\n\
         reach a sizable set of chosen identities (8.3/150 in the paper).\n",
    );
    out
}
