//! Figure 8: DIVA against the pruning adaptation (§5.6) — attacks on pruned
//! models (a, b) and on pruned-then-quantized models (c, d).

use diva_core::attack::{diva_attack, pgd_attack, AttackCfg};
use diva_core::pipeline::evaluate_attack;
use diva_core::DiffModel;
use diva_data::select_validation;
use diva_metrics::{confidence_delta, instability};
use diva_models::Architecture;
use diva_nn::train::TrainCfg;
use diva_nn::Infer;
use diva_prune::{prune_with_finetune, sparse_size_ratio, PruneCfg};
use diva_quant::{QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

use crate::experiments::{archive_csv, VictimCache};
use crate::suite::{pct, ExperimentScale};

/// Runs the pruning experiments across architectures.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale) -> String {
    let cfg = AttackCfg::paper_default();
    let prune_cfg = PruneCfg::default();
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 8 — attacks on pruned (a,b) and pruned+quantized (c,d) models\n\
         (target sparsity {:.0}%, polynomial schedule with fine-tuning)\n\n",
        100.0 * prune_cfg.sparsity
    ));
    out.push_str(
        "Arch      | Adaptation        | Instab. | SizeRatio | Attack | Top-1  | Top-5  | ConfΔ\n",
    );
    out.push_str(
        "----------|-------------------|---------|-----------|--------|--------|--------|-------\n",
    );
    let mut csv = String::from("arch,adaptation,attack,top1,top5,conf_delta\n");
    for arch in Architecture::ALL {
        let victim = cache.victim(arch, scale).clone();
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x88);

        // (a, b): pruned model.
        let mut pruned = victim.original.clone();
        let finetune = TrainCfg {
            epochs: 6,
            lr: scale.train_cfg.lr / 4.0,
            ..scale.train_cfg.clone()
        };
        diva_trace::progress!("[fig8] pruning + fine-tuning {arch} ...");
        prune_with_finetune(
            &mut pruned,
            &victim.train.images,
            &victim.train.labels,
            &prune_cfg,
            &finetune,
            &mut rng,
        );
        let size_ratio = sparse_size_ratio(&pruned);

        // (c, d): pruned + quantized (masks survive into QAT and the engine).
        let mut pq = QatNetwork::new(pruned.clone(), QuantCfg::default());
        pq.calibrate(&victim.train.images);
        pq.train_qat(
            &victim.train.images,
            &victim.train.labels,
            &scale.qat_cfg,
            &mut rng,
        );

        for (label, adapted) in [
            ("pruned", &pruned as &dyn DiffModel),
            ("pruned+quantized", &pq as &dyn DiffModel),
        ] {
            let attack_set = select_validation(
                &victim.val_pool,
                &[&victim.original, adapted_as_infer(adapted)],
                scale.per_class_val,
            );
            if attack_set.is_empty() {
                out.push_str(&format!(
                    "{:9} | {:17} | (no mutually-correct samples)\n",
                    arch.name(),
                    label
                ));
                continue;
            }
            let (_, _, inst) = instability(
                &victim.original,
                adapted_as_infer(adapted),
                &victim.val_pool.images,
                &victim.val_pool.labels,
            );
            for attack in ["PGD", "DIVA"] {
                let adv = match attack {
                    "PGD" => pgd_attack(adapted, &attack_set.images, &attack_set.labels, &cfg),
                    _ => diva_attack(
                        &victim.original,
                        adapted,
                        &attack_set.images,
                        &attack_set.labels,
                        1.0,
                        &cfg,
                    ),
                };
                let counts = evaluate_attack(
                    &victim.original,
                    adapted_as_infer(adapted),
                    &adv,
                    &attack_set.labels,
                );
                let cd = confidence_delta(
                    &victim.original,
                    adapted_as_infer(adapted),
                    &adv,
                    &attack_set.labels,
                );
                out.push_str(&format!(
                    "{:9} | {:17} | {}  | {:9.2} | {:6} | {} | {} | {}\n",
                    arch.name(),
                    label,
                    pct(inst),
                    size_ratio,
                    attack,
                    pct(counts.top1_rate()),
                    pct(counts.top5_rate()),
                    pct(cd),
                ));
                csv.push_str(&format!(
                    "{},{},{},{},{},{}\n",
                    arch.name(),
                    label,
                    attack,
                    counts.top1_rate(),
                    counts.top5_rate(),
                    cd
                ));
            }
        }
    }
    archive_csv("fig8_pruning", &csv);
    out.push_str(
        "\nPaper shape: pruning diverges from the original far more than\n\
         quantization (instability 17.1–33.5%), so PGD's top-1 is already close\n\
         to DIVA's; DIVA still wins on top-5 and pushes the confidence delta\n\
         8.3–16% further; model size compresses to roughly one third.\n",
    );
    out
}

/// Upcast helper: every `DiffModel` is an `Infer`.
fn adapted_as_infer(m: &dyn DiffModel) -> &dyn Infer {
    m
}
