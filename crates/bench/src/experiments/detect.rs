//! Extension experiment: a *differential* detection defense.
//!
//! The paper's conclusion invites "a new line of research on attacks and
//! defenses that target the variations in models deployed in production".
//! This experiment evaluates the most natural such defense: instead of
//! validating suspicious inputs on the original model alone (which DIVA
//! evades by construction), the operator validates them on the original
//! model **plus an independently re-adapted model** (same weights, different
//! calibration slice / QAT seed) and flags inputs on which the ensemble
//! *disagrees*.
//!
//! Intuition: DIVA pushed the input into the divergence set of pair A
//! (original, deployed). A second adaptation B has a *different* divergence
//! set, so an input that splits A is likely to split (original, B) too —
//! detectable — while natural inputs rarely split either.

use diva_core::attack::{diva_attack, pgd_attack, AttackCfg};
use diva_models::Architecture;
use diva_nn::Infer;
use diva_quant::{QatNetwork, QuantCfg};
use diva_tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

use crate::experiments::{archive_csv, VictimCache};
use crate::suite::{pct, ExperimentScale};

/// Detection = disagreement between the original model and the detector
/// model on an input.
fn detection_rate<D: Infer>(original: &dyn Infer, detector: &D, x: &Tensor) -> f32 {
    let n = x.dims()[0];
    if n == 0 {
        return 0.0;
    }
    let a = original.predict(x);
    let b = detector.predict(x);
    a.iter().zip(&b).filter(|(p, q)| **p != **q).count() as f32 / n as f32
}

/// Runs the detection study on the ResNet victim.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale) -> String {
    let victim = cache.victim(Architecture::ResNet, scale).clone();
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xDE7EC7);
    // Re-adapt the same original: calibrate on a different slice of the
    // training data and run QAT with a different shuffling seed.
    let half = victim.train.len() / 2;
    let calib_b: Vec<usize> = (half..victim.train.len()).collect();
    let calib_images = diva_nn::train::gather(&victim.train.images, &calib_b);
    let mut detector = QatNetwork::new(victim.original.clone(), QuantCfg::default());
    detector.calibrate(&calib_images);
    detector.train_qat(
        &victim.train.images,
        &victim.train.labels,
        &scale.qat_cfg,
        &mut rng,
    );

    let attack_set = victim.attack_set(scale.per_class_val);
    let cfg = AttackCfg::paper_default();
    let pgd = pgd_attack(&victim.qat, &attack_set.images, &attack_set.labels, &cfg);
    let diva = diva_attack(
        &victim.original,
        &victim.qat,
        &attack_set.images,
        &attack_set.labels,
        1.0,
        &cfg,
    );

    // False-positive rate: disagreement on *natural* validation images.
    let fpr = detection_rate(&victim.original, &detector, &victim.val_pool.images);
    // Detection on successful DIVA samples only (the ones that slip past
    // original-model validation).
    let diva_success_idx: Vec<usize> = {
        let o = victim.original.predict(&diva);
        let a = victim.qat.predict(&diva);
        (0..attack_set.len())
            .filter(|&i| o[i] == attack_set.labels[i] && a[i] != attack_set.labels[i])
            .collect()
    };
    let diva_successes = if diva_success_idx.is_empty() {
        None
    } else {
        Some(diva_nn::train::gather(&diva, &diva_success_idx))
    };

    let mut out = String::new();
    out.push_str(
        "Extension — differential detection: validate with the original model\n\
         PLUS an independently re-adapted copy; flag inputs they disagree on\n\n",
    );
    out.push_str(&format!(
        "false-positive rate on natural validation images: {}\n\n",
        pct(fpr)
    ));
    out.push_str("input batch                       | flagged by the detector pair\n");
    out.push_str("----------------------------------|------------------------------\n");
    let mut csv = String::from("batch,detection_rate\n");
    for (name, batch) in [
        ("natural attack-set images", Some(&attack_set.images)),
        ("PGD-attacked images", Some(&pgd)),
        ("DIVA-attacked images", Some(&diva)),
        ("DIVA *successful* images only", diva_successes.as_ref()),
    ] {
        match batch {
            Some(b) => {
                let r = detection_rate(&victim.original, &detector, b);
                out.push_str(&format!("{name:34}| {}\n", pct(r)));
                csv.push_str(&format!("{name},{r}\n"));
            }
            None => out.push_str(&format!("{name:34}| (no successful DIVA samples)\n")),
        }
    }
    archive_csv("detect_defense", &csv);
    out.push_str(
        "\nExpected shape: natural images rarely split the pair (low FPR), but a\n\
         large share of the DIVA samples that evade the original model are\n\
         caught by disagreement with the re-adapted copy — the variation the\n\
         attack exploits is itself a detection signal. The operator-side cost\n\
         is one extra adapted-model inference per validated input.\n",
    );
    out
}
