//! §5.5: robust (adversarial) training as a defense — PGD-train the
//! original model, re-adapt it, and attack the robust pair with PGD and
//! DIVA.

use diva_core::attack::AttackCfg;
use diva_core::robust::{adversarial_training, robust_accuracy, RobustCfg};
use diva_models::Architecture;
use diva_nn::train::TrainCfg;
use diva_quant::{Int8Engine, QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

use crate::experiments::VictimCache;
use crate::suite::{attack_matrix_row, pct, AttackKind, ExperimentScale, VictimModels};

/// Runs the defense experiment on the ResNet victim.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale) -> String {
    let victim = cache.victim(Architecture::ResNet, scale).clone();
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x55);

    // Robust-train a copy of the original (continuing from the trained
    // weights, as the paper starts from the robustness library's pretrained
    // robust ResNet50).
    let mut robust_original = victim.original.clone();
    let rob_cfg = RobustCfg {
        train: TrainCfg {
            epochs: scale.train_cfg.epochs / 2,
            lr: scale.train_cfg.lr / 3.0,
            ..scale.train_cfg.clone()
        },
        attack: AttackCfg {
            steps: 5,
            ..AttackCfg::paper_default()
        },
    };
    diva_trace::progress!("[robust] adversarially training ResNet ...");
    adversarial_training(
        &mut robust_original,
        &victim.train.images,
        &victim.train.labels,
        &rob_cfg,
        &mut rng,
    );
    // Re-adapt the robust model (PyTorch-Quantization analogue: calibrate +
    // short QAT).
    let mut robust_qat = QatNetwork::new(robust_original.clone(), QuantCfg::default());
    robust_qat.calibrate(&victim.train.images);
    robust_qat.train_qat(
        &victim.train.images,
        &victim.train.labels,
        &scale.qat_cfg,
        &mut rng,
    );
    let robust_engine = Int8Engine::from_qat(&robust_qat);
    let robust_victim = VictimModels {
        original: robust_original.clone(),
        qat: robust_qat.clone(),
        engine: robust_engine,
        ..victim.clone()
    };
    let attack_set = robust_victim.attack_set(scale.per_class_val);
    let cfg = AttackCfg::paper_default();

    let mut out = String::new();
    out.push_str(&format!(
        "§5.5 — attacks against the robust-trained pair (ResNet, {} images)\n\n",
        attack_set.len()
    ));
    out.push_str("Attack                | Top-1 joint | Attack-only | Orig-fooled\n");
    out.push_str("----------------------|-------------|-------------|------------\n");
    for kind in [
        AttackKind::Pgd,
        AttackKind::DivaWhitebox(1.0),
        AttackKind::DivaWhitebox(1.5),
        AttackKind::DivaWhitebox(5.0),
    ] {
        let row = attack_matrix_row(&robust_victim, &attack_set, kind, &cfg, None)
            .expect("no surrogate-based kinds are queued here");
        let label = match kind {
            AttackKind::DivaWhitebox(c) => format!("DIVA (c={c})"),
            _ => kind.name(),
        };
        out.push_str(&format!(
            "{:21} | {}      | {}      | {}\n",
            label,
            pct(row.counts.top1_rate()),
            pct(row.counts.attack_only_rate()),
            pct(row.counts.original_fooled_rate()),
        ));
    }
    // Robust accuracy of the adapted model under PGD (the paper's
    // "Robust_acc" readout), non-robust pair for contrast.
    let rob_acc = robust_accuracy(&robust_qat, &attack_set.images, &attack_set.labels, &cfg);
    let nonrob_set = victim.attack_set(scale.per_class_val);
    let nonrob_acc = robust_accuracy(&victim.qat, &nonrob_set.images, &nonrob_set.labels, &cfg);
    // And the undefended pair's DIVA success for comparison.
    let undefended = attack_matrix_row(
        &victim,
        &nonrob_set,
        AttackKind::DivaWhitebox(1.0),
        &cfg,
        None,
    )
    .expect("whitebox DIVA needs no surrogates");
    out.push_str(&format!(
        "\nrobust accuracy of adapted model under PGD: {} (undefended: {})\n\
         undefended DIVA (c=1) top-1 joint success for contrast: {}\n",
        pct(rob_acc),
        pct(nonrob_acc),
        pct(undefended.counts.top1_rate()),
    ));
    out.push_str(
        "\nPaper shape: robust training shrinks both attacks' joint success\n\
         (PGD 10.5% vs DIVA 12.8% at c=5 in the paper); DIVA keeps an edge by\n\
         tuning c, and the adapted model's robust accuracy rises.\n",
    );
    out
}
