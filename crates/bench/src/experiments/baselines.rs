//! §5.4: the other baseline attacks — CW(L∞) and Momentum PGD — compared to
//! PGD under the top-1 joint-success criterion.

use diva_core::attack::AttackCfg;
use diva_models::Architecture;

use crate::experiments::VictimCache;
use crate::suite::{attack_matrix_row, pct, AttackKind, ExperimentScale};

/// Runs the baseline comparison across architectures.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale) -> String {
    let cfg = AttackCfg::paper_default();
    let mut out = String::new();
    out.push_str("§5.4 — other baseline attacks (top-1 joint success)\n\n");
    out.push_str("Arch      | Attack       | Top-1 joint | Attack-only\n");
    out.push_str("----------|--------------|-------------|------------\n");
    let kinds = [
        AttackKind::Cw,
        AttackKind::MomentumPgd,
        AttackKind::Pgd,
        AttackKind::DivaWhitebox(1.0),
    ];
    let mut sums = vec![0.0f32; kinds.len()];
    for arch in Architecture::ALL {
        let victim = cache.victim(arch, scale).clone();
        let attack_set = victim.attack_set(scale.per_class_val);
        for (ki, &kind) in kinds.iter().enumerate() {
            let row = attack_matrix_row(&victim, &attack_set, kind, &cfg, None)
                .expect("no surrogate-based kinds are queued here");
            sums[ki] += row.counts.top1_rate();
            out.push_str(&format!(
                "{:9} | {:12} | {}      | {}\n",
                arch.name(),
                kind.name(),
                pct(row.counts.top1_rate()),
                pct(row.counts.attack_only_rate()),
            ));
        }
    }
    out.push_str("\naverages across architectures:\n");
    for (ki, kind) in kinds.iter().enumerate() {
        out.push_str(&format!(
            "  {:21} {}\n",
            kind.name(),
            pct(sums[ki] / Architecture::ALL.len() as f32)
        ));
    }
    out.push_str(
        "\nPaper shape: CW (25.5%) and Momentum PGD (39.4%) average below PGD\n\
         (40.6%) on the joint criterion, and all three sit far below DIVA.\n",
    );
    out
}
