//! Table 1: accuracy of original vs quantized models, per-direction
//! deviation counts, and instability — plus the ablations DESIGN.md calls
//! out (bit width, weight-quantization granularity, QAT epochs).

use diva_metrics::{confidence_delta, instability};
use diva_models::Architecture;
use diva_nn::train::{evaluate, TrainCfg};
use diva_quant::{QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

use crate::experiments::VictimCache;
use crate::suite::{pct, ExperimentScale};

/// Ablation knobs for the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Options {
    /// Quantization bit width (paper: 8).
    pub bits: u8,
    /// Per-tensor instead of per-channel weight quantization.
    pub per_tensor: bool,
    /// QAT epochs (paper: 2; more "worsen the stability").
    pub qat_epochs: Option<usize>,
}

impl Default for Table1Options {
    fn default() -> Self {
        Table1Options {
            bits: 8,
            per_tensor: false,
            qat_epochs: None,
        }
    }
}

/// Runs Table 1 across the three architectures.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale, opts: &Table1Options) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1 — original vs quantized accuracy and instability\n\
         (validation pool n={}, int{} {} weights{})\n\n",
        scale.val_pool_n,
        opts.bits,
        if opts.per_tensor {
            "per-tensor"
        } else {
            "per-channel"
        },
        opts.qat_epochs
            .map(|e| format!(", QAT epochs={e}"))
            .unwrap_or_default(),
    ));
    out.push_str(
        "Architecture | Orig acc | Quant acc | Orig✓ Quant✗ | Orig✗ Quant✓ | Instability | Conf Δ\n",
    );
    out.push_str(
        "-------------|----------|-----------|--------------|--------------|-------------|-------\n",
    );
    for arch in Architecture::ALL {
        let (orig_acc, qat_acc, ow, wo, inst, cd) = if opts.bits == 8
            && !opts.per_tensor
            && opts.qat_epochs.is_none()
        {
            // Default setting: reuse the cached victim.
            let v = cache.victim(arch, scale);
            let (ow, wo, inst) =
                instability(&v.original, &v.qat, &v.val_pool.images, &v.val_pool.labels);
            let cd = confidence_delta(&v.original, &v.qat, &v.val_pool.images, &v.val_pool.labels);
            (v.original_acc, v.qat_acc, ow, wo, inst, cd)
        } else {
            // Ablation: re-adapt the cached original with modified settings.
            let v = cache.victim(arch, scale).clone();
            let mut qcfg = QuantCfg::with_bits(opts.bits);
            if opts.per_tensor {
                qcfg = qcfg.per_tensor();
            }
            let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xAB1);
            let mut qat = QatNetwork::new(v.original.clone(), qcfg);
            qat.calibrate(&v.train.images);
            let qat_train = TrainCfg {
                epochs: opts.qat_epochs.unwrap_or(scale.qat_cfg.epochs),
                ..scale.qat_cfg.clone()
            };
            qat.train_qat(&v.train.images, &v.train.labels, &qat_train, &mut rng);
            let qat_acc = evaluate(&qat, &v.val_pool.images, &v.val_pool.labels);
            let (ow, wo, inst) =
                instability(&v.original, &qat, &v.val_pool.images, &v.val_pool.labels);
            let cd = confidence_delta(&v.original, &qat, &v.val_pool.images, &v.val_pool.labels);
            (v.original_acc, qat_acc, ow, wo, inst, cd)
        };
        out.push_str(&format!(
            "{:12} | {} | {}  | {:12} | {:12} | {}      | {}\n",
            arch.name(),
            pct(orig_acc),
            pct(qat_acc),
            ow,
            wo,
            pct(inst),
            pct(cd),
        ));
    }
    out.push_str(
        "\nPaper shape: quantized accuracy ≥96% of original; instability 6.3–8.1%;\n\
         both deviation directions populated; natural confidence delta small (~7.9%).\n",
    );
    out
}
