//! Figure 1: quadrant breakdown (original correct/incorrect × quantized
//! correct/incorrect) after PGD vs after DIVA on the quantized ResNet.
//!
//! The paper's headline picture: PGD breaks *both* models (detectable),
//! DIVA breaks only the adapted one.

use diva_core::attack::AttackCfg;
use diva_core::pipeline::evaluate_outcomes;
use diva_models::Architecture;

use crate::experiments::VictimCache;
use crate::suite::{attack_matrix_row_adv, pct, AttackKind, ExperimentScale};

/// Runs the quadrant experiment on the ResNet victim.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale) -> String {
    let victim = cache.victim(Architecture::ResNet, scale).clone();
    let attack_set = victim.attack_set(scale.per_class_val);
    let cfg = AttackCfg::paper_default();
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 1 — prediction quadrants after attacking quantized ResNet\n\
         (attack set: {} images, all initially correct on both models)\n\n",
        attack_set.len()
    ));
    out.push_str(
        "Attack | Orig✓ Quant✓ | Orig✓ Quant✗ (evasive hit) | Orig✗ Quant✓ | Orig✗ Quant✗ (detectable)\n",
    );
    out.push_str(
        "-------|--------------|----------------------------|--------------|--------------------------\n",
    );
    for kind in [AttackKind::Pgd, AttackKind::DivaWhitebox(1.0)] {
        let (_, adv) = attack_matrix_row_adv(&victim, &attack_set, kind, &cfg, None)
            .expect("no surrogate-based kinds are queued here");
        let outcomes = evaluate_outcomes(&victim.original, &victim.qat, &adv, &attack_set.labels);
        let n = outcomes.len() as f32;
        let q = |oc: bool, ac: bool| {
            outcomes
                .iter()
                .filter(|o| o.original_correct == oc && o.adapted_correct == ac)
                .count() as f32
                / n
        };
        out.push_str(&format!(
            "{:6} | {}       | {}                     | {}       | {}\n",
            kind.name(),
            pct(q(true, true)),
            pct(q(true, false)),
            pct(q(false, true)),
            pct(q(false, false)),
        ));
    }
    out.push_str(
        "\nPaper shape: PGD lands most images in the Orig✗ quadrants; DIVA\n\
         concentrates them in Orig✓ Quant✗ with almost nothing detectable.\n",
    );
    out
}
