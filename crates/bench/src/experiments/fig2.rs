//! Figure 2: the decision-boundary intuition, made concrete.
//!
//! The paper's Figure 2 is a schematic: the adapted model's decision
//! boundaries are coarser than the original's, and DIVA walks samples into
//! the slivers where they disagree. On a 2-D two-moons problem we can
//! actually *draw* that: train a small MLP, quantize it, rasterise where the
//! two models disagree, and trace a DIVA trajectory into the divergence
//! region.

use diva_core::attack::{diva_attack_traced, AttackCfg};
use diva_nn::graph::GraphBuilder;
use diva_nn::train::{train_classifier, TrainCfg};
use diva_nn::{Infer, Network};
use diva_quant::{QatNetwork, QuantCfg};
use diva_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::experiments::archive_csv;

/// Generates the two-moons dataset mapped into `[0,1]²`.
fn two_moons(n: usize, noise: f32, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
    let mut pts = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let t: f32 = rng.gen_range(0.0..std::f32::consts::PI);
        let (mut x, mut y) = if class == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.35 - t.sin())
        };
        x += rng.gen_range(-noise..noise);
        y += rng.gen_range(-noise..noise);
        // Map x in [-1.2, 2.2], y in [-0.8, 1.2] to [0,1].
        let u = ((x + 1.2) / 3.4).clamp(0.0, 1.0);
        let v = ((y + 0.8) / 2.0).clamp(0.0, 1.0);
        pts.push(Tensor::from_vec(vec![u, v], &[1, 1, 2]));
        labels.push(class);
    }
    (Tensor::stack(&pts), labels)
}

/// A small MLP over 2-D inputs expressed in the graph IR.
fn moon_mlp(rng: &mut StdRng) -> Network {
    let mut b = GraphBuilder::new([1, 1, 2], rng);
    let x = b.input();
    let f = b.flatten(x);
    let d1 = b.dense(f, 24);
    let r1 = b.relu(d1);
    let d2 = b.dense(r1, 24);
    let r2 = b.relu(d2);
    let out = b.dense(r2, 2);
    b.finish(out, Some(r2))
}

/// Runs the boundary study; `side` is the raster resolution.
pub fn run(side: usize) -> String {
    let mut rng = StdRng::seed_from_u64(22);
    let (images, labels) = two_moons(600, 0.12, &mut rng);
    let mut net = moon_mlp(&mut rng);
    let cfg = TrainCfg {
        epochs: 60,
        batch_size: 32,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
    };
    train_classifier(&mut net, &images, &labels, &cfg, &mut rng);
    // Coarse adaptation (int4 makes the boundary sliver visible at toy
    // scale; int8 slivers exist but are sub-pixel in a terminal raster).
    let mut qat = QatNetwork::new(net.clone(), QuantCfg::with_bits(4));
    qat.calibrate(&images);

    // Rasterise agreement/disagreement.
    let mut grid_pts = Vec::with_capacity(side * side);
    for gy in 0..side {
        for gx in 0..side {
            let u = (gx as f32 + 0.5) / side as f32;
            let v = (gy as f32 + 0.5) / side as f32;
            grid_pts.push(Tensor::from_vec(vec![u, v], &[1, 1, 2]));
        }
    }
    let grid = Tensor::stack(&grid_pts);
    let po = net.predict(&grid);
    let pa = qat.predict(&grid);
    let mut disagree = 0usize;
    let mut rows = Vec::with_capacity(side);
    let mut csv = String::from("u,v,fp32,int4\n");
    for gy in 0..side {
        let mut row = String::with_capacity(side);
        for gx in 0..side {
            let i = gy * side + gx;
            let ch = match (po[i], pa[i]) {
                (a, b) if a != b => {
                    disagree += 1;
                    'x'
                }
                (0, _) => '.',
                _ => '#',
            };
            row.push(ch);
            csv.push_str(&format!(
                "{},{},{},{}\n",
                (gx as f32 + 0.5) / side as f32,
                (gy as f32 + 0.5) / side as f32,
                po[i],
                pa[i]
            ));
        }
        rows.push(row);
    }
    archive_csv("fig2_grid", &csv);

    // DIVA trajectory from a correctly-classified sample.
    let start_idx = (0..images.dims()[0])
        .find(|&i| {
            let x = diva_nn::train::gather(&images, &[i]);
            net.predict(&x)[0] == labels[i] && qat.predict(&x)[0] == labels[i]
        })
        .unwrap_or(0);
    let x0 = diva_nn::train::gather(&images, &[start_idx]);
    let y0 = labels[start_idx];
    let mut traj = vec![(x0.data()[0], x0.data()[1])];
    let atk = AttackCfg {
        eps: 0.08,
        alpha: 0.01,
        steps: 20,
        momentum: 0.0,
        random_start: false,
    };
    let adv = diva_attack_traced(&net, &qat, &x0, &[y0], 1.0, &atk, |info| {
        traj.push((info.x.data()[0], info.x.data()[1]));
    });
    let final_orig = net.predict(&adv)[0];
    let final_adapted = qat.predict(&adv)[0];

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 2 — decision boundaries of fp32 vs adapted (int4) two-moons MLP\n\
         ('.'/'#': both models agree on class 0/1; 'x': models disagree)\n\
         disagreement region: {:.1}% of the input space\n\n",
        100.0 * disagree as f32 / (side * side) as f32
    ));
    // Overlay trajectory as digits (step order mod 10).
    let mut canvas: Vec<Vec<char>> = rows.iter().map(|r| r.chars().collect()).collect();
    for (step, &(u, v)) in traj.iter().enumerate() {
        let gx = ((u * side as f32) as usize).min(side - 1);
        let gy = ((v * side as f32) as usize).min(side - 1);
        canvas[gy][gx] = char::from_digit((step % 10) as u32, 10).unwrap_or('*');
    }
    for row in &canvas {
        out.push(' ');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "\nDIVA trajectory (digits = step order) from a class-{y0} sample:\n\
         final predictions — original: class {final_orig}, adapted: class {final_adapted}\n\
         {}\n",
        if final_orig == y0 && final_adapted != y0 {
            "=> reached a divergence sliver: adapted fooled, original intact."
        } else {
            "=> this start point did not reach a divergence sliver."
        }
    ));
    out
}
