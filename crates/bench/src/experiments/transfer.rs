//! Extension experiment: cross-architecture transferability.
//!
//! §2.2/§3 of the paper lean on the folklore result that adversarial
//! examples transfer between models (Papernot et al.) — it is *why* PGD on
//! the adapted model collaterally fools the original. This experiment
//! measures that directly for both attacks: adversarial batches generated
//! against one architecture's (original, adapted) pair are evaluated against
//! every other architecture's pair.
//!
//! Expected shape: PGD perturbations transfer across architectures at a
//! non-trivial rate (they push toward generic boundary directions), while
//! DIVA's perturbations — tuned to one pair's *divergence set* — transfer
//! poorly, underlining how model-specific the divergence attack surface is.

use diva_core::attack::{diva_attack, pgd_attack, AttackCfg};
use diva_core::pipeline::evaluate_attack;
use diva_models::Architecture;

use crate::experiments::{archive_csv, VictimCache};
use crate::suite::{pct, ExperimentScale};

/// Runs the transfer matrix.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale) -> String {
    let cfg = AttackCfg::paper_default();
    let mut out = String::new();
    out.push_str(
        "Extension — cross-architecture transfer of PGD and DIVA\n\
         (rows: where the adversarial batch was generated; columns: the pair\n\
         it is evaluated against; cells: top-1 joint evasive success)\n\n",
    );
    // Prepare all victims and a shared attack set per source arch.
    let mut csv = String::from("attack,source,target,top1,attack_only\n");
    for attack in ["PGD", "DIVA"] {
        out.push_str(&format!(
            "{attack}:\nsource \\ target | {:9} | {:9} | {:9}\n",
            "ResNet", "MobileNet", "DenseNet"
        ));
        out.push_str("----------------|-----------|-----------|----------\n");
        for src in Architecture::ALL {
            let src_victim = cache.victim(src, scale).clone();
            let attack_set = src_victim.attack_set(scale.per_class_val);
            let adv = match attack {
                "PGD" => pgd_attack(
                    &src_victim.qat,
                    &attack_set.images,
                    &attack_set.labels,
                    &cfg,
                ),
                _ => diva_attack(
                    &src_victim.original,
                    &src_victim.qat,
                    &attack_set.images,
                    &attack_set.labels,
                    1.0,
                    &cfg,
                ),
            };
            let mut row = format!("{:15} |", src.name());
            for dst in Architecture::ALL {
                let dst_victim = cache.victim(dst, scale).clone();
                let counts = evaluate_attack(
                    &dst_victim.original,
                    &dst_victim.qat,
                    &adv,
                    &attack_set.labels,
                );
                row.push_str(&format!(" {}    |", pct(counts.top1_rate())));
                csv.push_str(&format!(
                    "{},{},{},{},{}\n",
                    attack,
                    src.name(),
                    dst.name(),
                    counts.top1_rate(),
                    counts.attack_only_rate()
                ));
            }
            row.pop();
            out.push_str(&row);
            out.push('\n');
        }
        out.push('\n');
    }
    archive_csv("transfer_matrix", &csv);
    out.push_str(
        "Expected shape: the diagonal dominates for both attacks; DIVA's\n\
         off-diagonal (transferred) evasive success collapses because the\n\
         divergence set it exploits is specific to one (original, adapted)\n\
         pair — the paper's premise that operators cannot reuse one detector\n\
         across their fleet of adapted models.\n",
    );
    out
}
