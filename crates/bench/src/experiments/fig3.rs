//! Figure 3: a qualitative single-image attack example with confidences —
//! the "pineapple classified as cairn" demonstration.

use diva_core::attack::{diva_attack, linf_distance, AttackCfg};
use diva_metrics::dssim;
use diva_models::Architecture;
use diva_nn::train::gather;
use diva_nn::Infer;
use diva_tensor::ops::softmax_rows;

use crate::experiments::VictimCache;
use crate::suite::{pct, ExperimentScale};

/// Class names for the 16 SynthImageNet classes (shape × palette).
pub const CLASS_NAMES: [&str; 16] = [
    "red disk",
    "green disk",
    "blue disk",
    "yellow disk",
    "red square",
    "green square",
    "blue square",
    "yellow square",
    "red ring",
    "green ring",
    "blue ring",
    "yellow ring",
    "red cross",
    "green cross",
    "blue cross",
    "yellow cross",
];

/// Runs the single-image demonstration on the ResNet victim, picking the
/// first attack-set image on which whitebox DIVA succeeds.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale) -> String {
    let victim = cache.victim(Architecture::ResNet, scale).clone();
    let attack_set = victim.attack_set(scale.per_class_val);
    let cfg = AttackCfg::paper_default();
    let mut out = String::new();
    out.push_str("Figure 3 — qualitative attack example (SynthImageNet, ResNet)\n\n");

    for i in 0..attack_set.len() {
        let x = gather(&attack_set.images, &[i]);
        let y = attack_set.labels[i];
        let adv = diva_attack(&victim.original, &victim.qat, &x, &[y], 1.0, &cfg);
        let o_pred = victim.original.predict(&adv)[0];
        let a_pred = victim.qat.predict(&adv)[0];
        if o_pred == y && a_pred != y {
            let conf =
                |logits: &diva_tensor::Tensor, class: usize| softmax_rows(logits).data()[class];
            let lo_nat = victim.original.logits(&x);
            let la_nat = victim.qat.logits(&x);
            let lo_adv = victim.original.logits(&adv);
            let la_adv = victim.qat.logits(&adv);
            out.push_str(&format!(
                "true class: \"{}\" (sample {i})\n\n\
                 natural image:\n\
                 \x20 original model: \"{}\" ({})\n\
                 \x20 adapted  model: \"{}\" ({})\n\n\
                 attacked image:\n\
                 \x20 original model: \"{}\" ({})   <- still correct\n\
                 \x20 adapted  model: \"{}\" ({})   <- fooled\n\n\
                 perturbation: L-inf {:.4} (budget {:.4}), DSSIM {:.5}\n",
                CLASS_NAMES[y],
                CLASS_NAMES[victim.original.predict(&x)[0]],
                pct(conf(&lo_nat, victim.original.predict(&x)[0])),
                CLASS_NAMES[victim.qat.predict(&x)[0]],
                pct(conf(&la_nat, victim.qat.predict(&x)[0])),
                CLASS_NAMES[o_pred],
                pct(conf(&lo_adv, o_pred)),
                CLASS_NAMES[a_pred],
                pct(conf(&la_adv, a_pred)),
                linf_distance(&adv, &x),
                cfg.eps,
                dssim(&x.index_batch(0), &adv.index_batch(0)),
            ));
            out.push_str(
                "\nPaper shape: the attacked image is near-identical to the natural one\n\
                 (DSSIM << 0.01) yet the adapted model confidently mislabels it while\n\
                 the original model still answers correctly.\n",
            );
            return out;
        }
    }
    out.push_str("no successful DIVA sample found on this attack set (unexpected)\n");
    out
}
