//! Figure 6 (a–c) and Table 2: the main attack matrix — top-1/top-5 joint
//! success, confidence delta, evasion cost and attack speed for PGD vs DIVA
//! in the whitebox, semi-blackbox and blackbox settings, across the three
//! architectures. Figure 6d (success vs steps) lives in [`success_vs_steps`].

use diva_core::attack::{diva_attack_traced, pgd_attack, AttackCfg};
use diva_core::pipeline::evaluate_attack;
use diva_metrics::confidence_delta;
use diva_models::Architecture;

use crate::experiments::{archive_csv, VictimCache};
use crate::suite::{attack_matrix_row, pct, AttackKind, ExperimentScale};

/// Runs the full matrix. `with_blackbox` controls whether the expensive
/// surrogate-based settings are included.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale, with_blackbox: bool) -> String {
    let cfg = AttackCfg::paper_default();
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 6a/b/c + Table 2 — attacks on quantized models\n\
         (eps=8/255, alpha=1/255, t={}, c=1; per-arch attack sets of up to {} per class)\n\n",
        cfg.steps, scale.per_class_val
    ));
    out.push_str(
        "Arch      | Attack                | Top-1  | Top-5  | ConfΔ  | Attack-only | Orig-fooled | s/step\n",
    );
    out.push_str(
        "----------|-----------------------|--------|--------|--------|-------------|-------------|-------\n",
    );
    let mut csv = String::from("arch,attack,top1,top5,conf_delta,attack_only,orig_fooled\n");
    for arch in Architecture::ALL {
        let victim = cache.victim(arch, scale).clone();
        let attack_set = victim.attack_set(scale.per_class_val);
        // Natural-image confidence delta for the Fig. 6c baseline bar.
        let nat_cd = confidence_delta(
            &victim.original,
            &victim.qat,
            &attack_set.images,
            &attack_set.labels,
        );
        out.push_str(&format!(
            "{:9} | (natural images)      |        |        | {} |             |             |\n",
            arch.name(),
            pct(nat_cd)
        ));
        let mut kinds = vec![AttackKind::Pgd, AttackKind::DivaWhitebox(1.0)];
        let surrogates = if with_blackbox {
            kinds.push(AttackKind::DivaSemiBlackbox(1.0));
            kinds.push(AttackKind::DivaBlackbox(1.0));
            Some(cache.surrogates(arch, scale))
        } else {
            None
        };
        for kind in kinds {
            let row = match attack_matrix_row(&victim, &attack_set, kind, &cfg, surrogates.as_ref())
            {
                Ok(row) => row,
                Err(e) => {
                    out.push_str(&format!(
                        "{:9} | {:21} | skipped: {e}\n",
                        arch.name(),
                        kind.name()
                    ));
                    continue;
                }
            };
            out.push_str(&format!(
                "{:9} | {:21} | {} | {} | {} | {}      | {}      | {:.2}\n",
                arch.name(),
                kind.name(),
                pct(row.counts.top1_rate()),
                pct(row.counts.top5_rate()),
                pct(row.confidence_delta),
                pct(row.counts.attack_only_rate()),
                pct(row.counts.original_fooled_rate()),
                row.gen_seconds / cfg.steps as f64,
            ));
            csv.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                arch.name(),
                kind.name(),
                row.counts.top1_rate(),
                row.counts.top5_rate(),
                row.confidence_delta,
                row.counts.attack_only_rate(),
                row.counts.original_fooled_rate(),
            ));
        }
    }
    archive_csv("fig6_matrix", &csv);
    out.push_str(
        "\nPaper shape: DIVA whitebox ≫ PGD on top-1/top-5 joint success with\n\
         near-zero original-fooled rate; semi-blackbox between whitebox and PGD;\n\
         blackbox weakest of the DIVA variants but above PGD on top-1; DIVA's\n\
         attack-only rate (Table 2) only slightly below PGD's; both attacks run\n\
         at a similar per-step cost (§5.2 'Attack speed').\n",
    );
    out
}

/// Figure 6d: top-1 joint success after each attack step, PGD vs DIVA on
/// the ResNet victim.
pub fn success_vs_steps(cache: &mut VictimCache, scale: &ExperimentScale, steps: usize) -> String {
    let victim = cache.victim(Architecture::ResNet, scale).clone();
    let attack_set = victim.attack_set(scale.per_class_val);
    let x = &attack_set.images;
    let labels = &attack_set.labels;

    // PGD: evaluate joint success at every step by re-running with t=k.
    // (PGD through `projected_ascent` is deterministic, so prefix runs agree
    // with a single traced run; trace DIVA directly.)
    let mut pgd_curve = Vec::with_capacity(steps);
    for t in 1..=steps {
        let cfg = AttackCfg::with_steps(t);
        let adv = pgd_attack(&victim.qat, x, labels, &cfg);
        let counts = evaluate_attack(&victim.original, &victim.qat, &adv, labels);
        pgd_curve.push(counts.top1_rate());
    }
    let mut diva_curve = Vec::with_capacity(steps);
    let cfg = AttackCfg::with_steps(steps);
    let _ = diva_attack_traced(
        &victim.original,
        &victim.qat,
        x,
        labels,
        1.0,
        &cfg,
        |info| {
            let counts = evaluate_attack(&victim.original, &victim.qat, info.x, labels);
            diva_curve.push(counts.top1_rate());
        },
    );

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 6d — top-1 joint success vs attack steps (ResNet, {} images)\n\n\
         step |   PGD  |  DIVA\n\
         -----|--------|-------\n",
        attack_set.len()
    ));
    let mut csv = String::from("step,pgd,diva\n");
    for t in 0..steps {
        out.push_str(&format!(
            "{:4} | {} | {}\n",
            t + 1,
            pct(pgd_curve[t]),
            pct(diva_curve[t])
        ));
        csv.push_str(&format!("{},{},{}\n", t + 1, pgd_curve[t], diva_curve[t]));
    }
    archive_csv("fig6d_steps", &csv);
    out.push_str(
        "\nPaper shape: PGD's joint success plateaus after a few steps while DIVA\n\
         keeps climbing well past it.\n",
    );
    out
}
