//! Extension experiment: how the divergence attack surface scales with
//! quantization bit width.
//!
//! The paper fixes int8 (the deployment standard); the framework here
//! supports arbitrary widths, so we can ask the natural follow-up: coarser
//! grids should diverge more from the original (higher instability) and
//! hand DIVA a larger attack surface, at the cost of top-line accuracy.

use diva_core::attack::{diva_attack, pgd_attack, AttackCfg};
use diva_core::pipeline::evaluate_attack;
use diva_data::select_validation;
use diva_metrics::instability;
use diva_models::Architecture;
use diva_nn::train::evaluate;
use diva_quant::{QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

use crate::experiments::{archive_csv, VictimCache};
use crate::suite::{pct, ExperimentScale};

/// Bit widths swept.
pub const BITS: [u8; 3] = [8, 6, 4];

/// Runs the bit-width sweep on the ResNet victim.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale) -> String {
    let victim = cache.victim(Architecture::ResNet, scale).clone();
    let cfg = AttackCfg::paper_default();
    let mut out = String::new();
    out.push_str(
        "Extension — divergence vs quantization bit width (ResNet)\n\n\
         bits | adapted acc | instability | PGD top-1 | DIVA top-1 | DIVA attack-only\n\
         -----|-------------|-------------|-----------|------------|------------------\n",
    );
    let mut csv = String::from("bits,acc,instability,pgd_top1,diva_top1,diva_attack_only\n");
    for bits in BITS {
        let mut rng = StdRng::seed_from_u64(scale.seed ^ u64::from(bits));
        let mut qat = QatNetwork::new(victim.original.clone(), QuantCfg::with_bits(bits));
        qat.calibrate(&victim.train.images);
        qat.train_qat(
            &victim.train.images,
            &victim.train.labels,
            &scale.qat_cfg,
            &mut rng,
        );
        let acc = evaluate(&qat, &victim.val_pool.images, &victim.val_pool.labels);
        let (_, _, inst) = instability(
            &victim.original,
            &qat,
            &victim.val_pool.images,
            &victim.val_pool.labels,
        );
        let attack_set = select_validation(
            &victim.val_pool,
            &[&victim.original, &qat],
            scale.per_class_val,
        );
        if attack_set.is_empty() {
            out.push_str(&format!(
                "{bits:4} | (no mutually-correct samples at this width)\n"
            ));
            continue;
        }
        let pgd = pgd_attack(&qat, &attack_set.images, &attack_set.labels, &cfg);
        let pgd_counts = evaluate_attack(&victim.original, &qat, &pgd, &attack_set.labels);
        let diva = diva_attack(
            &victim.original,
            &qat,
            &attack_set.images,
            &attack_set.labels,
            1.0,
            &cfg,
        );
        let diva_counts = evaluate_attack(&victim.original, &qat, &diva, &attack_set.labels);
        out.push_str(&format!(
            "{bits:4} | {}      | {}      | {}    | {}     | {}\n",
            pct(acc),
            pct(inst),
            pct(pgd_counts.top1_rate()),
            pct(diva_counts.top1_rate()),
            pct(diva_counts.attack_only_rate()),
        ));
        csv.push_str(&format!(
            "{bits},{acc},{inst},{},{},{}\n",
            pgd_counts.top1_rate(),
            diva_counts.top1_rate(),
            diva_counts.attack_only_rate()
        ));
    }
    archive_csv("bits_sweep", &csv);
    out.push_str(
        "\nExpected shape: instability grows steeply as the grid coarsens while\n\
         adapted accuracy decays. DIVA's *evasive advantage* over PGD is\n\
         largest at deployment-grade widths (int8): at very coarse grids the\n\
         models are so divergent that even undirected PGD noise lands in\n\
         divergence regions, eroding DIVA's relative edge.\n",
    );
    out
}
