//! Figure 4: PCA of the penultimate-layer representations on MNIST, before
//! and after the DIVA attack.
//!
//! Reproduces the §4.2 study: samples of digits 0 and 2 that both models
//! classify correctly are embedded with the original and adapted models;
//! attacking the digit-0 samples with DIVA shifts the *adapted* model's
//! representations toward the digit-2 cluster while the original model's
//! move much less.

use diva_core::attack::{diva_attack, diva_targeted_attack, AttackCfg};
use diva_data::mnist::{synth_mnist, MnistCfg};
use diva_metrics::Pca;
use diva_models::mnist_cnn;
use diva_nn::train::{gather, train_classifier, TrainCfg};
use diva_nn::Infer;
use diva_quant::{QatNetwork, QuantCfg};
use diva_tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

use crate::experiments::archive_csv;

/// Result of the PCA study, exposed for tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcaShift {
    /// Distance of adapted-model attacked-0 centroid toward the 2-cluster,
    /// as a fraction of the 0→2 centroid distance (1 = moved all the way).
    pub adapted_shift: f32,
    /// Same for the original model.
    pub original_shift: f32,
    /// Mean PCA-space displacement of the adapted model's representations.
    pub adapted_move: f32,
    /// Same for the original model.
    pub original_move: f32,
    /// Attack success rate on the digit-0 samples.
    pub success: f32,
}

/// Runs the study; returns the printable report and the shift summary.
pub fn run(samples_per_digit: usize) -> (String, PcaShift) {
    let mut rng = StdRng::seed_from_u64(4);
    let mnist_cfg = MnistCfg::default();
    let train = synth_mnist(1500, &mnist_cfg, 100);
    let pool = synth_mnist(6 * samples_per_digit.max(40), &mnist_cfg, 101);

    let mut net = mnist_cnn(&mut rng);
    let tcfg = TrainCfg {
        epochs: 6,
        batch_size: 32,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    train_classifier(&mut net, &train.images, &train.labels, &tcfg, &mut rng);
    let mut qat = QatNetwork::new(net.clone(), QuantCfg::default());
    qat.calibrate(&train.images);
    qat.train_qat(
        &train.images,
        &train.labels,
        &TrainCfg { epochs: 1, ..tcfg },
        &mut rng,
    );

    // Select digit-0 and digit-2 samples both models classify correctly.
    let select = |digit: usize| -> Vec<usize> {
        (0..pool.len())
            .filter(|&i| pool.labels[i] == digit)
            .filter(|&i| {
                let x = gather(&pool.images, &[i]);
                net.predict(&x)[0] == digit && qat.predict(&x)[0] == digit
            })
            .take(samples_per_digit)
            .collect()
    };
    let zeros = select(0);
    let twos = select(2);
    let x0 = gather(&pool.images, &zeros);
    let x2 = gather(&pool.images, &twos);

    // Attack the digit-0 samples with DIVA. The paper's figure shows 0s
    // that the adapted model comes to read as 2s; reproducing that exact
    // flip direction uses the targeted variant (§6) with target digit 2 —
    // the untargeted success rate is reported alongside.
    let labels0 = vec![0usize; zeros.len()];
    let cfg = AttackCfg::paper_default();
    let untargeted = diva_attack(&net, &qat, &x0, &labels0, 1.0, &cfg);
    let success = {
        let preds = qat.predict(&untargeted);
        let orig_preds = net.predict(&untargeted);
        preds
            .iter()
            .zip(&orig_preds)
            .filter(|(a, o)| **a != 0 && **o == 0)
            .count() as f32
            / zeros.len().max(1) as f32
    };
    let adv0 = diva_targeted_attack(
        &net,
        &qat,
        &x0,
        &labels0,
        2,
        1.0,
        4.0,
        &AttackCfg::with_steps(30),
    );
    let toward_two =
        qat.predict(&adv0).iter().filter(|&&p| p == 2).count() as f32 / zeros.len().max(1) as f32;

    // Representations from both models on both digits, natural and attacked.
    let feats = |model: &dyn Fn(&Tensor) -> Tensor, x: &Tensor| model(x);
    let orig_feat = |x: &Tensor| net.features(x).expect("feature node");
    let qat_feat = |x: &Tensor| qat.features(x).expect("feature node");
    let f_o0 = feats(&orig_feat, &x0);
    let f_o2 = feats(&orig_feat, &x2);
    let f_a0 = feats(&qat_feat, &x0);
    let f_a2 = feats(&qat_feat, &x2);
    let f_o0_adv = feats(&orig_feat, &adv0);
    let f_a0_adv = feats(&qat_feat, &adv0);

    // Fit PCA on the natural representations of both models.
    let all_nat = stack_rows(&[&f_o0, &f_o2, &f_a0, &f_a2]);
    let pca = Pca::fit(&all_nat, 2);
    let p_o0 = pca.transform(&f_o0);
    let p_o2 = pca.transform(&f_o2);
    let p_a0 = pca.transform(&f_a0);
    let p_a2 = pca.transform(&f_a2);
    let p_o0_adv = pca.transform(&f_o0_adv);
    let p_a0_adv = pca.transform(&f_a0_adv);

    // Centroid geometry: how far did the attacked 0s move toward the 2s?
    let shift = |nat: &Tensor, adv: &Tensor, toward: &Tensor| -> f32 {
        let c_nat = centroid(nat);
        let c_adv = centroid(adv);
        let c_to = centroid(toward);
        let axis = [c_to[0] - c_nat[0], c_to[1] - c_nat[1]];
        let len2 = axis[0] * axis[0] + axis[1] * axis[1];
        if len2 < 1e-12 {
            return 0.0;
        }
        ((c_adv[0] - c_nat[0]) * axis[0] + (c_adv[1] - c_nat[1]) * axis[1]) / len2
    };
    let adapted_shift = shift(&p_a0, &p_a0_adv, &p_a2);
    let original_shift = shift(&p_o0, &p_o0_adv, &p_o2);
    // Mean per-sample displacement in PCA space — the paper's core claim is
    // that DIVA moves the adapted model's representations much more than
    // the original's, regardless of which wrong cluster they land in.
    let displacement = |nat: &Tensor, adv: &Tensor| -> f32 {
        let n = nat.dims()[0].max(1);
        (0..n)
            .map(|i| {
                let dx = adv.data()[i * 2] - nat.data()[i * 2];
                let dy = adv.data()[i * 2 + 1] - nat.data()[i * 2 + 1];
                (dx * dx + dy * dy).sqrt()
            })
            .sum::<f32>()
            / n as f32
    };
    let adapted_move = displacement(&p_a0, &p_a0_adv);
    let original_move = displacement(&p_o0, &p_o0_adv);

    // Archive the raw projected points.
    let mut csv = String::from("series,pc1,pc2\n");
    for (name, pts) in [
        ("orig_digit0", &p_o0),
        ("orig_digit2", &p_o2),
        ("adapted_digit0", &p_a0),
        ("adapted_digit2", &p_a2),
        ("orig_digit0_attacked", &p_o0_adv),
        ("adapted_digit0_attacked", &p_a0_adv),
    ] {
        for i in 0..pts.dims()[0] {
            csv.push_str(&format!(
                "{name},{},{}\n",
                pts.data()[i * 2],
                pts.data()[i * 2 + 1]
            ));
        }
    }
    archive_csv("fig4_pca", &csv);

    let report = format!(
        "Figure 4 — PCA of penultimate representations (SynthMNIST, digits 0 vs 2)\n\
         samples: {} per digit, both-model-correct\n\n\
         untargeted DIVA success on digit-0 samples (adapted wrong & original right): {:.1}%\n\
         targeted (0→2) DIVA: adapted model reads {:.1}% of the 0s as 2s\n\n\
         mean PCA-space displacement of attacked digit-0 representations\n\
         (how far DIVA dragged each model's view of the same images):\n\
         \x20 adapted model:  {:.3}\n\
         \x20 original model: {:.3}   (ratio {:.2}x)\n\n\
         centroid shift toward the digit-2 cloud (fraction of the 0→2 centroid\n\
         distance; raw points in repro_out/fig4_pca.csv):\n\
         \x20 adapted model:  {:+.2}\n\
         \x20 original model: {:+.2}\n\n\
         Paper shape: DIVA shifts the adapted model's representations across to\n\
         the wrong cluster while the original model's move much less.\n",
        samples_per_digit,
        100.0 * success,
        100.0 * toward_two,
        adapted_move,
        original_move,
        adapted_move / original_move.max(1e-6),
        adapted_shift,
        original_shift,
    );
    (
        report,
        PcaShift {
            adapted_shift,
            original_shift,
            adapted_move,
            original_move,
            success,
        },
    )
}

fn stack_rows(parts: &[&Tensor]) -> Tensor {
    let d = parts[0].dims()[1];
    let mut data = Vec::new();
    let mut n = 0;
    for p in parts {
        assert_eq!(p.dims()[1], d);
        data.extend_from_slice(p.data());
        n += p.dims()[0];
    }
    Tensor::from_vec(data, &[n, d])
}

fn centroid(pts: &Tensor) -> [f32; 2] {
    let n = pts.dims()[0].max(1) as f32;
    let mut c = [0.0f32; 2];
    for i in 0..pts.dims()[0] {
        c[0] += pts.data()[i * 2];
        c[1] += pts.data()[i * 2 + 1];
    }
    [c[0] / n, c[1] / n]
}
