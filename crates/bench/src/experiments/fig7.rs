//! Figure 7: whitebox DIVA's top-1 joint success as the balance constant
//! `c` sweeps {0, 0.001, 0.1, 1, 5, 10}, plus the evasion-cost trade-off
//! (§5.3).

use diva_core::attack::AttackCfg;
use diva_models::Architecture;

use crate::experiments::{archive_csv, VictimCache};
use crate::suite::{attack_matrix_row, pct, AttackKind, ExperimentScale};

/// The paper's sweep values.
pub const C_VALUES: [f32; 6] = [0.0, 0.001, 0.1, 1.0, 5.0, 10.0];

/// Runs the c-ablation across architectures.
pub fn run(cache: &mut VictimCache, scale: &ExperimentScale) -> String {
    let cfg = AttackCfg::paper_default();
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 7 — whitebox DIVA vs balance constant c (t={})\n\n",
        cfg.steps
    ));
    out.push_str("Arch      |    c    | Top-1 joint | Attack-only | Orig-fooled\n");
    out.push_str("----------|---------|-------------|-------------|------------\n");
    let mut csv = String::from("arch,c,top1,attack_only,orig_fooled\n");
    for arch in Architecture::ALL {
        let victim = cache.victim(arch, scale).clone();
        let attack_set = victim.attack_set(scale.per_class_val);
        let mut best = (0.0f32, 0.0f32);
        for &c in &C_VALUES {
            let row = attack_matrix_row(
                &victim,
                &attack_set,
                AttackKind::DivaWhitebox(c),
                &cfg,
                None,
            )
            .expect("whitebox DIVA needs no surrogates");
            if row.counts.top1_rate() > best.1 {
                best = (c, row.counts.top1_rate());
            }
            out.push_str(&format!(
                "{:9} | {:7} | {}      | {}      | {}\n",
                arch.name(),
                c,
                pct(row.counts.top1_rate()),
                pct(row.counts.attack_only_rate()),
                pct(row.counts.original_fooled_rate()),
            ));
            csv.push_str(&format!(
                "{},{},{},{},{}\n",
                arch.name(),
                c,
                row.counts.top1_rate(),
                row.counts.attack_only_rate(),
                row.counts.original_fooled_rate()
            ));
        }
        out.push_str(&format!(
            "{:9} | peak at c={} (top-1 {})\n",
            arch.name(),
            best.0,
            pct(best.1)
        ));
    }
    archive_csv("fig7_c_sweep", &csv);
    out.push_str(
        "\nPaper shape: success is near zero at c=0 (nothing attacks the adapted\n\
         model), peaks at a mid-range c, and at large c trades evasion for raw\n\
         attack success (attack-only rises, original-fooled rises with it).\n",
    );
    out
}
