//! `diva-bench` — the experiment suite behind the `repro` binary and the
//! Criterion benches.
//!
//! [`suite`] prepares victims (train → adapt → deploy) and runs the attack
//! matrix; each `repro` subcommand (one per paper table/figure) composes
//! these pieces and prints the corresponding rows. See DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for recorded paper-vs-measured
//! results.

pub mod experiments;
pub mod microbench;
pub mod profcmd;
pub mod servecmd;
pub mod suite;

pub use suite::{
    attack_matrix_row, current_experiment, prepare_victim, AttackKind, ExperimentScale,
    ExperimentScope, VictimModels,
};
