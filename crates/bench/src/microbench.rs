//! The shared microbenchmark catalog behind `cargo bench` and
//! `repro regress`.
//!
//! Criterion produces rich statistics but no machine-comparable artifact,
//! and it is a dev-dependency — unavailable to the `repro` binary. This
//! module owns the case list (stable ids, fixed shapes, seeded fixtures)
//! and a small median-of-N harness, so the same workloads back three
//! consumers:
//!
//! - `cargo bench -p diva-bench` — Criterion iterates the same closures
//!   for interactive exploration;
//! - `DIVA_BENCH_JSON=<dir> cargo bench` — the bench binaries skip
//!   Criterion and emit `BENCH_<area>.json` via [`run_area`];
//! - `repro regress` — re-measures and compares against the committed
//!   `BENCH_<area>.json` baselines with `diva_prof`'s comparator.
//!
//! Bench ids are `group/variant/shape` (e.g.
//! `conv_kernels/im2col/n8_c12_s16_co24_k3`): the shape suffix keeps ids
//! stable under catalog growth, so baselines only churn when a workload
//! actually changes.

use std::rc::Rc;

use diva_core::attack::{diva_grad, pgd_attack, AttackCfg};
use diva_core::{diva_attack, DiffModel};
use diva_models::{Architecture, ModelCfg};
use diva_nn::train::gather;
use diva_nn::{losses, Infer, Network};
use diva_prof::BenchSummary;
use diva_quant::{Int8Engine, QatNetwork, QuantCfg, RequantMode};
use diva_tensor::conv::{conv2d, conv2d_naive, Conv2dCfg};
use diva_tensor::gemm::{self, Layout};
use diva_tensor::{ops, Tensor};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The bench areas, one committed `BENCH_<area>.json` baseline each.
pub const AREAS: &[&str] = &["kernels", "attacks"];

/// The baseline filename for an area.
pub fn baseline_file(area: &str) -> String {
    format!("BENCH_{area}.json")
}

/// One benchmark: a stable id plus a closure running the workload once.
pub struct BenchCase {
    /// Stable id (`group/variant/shape`), the key in `BENCH_<area>.json`.
    pub id: String,
    /// Runs one iteration of the workload.
    pub run: Box<dyn FnMut()>,
}

impl BenchCase {
    fn new(id: String, run: impl FnMut() + 'static) -> BenchCase {
        BenchCase {
            id,
            run: Box::new(run),
        }
    }
}

fn rand_tensor(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), dims)
}

/// The `kernels` area: im2col vs naive convolution at two shapes, and
/// fixed-point vs float requantization in the deployed engine (the
/// DESIGN.md §4 kernel ablations).
pub fn kernel_cases() -> Vec<BenchCase> {
    let mut cases = Vec::new();
    let mut rng = StdRng::seed_from_u64(1);
    for (n, c_in, side, c_out) in [(8usize, 12usize, 16usize, 24usize), (4, 16, 8, 16)] {
        let cfg = Conv2dCfg::square(3, 1, 1);
        let args = Rc::new((
            rand_tensor(&mut rng, &[n, c_in, side, side]),
            rand_tensor(&mut rng, &[c_out, c_in, 3, 3]),
            rand_tensor(&mut rng, &[c_out]),
        ));
        let shape = format!("n{n}_c{c_in}_s{side}_co{c_out}_k3");
        let a = Rc::clone(&args);
        cases.push(BenchCase::new(
            format!("conv_kernels/im2col/{shape}"),
            move || {
                std::hint::black_box(conv2d(&a.0, &a.1, &a.2, cfg).unwrap());
            },
        ));
        let a = args;
        cases.push(BenchCase::new(
            format!("conv_kernels/naive/{shape}"),
            move || {
                std::hint::black_box(conv2d_naive(&a.0, &a.1, &a.2, cfg).unwrap());
            },
        ));
    }

    // Bare GEMM cores, blocked vs retained naive reference, at one shape
    // per dtype sized well past the small-product cutoff.
    let mut rng = StdRng::seed_from_u64(3);
    {
        let (m, n, k) = (96usize, 96usize, 128usize);
        let a = Rc::new(rand_tensor(&mut rng, &[m, k]));
        let b = Rc::new(rand_tensor(&mut rng, &[k, n]));
        let (ab, bb) = (Rc::clone(&a), Rc::clone(&b));
        cases.push(BenchCase::new(
            format!("gemm_kernels/f32_blocked/m{m}_n{n}_k{k}"),
            move || {
                let mut out = vec![0.0f32; m * n];
                gemm::gemm_f32(
                    m,
                    n,
                    k,
                    ab.data(),
                    Layout::RowMajor,
                    bb.data(),
                    Layout::RowMajor,
                    &mut out,
                    &mut gemm::NoEpilogue,
                );
                std::hint::black_box(out);
            },
        ));
        cases.push(BenchCase::new(
            format!("gemm_kernels/f32_naive/m{m}_n{n}_k{k}"),
            move || {
                std::hint::black_box(gemm::naive_f32(
                    m,
                    n,
                    k,
                    a.data(),
                    Layout::RowMajor,
                    b.data(),
                    Layout::RowMajor,
                ));
            },
        ));
    }
    {
        let (m, n, k) = (32usize, 256usize, 144usize);
        let a: Rc<Vec<i8>> = Rc::new(
            (0..m * k)
                .map(|_| rng.gen_range(-127i32..=127) as i8)
                .collect(),
        );
        let b: Rc<Vec<i8>> = Rc::new(
            (0..k * n)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect(),
        );
        let (ab, bb) = (Rc::clone(&a), Rc::clone(&b));
        cases.push(BenchCase::new(
            format!("gemm_kernels/i8_blocked/m{m}_n{n}_k{k}"),
            move || {
                let mut acc = vec![0i32; m * n];
                let mut sink: Vec<i8> = Vec::new();
                gemm::gemm_i8(
                    m,
                    n,
                    k,
                    &ab,
                    &bb,
                    Layout::RowMajor,
                    -5,
                    &mut sink,
                    &mut gemm::CaptureAcc { acc: &mut acc, n },
                );
                std::hint::black_box(acc);
            },
        ));
        cases.push(BenchCase::new(
            format!("gemm_kernels/i8_naive/m{m}_n{n}_k{k}"),
            move || {
                std::hint::black_box(gemm::naive_i8_i32(m, n, k, &a, &b, Layout::RowMajor, -5));
            },
        ));
    }

    // Packed-weight cache, cold vs hot, at shapes where the pack step is a
    // material share of the call: small-batch dense layers (the serving /
    // single-image attack shape, where weight bytes rival the muladd count)
    // and a 1×1-spatial head conv (classifier-style 1×1 kernel over pooled
    // features — GEMM n=1, so panel reuse is minimal and pack cost looms).
    // `cold` drops every resident artifact before the call; `hot` reuses
    // the panels fetched during warmup. Same code path otherwise, so the
    // ratio isolates exactly what the cache amortizes (pack + insert).
    let mut rng = StdRng::seed_from_u64(5);
    {
        let (m, n, k) = (2usize, 256usize, 512usize); // dense_forward: x[2,512]·w[256,512]ᵀ
        let x = Rc::new(rand_tensor(&mut rng, &[m, k]));
        let w = Rc::new(rand_tensor(&mut rng, &[n, k]));
        let bias = Rc::new(rand_tensor(&mut rng, &[n]));
        let shape = format!("f32_dense_b{m}_f{n}_in{k}");
        let (xc, wc, bc) = (Rc::clone(&x), Rc::clone(&w), Rc::clone(&bias));
        cases.push(BenchCase::new(
            format!("packed_cache/cold/{shape}"),
            move || {
                diva_tensor::packcache::clear();
                std::hint::black_box(ops::dense_forward(&xc, &wc, &bc).unwrap());
            },
        ));
        cases.push(BenchCase::new(
            format!("packed_cache/hot/{shape}"),
            move || {
                std::hint::black_box(ops::dense_forward(&x, &w, &bias).unwrap());
            },
        ));
    }
    {
        let (m, n, k) = (256usize, 2usize, 512usize); // engine dense: w[256,512]·xᵀ
        let a: Rc<Vec<i8>> = Rc::new(
            (0..m * k)
                .map(|_| rng.gen_range(-127i32..=127) as i8)
                .collect(),
        );
        let b: Rc<Vec<i8>> = Rc::new(
            (0..k * n)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect(),
        );
        let shape = format!("i8_dense_f{m}_b{n}_in{k}");
        let (ac, bc) = (Rc::clone(&a), Rc::clone(&b));
        cases.push(BenchCase::new(
            format!("packed_cache/cold/{shape}"),
            move || {
                diva_tensor::packcache::clear();
                let pre = diva_tensor::packcache::pack_i16_a(&ac, m, k);
                let mut acc = vec![0i32; m * n];
                let mut sink: Vec<i8> = Vec::new();
                gemm::gemm_i8_pre(
                    m,
                    n,
                    k,
                    &ac,
                    Some(pre.as_a()),
                    &bc,
                    Layout::Transposed,
                    -5,
                    &mut sink,
                    &mut gemm::CaptureAcc { acc: &mut acc, n },
                );
                std::hint::black_box(acc);
            },
        ));
        cases.push(BenchCase::new(
            format!("packed_cache/hot/{shape}"),
            move || {
                let pre = diva_tensor::packcache::pack_i16_a(&a, m, k);
                let mut acc = vec![0i32; m * n];
                let mut sink: Vec<i8> = Vec::new();
                gemm::gemm_i8_pre(
                    m,
                    n,
                    k,
                    &a,
                    Some(pre.as_a()),
                    &b,
                    Layout::Transposed,
                    -5,
                    &mut sink,
                    &mut gemm::CaptureAcc { acc: &mut acc, n },
                );
                std::hint::black_box(acc);
            },
        ));
    }
    {
        // 1×1 head conv over pooled 1×1 features. The channel counts put the
        // weight tensor (co·ci f32 = 2 MiB) past L2, so the cold pack pays
        // real memory traffic — the regime a served classifier head lives in.
        let cfg = Conv2dCfg::square(1, 1, 0);
        let (co, ci) = (512usize, 1024usize);
        let args = Rc::new((
            rand_tensor(&mut rng, &[1, ci, 1, 1]),
            rand_tensor(&mut rng, &[co, ci, 1, 1]),
            rand_tensor(&mut rng, &[co]),
        ));
        let shape = format!("conv1x1_co{co}_c{ci}_s1");
        let a = Rc::clone(&args);
        cases.push(BenchCase::new(
            format!("packed_cache/cold/{shape}"),
            move || {
                diva_tensor::packcache::clear();
                std::hint::black_box(conv2d(&a.0, &a.1, &a.2, cfg).unwrap());
            },
        ));
        let a = args;
        cases.push(BenchCase::new(
            format!("packed_cache/hot/{shape}"),
            move || {
                std::hint::black_box(conv2d(&a.0, &a.1, &a.2, cfg).unwrap());
            },
        ));
    }

    // Intra-op threaded GEMM at one large shape per dtype, pinned to 1 vs 4
    // workers inside the closure (restored to the env default after). On a
    // multi-core host jobs4 shows the fan-out win; on a 1-CPU container it
    // documents the fan-out overhead instead — either way the pair is the
    // recorded trajectory for the intra-op path.
    {
        let (m, n, k) = (96usize, 1024usize, 160usize); // 15.7M muladds, 2 jc tiles
        let a = Rc::new(rand_tensor(&mut rng, &[m, k]));
        let b = Rc::new(rand_tensor(&mut rng, &[k, n]));
        for jobs in [1usize, 4] {
            let (ab, bb) = (Rc::clone(&a), Rc::clone(&b));
            cases.push(BenchCase::new(
                format!("gemm_threads/f32_jobs{jobs}/m{m}_n{n}_k{k}"),
                move || {
                    diva_par::set_jobs(jobs);
                    let mut out = vec![0.0f32; m * n];
                    gemm::gemm_f32(
                        m,
                        n,
                        k,
                        ab.data(),
                        Layout::RowMajor,
                        bb.data(),
                        Layout::RowMajor,
                        &mut out,
                        &mut gemm::NoEpilogue,
                    );
                    diva_par::set_jobs(0);
                    std::hint::black_box(out);
                },
            ));
        }
    }
    {
        let (m, n, k) = (128usize, 1024usize, 96usize); // 12.6M muladds
        let a: Rc<Vec<i8>> = Rc::new(
            (0..m * k)
                .map(|_| rng.gen_range(-127i32..=127) as i8)
                .collect(),
        );
        let b: Rc<Vec<i8>> = Rc::new(
            (0..k * n)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect(),
        );
        for jobs in [1usize, 4] {
            let (ab, bb) = (Rc::clone(&a), Rc::clone(&b));
            cases.push(BenchCase::new(
                format!("gemm_threads/i8_jobs{jobs}/m{m}_n{n}_k{k}"),
                move || {
                    diva_par::set_jobs(jobs);
                    let mut acc = vec![0i32; m * n];
                    let mut sink: Vec<i8> = Vec::new();
                    gemm::gemm_i8(
                        m,
                        n,
                        k,
                        &ab,
                        &bb,
                        Layout::RowMajor,
                        -5,
                        &mut sink,
                        &mut gemm::CaptureAcc { acc: &mut acc, n },
                    );
                    diva_par::set_jobs(0);
                    std::hint::black_box(acc);
                },
            ));
        }
    }

    let mut rng = StdRng::seed_from_u64(2);
    let net = Architecture::ResNet.build(&ModelCfg::standard(16), &mut rng);
    let samples: Vec<Tensor> = (0..16)
        .map(|_| rand_tensor(&mut rng, &[3, 16, 16]).map(|v| (v + 1.0) / 2.0))
        .collect();
    let calib = Tensor::stack(&samples);
    let mut qat = QatNetwork::new(net, QuantCfg::default());
    qat.calibrate(&calib);
    let fixed = Int8Engine::from_qat_with_mode(&qat, RequantMode::FixedPoint);
    let float = fixed.with_mode(RequantMode::Float);
    let x = Rc::new(gather(&calib, &(0..8).collect::<Vec<_>>()));
    let xf = Rc::clone(&x);
    cases.push(BenchCase::new(
        "engine_requant/fixed_point/resnet16_b8".into(),
        move || {
            std::hint::black_box(fixed.logits(&xf));
        },
    ));
    cases.push(BenchCase::new(
        "engine_requant/float/resnet16_b8".into(),
        move || {
            std::hint::black_box(float.logits(&x));
        },
    ));
    cases
}

/// Fixture shared by the `attacks` area: one trained-shape ResNet victim
/// in all three deployment forms plus a calibrated attack batch.
struct AttackFixture {
    original: Network,
    qat: QatNetwork,
    engine: Int8Engine,
    x: Tensor,
    labels: Vec<usize>,
}

fn attack_fixture() -> Rc<AttackFixture> {
    let mut rng = StdRng::seed_from_u64(0);
    let original = Architecture::ResNet.build(&ModelCfg::standard(16), &mut rng);
    let per = 3 * 16 * 16;
    let samples: Vec<Tensor> = (0..32)
        .map(|_| {
            Tensor::from_vec(
                (0..per).map(|_| rng.gen_range(0.0..1.0f32)).collect(),
                &[3, 16, 16],
            )
        })
        .collect();
    let calib = Tensor::stack(&samples);
    let mut qat = QatNetwork::new(original.clone(), QuantCfg::default());
    qat.calibrate(&calib);
    let engine = Int8Engine::from_qat(&qat);
    let x = gather(&calib, &(0..8).collect::<Vec<_>>());
    let labels = original.predict(&x);
    Rc::new(AttackFixture {
        original,
        qat,
        engine,
        x,
        labels,
    })
}

/// The `attacks` area: per-step gradient cost (the paper's §5.2 "attack
/// speed" comparison), full 20-step attacks, inference across the three
/// model forms, and the quantization pipeline. `quantize/calibrate`
/// includes `QatNetwork` construction — calibration consumes the network,
/// so building it is part of the measured operation.
pub fn attack_cases() -> Vec<BenchCase> {
    let f = attack_fixture();
    let cfg = AttackCfg::paper_default();
    let mut cases = Vec::new();
    let g = Rc::clone(&f);
    cases.push(BenchCase::new(
        "attack_step/pgd_grad/resnet16_b8".into(),
        move || {
            std::hint::black_box(
                g.qat
                    .value_and_grad(&g.x, &mut |l| losses::cross_entropy(l, &g.labels).1)
                    .1,
            );
        },
    ));
    let g = Rc::clone(&f);
    cases.push(BenchCase::new(
        "attack_step/diva_grad/resnet16_b8".into(),
        move || {
            std::hint::black_box(diva_grad(&g.original, &g.qat, &g.x, &g.labels, 1.0));
        },
    ));
    let g = Rc::clone(&f);
    cases.push(BenchCase::new(
        "attack_step/pgd_20_steps/resnet16_b8".into(),
        move || {
            std::hint::black_box(pgd_attack(&g.qat, &g.x, &g.labels, &cfg));
        },
    ));
    let g = Rc::clone(&f);
    cases.push(BenchCase::new(
        "attack_step/diva_20_steps/resnet16_b8".into(),
        move || {
            std::hint::black_box(diva_attack(&g.original, &g.qat, &g.x, &g.labels, 1.0, &cfg));
        },
    ));
    let g = Rc::clone(&f);
    cases.push(BenchCase::new(
        "inference/fp32/resnet16_b8".into(),
        move || {
            std::hint::black_box(g.original.logits(&g.x));
        },
    ));
    let g = Rc::clone(&f);
    cases.push(BenchCase::new(
        "inference/fake_quant/resnet16_b8".into(),
        move || {
            std::hint::black_box(g.qat.logits(&g.x));
        },
    ));
    let g = Rc::clone(&f);
    cases.push(BenchCase::new(
        "inference/int8_engine/resnet16_b8".into(),
        move || {
            std::hint::black_box(g.engine.logits(&g.x));
        },
    ));
    let g = Rc::clone(&f);
    cases.push(BenchCase::new(
        "quantize/calibrate/resnet16_b8".into(),
        move || {
            let mut q = QatNetwork::new(g.original.clone(), QuantCfg::default());
            q.calibrate(&g.x);
            std::hint::black_box(q);
        },
    ));
    let g = f;
    cases.push(BenchCase::new(
        "quantize/convert_to_engine/resnet16".into(),
        move || {
            std::hint::black_box(Int8Engine::from_qat(&g.qat));
        },
    ));
    cases
}

/// The case list for a named area, or `None` for unknown areas.
pub fn cases_for_area(area: &str) -> Option<Vec<BenchCase>> {
    match area {
        "kernels" => Some(kernel_cases()),
        "attacks" => Some(attack_cases()),
        _ => None,
    }
}

/// Measurement plan for [`run_area`].
#[derive(Debug, Clone, Copy)]
pub struct MeasureCfg {
    /// Untimed iterations before sampling (cache/branch warm-up).
    pub warmup: u32,
    /// Timed iterations; the summary keeps their median and mean.
    pub iters: u32,
}

impl Default for MeasureCfg {
    fn default() -> Self {
        // An odd count makes the median an actual sample.
        MeasureCfg {
            warmup: 2,
            iters: 9,
        }
    }
}

/// Measures every case of `area` and returns the summary ready to save as
/// `BENCH_<area>.json`. Returns `None` for unknown areas.
pub fn run_area(area: &str, cfg: &MeasureCfg) -> Option<BenchSummary> {
    let cases = cases_for_area(area)?;
    let mut summary = BenchSummary::new(area);
    for mut case in cases {
        for _ in 0..cfg.warmup {
            (case.run)();
        }
        let mut samples = Vec::with_capacity(cfg.iters as usize);
        for _ in 0..cfg.iters.max(1) {
            let start = std::time::Instant::now();
            (case.run)();
            let ns = start.elapsed().as_nanos();
            samples.push(if ns > u64::MAX as u128 {
                u64::MAX
            } else {
                ns as u64
            });
        }
        summary.record_samples(&case.id, &samples);
        if let Some(entry) = summary.benches.get(&case.id) {
            diva_trace::progress!(
                "[bench] {}: median {}ns over {} iters",
                case.id,
                entry.median_ns,
                entry.iters
            );
        }
    }
    Some(summary)
}

/// JSON-emission mode for the Criterion bench binaries, driven by
/// `DIVA_BENCH_JSON`: unset/`0` → `None` (run Criterion normally); `1` →
/// write `BENCH_<area>.json` into the current directory; anything else →
/// treat the value as the output *directory*.
pub fn json_env_path(area: &str) -> Option<std::path::PathBuf> {
    let v = std::env::var("DIVA_BENCH_JSON").ok()?;
    match v.as_str() {
        "" | "0" => None,
        "1" => Some(std::path::PathBuf::from(baseline_file(area))),
        dir => Some(std::path::Path::new(dir).join(baseline_file(area))),
    }
}
