//! Experiment plumbing: victim preparation (train → quantize → deploy),
//! attack-set selection, and the attack matrix shared by the paper's
//! tables and figures.

use diva_core::attack::{
    cw_attack_traced, diva_attack_traced, momentum_pgd_attack_traced, pgd_attack_traced, AttackCfg,
};
use diva_core::parallel::par_attack_images_supervised;
use diva_core::pipeline::{
    evaluate_outcomes, evaluate_outcomes_with_flips, prepare_blackbox, prepare_semi_blackbox,
    BlackboxAssets, SemiBlackboxAssets,
};
use diva_data::imagenet::{synth_imagenet, ImagenetCfg};
use diva_data::{select_validation, Dataset};
use diva_distill::DistillCfg;
use diva_fault::ckpt::ItemStore;
use diva_metrics::success::SuccessCounts;
use diva_metrics::{confidence_delta, dssim};
use diva_models::{Architecture, ModelCfg};
use diva_nn::train::{evaluate, train_classifier, TrainCfg};
use diva_nn::Network;
use diva_par::supervise::SupervisePolicy;
use diva_quant::{Int8Engine, QatNetwork, QuantCfg};

use rand::{rngs::StdRng, SeedableRng};

/// How big the experiments run. `standard()` reproduces the shapes in
/// EXPERIMENTS.md in a few minutes per architecture; `quick()` is for smoke
/// tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Training images (the paper uses 20,000).
    pub train_n: usize,
    /// Validation pool to select attack sets from (the paper's 30,000).
    pub val_pool_n: usize,
    /// Attacker-held images for surrogate distillation (the paper's 12,811).
    pub attacker_n: usize,
    /// Attack-set size cap per class (the paper selects 3 per class).
    pub per_class_val: usize,
    /// fp32 training configuration.
    pub train_cfg: TrainCfg,
    /// QAT fine-tuning configuration (the paper runs 2 epochs: "more epochs
    /// do not improve accuracy but worsen the stability").
    pub qat_cfg: TrainCfg,
    /// Model size configuration.
    pub model_cfg: ModelCfg,
    /// Dataset difficulty knobs.
    pub data_cfg: ImagenetCfg,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The default experiment scale used for EXPERIMENTS.md.
    pub fn standard() -> Self {
        ExperimentScale {
            train_n: 2048,
            val_pool_n: 1024,
            attacker_n: 512,
            per_class_val: 10,
            train_cfg: TrainCfg {
                epochs: 20,
                batch_size: 32,
                lr: 0.03,
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            qat_cfg: TrainCfg {
                epochs: 2,
                batch_size: 32,
                lr: 0.004,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            model_cfg: ModelCfg::standard(diva_data::imagenet::NUM_CLASSES),
            // Difficulty tuned so trained models land in the paper's
            // accuracy band (~65-75%) with single-digit instability — the
            // regime where the quantization-divergence attack surface exists.
            data_cfg: ImagenetCfg {
                noise: 0.16,
                color_jitter: 0.30,
                ..ImagenetCfg::default()
            },
            seed: 2022,
        }
    }

    /// A much smaller scale for smoke tests and CI: easier data, shorter
    /// training — victims reach moderate accuracy in ~1 minute each.
    pub fn quick() -> Self {
        ExperimentScale {
            train_n: 640,
            val_pool_n: 256,
            attacker_n: 128,
            per_class_val: 3,
            train_cfg: TrainCfg {
                epochs: 10,
                batch_size: 32,
                lr: 0.03,
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            qat_cfg: TrainCfg {
                epochs: 1,
                batch_size: 32,
                lr: 0.004,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            model_cfg: ModelCfg::standard(diva_data::imagenet::NUM_CLASSES),
            data_cfg: ImagenetCfg::default(),
            seed: 2022,
        }
    }
}

/// A fully prepared victim: the original model, its QAT adaptation, the
/// deployed int8 engine, and the data splits used around them.
#[derive(Debug, Clone)]
pub struct VictimModels {
    /// Architecture family.
    pub arch: Architecture,
    /// The original full-precision model (the "server" model).
    pub original: Network,
    /// The differentiable adapted model (fake-quant, QAT-fine-tuned).
    pub qat: QatNetwork,
    /// The deployed integer engine (the "edge" model).
    pub engine: Int8Engine,
    /// Victim training data.
    pub train: Dataset,
    /// Validation pool (disjoint from training by seed).
    pub val_pool: Dataset,
    /// Attacker-held data, disjoint from the victim's training data
    /// (the paper draws surrogate-training images from a disjoint split).
    pub attacker: Dataset,
    /// Accuracy of the original model on the validation pool.
    pub original_acc: f32,
    /// Accuracy of the QAT model on the validation pool.
    pub qat_acc: f32,
}

/// Trains an original model and adapts it, mirroring §5.1's model
/// generation. Deterministic given `scale.seed`.
pub fn prepare_victim(arch: Architecture, scale: &ExperimentScale) -> VictimModels {
    let _span = diva_trace::span(1, "bench.prepare_victim");
    let mut rng = StdRng::seed_from_u64(scale.seed ^ arch_seed(arch));
    let (train, val_pool, attacker) = datasets(scale);

    let mut original = arch.build(&scale.model_cfg, &mut rng);
    // Two-phase schedule: full rate for ~70% of the epochs, then a 4x decay
    // to converge (a stand-in for the paper's pretrained + finetune recipe).
    let phase1 = TrainCfg {
        epochs: (scale.train_cfg.epochs * 7) / 10,
        ..scale.train_cfg.clone()
    };
    let phase2 = TrainCfg {
        epochs: scale.train_cfg.epochs - phase1.epochs,
        lr: scale.train_cfg.lr / 4.0,
        ..scale.train_cfg.clone()
    };
    train_classifier(
        &mut original,
        &train.images,
        &train.labels,
        &phase1,
        &mut rng,
    );
    train_classifier(
        &mut original,
        &train.images,
        &train.labels,
        &phase2,
        &mut rng,
    );

    // Adapt: calibrate on training data, then QAT fine-tune.
    let mut qat = QatNetwork::new(original.clone(), QuantCfg::default());
    qat.calibrate(&train.images);
    qat.train_qat(&train.images, &train.labels, &scale.qat_cfg, &mut rng);
    let engine = Int8Engine::from_qat(&qat);

    let original_acc = evaluate(&original, &val_pool.images, &val_pool.labels);
    let qat_acc = evaluate(&qat, &val_pool.images, &val_pool.labels);
    VictimModels {
        arch,
        original,
        qat,
        engine,
        train,
        val_pool,
        attacker,
        original_acc,
        qat_acc,
    }
}

fn arch_seed(arch: Architecture) -> u64 {
    match arch {
        Architecture::ResNet => 0x1000,
        Architecture::MobileNet => 0x2000,
        Architecture::DenseNet => 0x3000,
    }
}

/// The three deterministic data splits of a scale. Cheap relative to
/// training, so checkpoints persist only models and regenerate data.
/// The three seeded splits `(train, val_pool, attacker)` for a scale —
/// pure in `scale`, so a remote attack client regenerates exactly the
/// images the `repro serve` daemon prepared its models on.
pub fn datasets(scale: &ExperimentScale) -> (Dataset, Dataset, Dataset) {
    let train = synth_imagenet(scale.train_n, &scale.data_cfg, scale.seed.wrapping_add(1));
    let val_pool = synth_imagenet(
        scale.val_pool_n,
        &scale.data_cfg,
        scale.seed.wrapping_add(2),
    );
    let attacker = synth_imagenet(
        scale.attacker_n,
        &scale.data_cfg,
        scale.seed.wrapping_add(3),
    );
    (train, val_pool, attacker)
}

impl VictimModels {
    /// Selects the attack set: per-class samples from the validation pool
    /// correctly classified by both the original and the adapted models
    /// (§5.1's "correctly classified by all relevant models").
    pub fn attack_set(&self, per_class: usize) -> Dataset {
        select_validation(&self.val_pool, &[&self.original, &self.qat], per_class)
    }
}

thread_local! {
    static CURRENT_EXPERIMENT: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// RAII label naming the experiment currently running on this thread.
///
/// While held, suite-level telemetry that aggregates across experiments
/// (today: `bench.attack_gen_seconds`) is *also* recorded into a
/// per-experiment histogram (`bench.attack_gen_seconds.<id>`), so
/// `repro profile` can report attack-generation p50/p95 per experiment
/// from `metrics.json` alone. The `repro` driver enters one scope per
/// subcommand; scopes nest and drop restores the outer one.
pub struct ExperimentScope {
    prev: Option<String>,
}

impl ExperimentScope {
    /// Labels this thread's suite telemetry with the experiment `id`.
    pub fn enter(id: &str) -> ExperimentScope {
        let prev = CURRENT_EXPERIMENT.with(|s| s.replace(Some(id.to_string())));
        ExperimentScope { prev }
    }
}

impl Drop for ExperimentScope {
    fn drop(&mut self) {
        CURRENT_EXPERIMENT.with(|s| *s.borrow_mut() = self.prev.take());
    }
}

/// The experiment id labelling the calling thread, if any.
pub fn current_experiment() -> Option<String> {
    CURRENT_EXPERIMENT.with(|s| s.borrow().clone())
}

/// The attacks compared across the evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackKind {
    /// PGD on the adapted model (the main baseline).
    Pgd,
    /// Momentum PGD (§5.4), μ = 0.5.
    MomentumPgd,
    /// CW-L∞ inside the PGD framework (§5.4).
    Cw,
    /// Whitebox DIVA with balance constant `c` (§4.2).
    DivaWhitebox(f32),
    /// Semi-blackbox DIVA (§4.3) — requires prepared surrogates.
    DivaSemiBlackbox(f32),
    /// Blackbox DIVA (§4.4) — requires prepared surrogates.
    DivaBlackbox(f32),
}

impl AttackKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            AttackKind::Pgd => "PGD".into(),
            AttackKind::MomentumPgd => "Momentum PGD".into(),
            AttackKind::Cw => "CW".into(),
            AttackKind::DivaWhitebox(_) => "DIVA (whitebox)".into(),
            AttackKind::DivaSemiBlackbox(_) => "DIVA (semi-blackbox)".into(),
            AttackKind::DivaBlackbox(_) => "DIVA (blackbox)".into(),
        }
    }
}

/// One row of the attack matrix: aggregate success plus the §5.1 metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackRow {
    /// Aggregated success counts against (original, adapted).
    pub counts: SuccessCounts,
    /// Mean confidence delta on the attacked images.
    pub confidence_delta: f32,
    /// Maximum DSSIM between natural and attacked images.
    pub max_dssim: f32,
    /// Wall-clock seconds spent generating the adversarial batch.
    pub gen_seconds: f64,
}

/// Surrogate bundles for the black-box settings (expensive; build once per
/// victim and reuse across rows).
#[derive(Debug, Clone)]
pub struct Surrogates {
    /// Semi-blackbox assets (§4.3).
    pub semi: SemiBlackboxAssets,
    /// Blackbox assets (§4.4).
    pub black: BlackboxAssets,
}

/// Builds both surrogate bundles from the deployed engine and attacker data.
pub fn prepare_surrogates(victim: &VictimModels, scale: &ExperimentScale) -> Surrogates {
    let _span = diva_trace::span(1, "bench.prepare_surrogates");
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xBB);
    let distill_cfg = DistillCfg::default();
    let surrogate_train = TrainCfg {
        epochs: 6,
        batch_size: 32,
        lr: 0.01,
        momentum: 0.9,
        weight_decay: 0.0,
    };
    let semi = prepare_semi_blackbox(
        &victim.engine,
        victim.original.graph(),
        &victim.attacker.images,
        &distill_cfg,
        &surrogate_train,
        &mut rng,
    );
    let mut fresh_rng = StdRng::seed_from_u64(scale.seed ^ 0xBC);
    let fresh = victim.arch.build(&scale.model_cfg, &mut fresh_rng);
    let black = prepare_blackbox(
        &victim.engine,
        fresh,
        &victim.attacker.images,
        &distill_cfg,
        &surrogate_train,
        QuantCfg::default(),
        &mut fresh_rng,
    );
    Surrogates { semi, black }
}

/// Checkpointed victim state: the trained models plus a fingerprint of the
/// `(arch, scale)` they were built from. The data splits are regenerated
/// from the seed on resume instead of being persisted.
#[derive(serde::Serialize, serde::Deserialize)]
struct VictimCkpt {
    fingerprint: u64,
    original: Network,
    qat: QatNetwork,
    engine: Int8Engine,
    original_acc: f32,
    qat_acc: f32,
}

/// Checkpointed surrogate bundles, fingerprinted like [`VictimCkpt`].
#[derive(serde::Serialize, serde::Deserialize)]
struct SurrogateCkpt {
    fingerprint: u64,
    semi: SemiBlackboxAssets,
    black: BlackboxAssets,
}

fn scale_fingerprint(arch: Architecture, scale: &ExperimentScale) -> u64 {
    diva_fault::fnv1a64(format!("{arch:?}|{scale:?}").as_bytes())
}

fn reject_ckpt(path: &std::path::Path, why: &str) {
    diva_trace::counter!("bench.ckpt_rejected", 1);
    diva_trace::event!(
        1,
        "bench.ckpt_rejected",
        path = path.display().to_string(),
        reason = why.to_string(),
    );
    // Every rejection under DIVA_RESUME is followed by a silent rebuild of
    // the phase; make the rebuild itself visible in trace artifacts.
    diva_trace::counter!("ckpt.rebuild", 1);
    diva_trace::event!(
        1,
        "ckpt.rebuild",
        path = path.display().to_string(),
        reason = why.to_string(),
    );
}

/// Reads and verifies a checkpoint payload, expecting `fingerprint`.
/// Returns `None` (silently for a missing file, with a `bench.ckpt_rejected`
/// trace event otherwise) when the checkpoint cannot be used, in which case
/// the caller rebuilds and rewrites it.
fn load_ckpt_payload(path: &std::path::Path) -> Option<Vec<u8>> {
    match diva_fault::ckpt::read_verified(path) {
        Ok(p) => Some(p),
        Err(diva_fault::ckpt::CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            reject_ckpt(path, &e.to_string());
            None
        }
    }
}

fn store_ckpt(path: &std::path::Path, payload: &[u8]) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match diva_fault::ckpt::write_atomic(path, payload) {
        Ok(()) => {
            diva_trace::counter!("bench.ckpt_written", 1);
            diva_trace::event!(
                1,
                "bench.ckpt_written",
                path = path.display().to_string(),
                bytes = payload.len(),
            );
        }
        Err(e) => {
            // A failed checkpoint write must not fail the experiment.
            diva_trace::event!(
                1,
                "bench.ckpt_write_failed",
                path = path.display().to_string(),
                error = e.to_string(),
            );
        }
    }
}

/// [`prepare_victim`] with phase-level checkpoint/resume. With `ckpt_dir`
/// set, a valid checkpoint whose fingerprint matches `(arch, scale)` and
/// whose engine passes [`Int8Engine::validate`] skips the (re)training;
/// otherwise the victim is rebuilt and the checkpoint rewritten. Returns
/// the victim and whether it was resumed from disk.
pub fn prepare_victim_resumable(
    arch: Architecture,
    scale: &ExperimentScale,
    ckpt_dir: Option<&std::path::Path>,
) -> (VictimModels, bool) {
    let Some(dir) = ckpt_dir else {
        return (prepare_victim(arch, scale), false);
    };
    let path = dir.join(format!("victim-{arch:?}.ckpt"));
    let fingerprint = scale_fingerprint(arch, scale);
    if let Some(payload) = load_ckpt_payload(&path) {
        match serde_json::from_slice::<VictimCkpt>(&payload) {
            Ok(ck) if ck.fingerprint != fingerprint => {
                reject_ckpt(&path, "fingerprint mismatch (arch or scale changed)")
            }
            Ok(ck) => match ck.engine.validate() {
                Ok(()) => {
                    let (train, val_pool, attacker) = datasets(scale);
                    diva_trace::counter!("bench.ckpt_resumed", 1);
                    diva_trace::event!(
                        1,
                        "bench.ckpt_resumed",
                        path = path.display().to_string(),
                        phase = "victim",
                    );
                    return (
                        VictimModels {
                            arch,
                            original: ck.original,
                            qat: ck.qat,
                            engine: ck.engine,
                            train,
                            val_pool,
                            attacker,
                            original_acc: ck.original_acc,
                            qat_acc: ck.qat_acc,
                        },
                        true,
                    );
                }
                Err(e) => reject_ckpt(&path, &format!("engine validation: {e}")),
            },
            Err(e) => reject_ckpt(&path, &format!("payload parse: {e}")),
        }
    }
    let victim = prepare_victim(arch, scale);
    let ck = VictimCkpt {
        fingerprint,
        original: victim.original.clone(),
        qat: victim.qat.clone(),
        engine: victim.engine.clone(),
        original_acc: victim.original_acc,
        qat_acc: victim.qat_acc,
    };
    if let Ok(payload) = serde_json::to_vec(&ck) {
        store_ckpt(&path, &payload);
    }
    (victim, false)
}

/// [`prepare_surrogates`] with the same checkpoint/resume contract as
/// [`prepare_victim_resumable`].
pub fn prepare_surrogates_resumable(
    victim: &VictimModels,
    scale: &ExperimentScale,
    ckpt_dir: Option<&std::path::Path>,
) -> (Surrogates, bool) {
    let Some(dir) = ckpt_dir else {
        return (prepare_surrogates(victim, scale), false);
    };
    let path = dir.join(format!("surrogates-{:?}.ckpt", victim.arch));
    let fingerprint = scale_fingerprint(victim.arch, scale);
    if let Some(payload) = load_ckpt_payload(&path) {
        match serde_json::from_slice::<SurrogateCkpt>(&payload) {
            Ok(ck) if ck.fingerprint != fingerprint => {
                reject_ckpt(&path, "fingerprint mismatch (arch or scale changed)")
            }
            Ok(ck) => {
                diva_trace::counter!("bench.ckpt_resumed", 1);
                diva_trace::event!(
                    1,
                    "bench.ckpt_resumed",
                    path = path.display().to_string(),
                    phase = "surrogates",
                );
                return (
                    Surrogates {
                        semi: ck.semi,
                        black: ck.black,
                    },
                    true,
                );
            }
            Err(e) => reject_ckpt(&path, &format!("payload parse: {e}")),
        }
    }
    let surrogates = prepare_surrogates(victim, scale);
    let ck = SurrogateCkpt {
        fingerprint,
        semi: surrogates.semi.clone(),
        black: surrogates.black.clone(),
    };
    if let Ok(payload) = serde_json::to_vec(&ck) {
        store_ckpt(&path, &payload);
    }
    (surrogates, false)
}

/// A recoverable experiment-plumbing error, surfaced through the suite
/// result instead of panicking inside a worker fan-out.
#[derive(Debug, Clone, PartialEq)]
pub enum SuiteError {
    /// A black-box attack kind was requested without prepared surrogates.
    MissingSurrogates(AttackKind),
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::MissingSurrogates(kind) => write!(
                f,
                "{} requires prepared surrogates (prepare_surrogates) but none were supplied",
                kind.name()
            ),
        }
    }
}

impl std::error::Error for SuiteError {}

/// Generates the adversarial batch for `kind` and evaluates it against the
/// true (original, adapted) pair.
///
/// # Errors
///
/// Returns [`SuiteError::MissingSurrogates`] if a black-box kind is
/// requested without `surrogates`.
pub fn attack_matrix_row(
    victim: &VictimModels,
    attack_set: &Dataset,
    kind: AttackKind,
    cfg: &AttackCfg,
    surrogates: Option<&Surrogates>,
) -> Result<AttackRow, SuiteError> {
    Ok(attack_matrix_row_adv(victim, attack_set, kind, cfg, surrogates)?.0)
}

/// [`attack_matrix_row`] that also returns the adversarial batch, for
/// experiments that inspect individual attacked images.
///
/// # Errors
///
/// Returns [`SuiteError::MissingSurrogates`] if a black-box kind is
/// requested without `surrogates` (see [`attack_matrix_row`]).
pub fn attack_matrix_row_adv(
    victim: &VictimModels,
    attack_set: &Dataset,
    kind: AttackKind,
    cfg: &AttackCfg,
    surrogates: Option<&Surrogates>,
) -> Result<(AttackRow, diva_tensor::Tensor), SuiteError> {
    if matches!(
        kind,
        AttackKind::DivaSemiBlackbox(_) | AttackKind::DivaBlackbox(_)
    ) && surrogates.is_none()
    {
        return Err(SuiteError::MissingSurrogates(kind));
    }
    let x = &attack_set.images;
    let labels = &attack_set.labels;
    // When tracing is on, watch the deployed engine's prediction flip
    // step-by-step; the per-image first-flip steps then ride through
    // `SuccessCounts` (mean_first_flip_step).
    let watch = if diva_trace::enabled(1) {
        Some(&victim.engine)
    } else {
        None
    };
    let started = std::time::Instant::now();
    let kind_name = kind.name();
    // Item-granularity resume: under DIVA_RESUME every completed image is
    // checkpointed in an ItemStore keyed by a fingerprint of everything
    // that determines its bytes (models, attack kind + config, labels,
    // natural images), so a cancelled or killed matrix run recomputes only
    // the images it never finished.
    let store = crate::experiments::resume_ckpt_dir().map(|dir| {
        let mut key = format!(
            "{:?}|{:08x}|{:08x}|{kind_name}|{cfg:?}|{labels:?}",
            victim.arch,
            victim.original_acc.to_bits(),
            victim.qat_acc.to_bits(),
        )
        .into_bytes();
        for &v in x.data() {
            key.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let fp = diva_fault::fnv1a64(&key);
        let slug: String = kind_name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        ItemStore::new(dir.join("items").join(format!("{slug}-{fp:016x}")), fp)
    });
    // Fan out one trajectory per image (diva-par; sized by DIVA_JOBS) under
    // the env supervision policy (DIVA_DEADLINE_MS / DIVA_RETRY). Results
    // merge in image order, so counts/flips/counters match serial.
    let gen = par_attack_images_supervised(
        &kind_name,
        x,
        labels,
        watch,
        &SupervisePolicy::from_env(),
        store.as_ref(),
        |_i, xi, yi, hook| match kind {
            AttackKind::Pgd => pgd_attack_traced(&victim.qat, xi, yi, cfg, hook),
            AttackKind::MomentumPgd => momentum_pgd_attack_traced(&victim.qat, xi, yi, cfg, hook),
            AttackKind::Cw => cw_attack_traced(&victim.qat, xi, yi, cfg, hook),
            AttackKind::DivaWhitebox(c) => {
                diva_attack_traced(&victim.original, &victim.qat, xi, yi, c, cfg, hook)
            }
            AttackKind::DivaSemiBlackbox(c) => {
                let s = surrogates.expect("checked before the fan-out");
                diva_attack_traced(
                    &s.semi.surrogate_original,
                    &s.semi.recovered_adapted,
                    xi,
                    yi,
                    c,
                    cfg,
                    hook,
                )
            }
            AttackKind::DivaBlackbox(c) => {
                let s = surrogates.expect("checked before the fan-out");
                diva_attack_traced(
                    &s.black.surrogate_original,
                    &s.black.surrogate_adapted,
                    xi,
                    yi,
                    c,
                    cfg,
                    hook,
                )
            }
        },
    );
    let adv = gen.adv;
    let gen_seconds = started.elapsed().as_secs_f64();
    diva_trace::record_secs(1, "bench.attack_gen_seconds", gen_seconds);
    if let Some(exp) = current_experiment() {
        diva_trace::record_secs(1, &format!("bench.attack_gen_seconds.{exp}"), gen_seconds);
    }
    diva_trace::event!(
        1,
        "bench.attack_generated",
        kind = kind_name,
        images = attack_set.len(),
        jobs = diva_par::jobs().min(attack_set.len().max(1)),
        gen_seconds = gen_seconds,
    );
    let outcomes = if gen.tracked {
        evaluate_outcomes_with_flips(
            &victim.original,
            &victim.qat,
            &adv,
            labels,
            &gen.first_flips,
        )
    } else {
        evaluate_outcomes(&victim.original, &victim.qat, &adv, labels)
    };
    // Samples whose trajectory did not complete (worker panic, divergence
    // budget, deadline, cancellation, quarantine) are bucketed explicitly
    // by their terminal status instead of polluting the success metrics.
    let counts: SuccessCounts = outcomes
        .into_iter()
        .zip(&gen.statuses)
        .map(|(o, &s)| o.with_status(s))
        .collect();
    let cdelta = confidence_delta(&victim.original, &victim.qat, &adv, labels);
    let max_dssim = (0..attack_set.len())
        .map(|i| dssim(&x.index_batch(i), &adv.index_batch(i)))
        .fold(0.0f32, f32::max);
    Ok((
        AttackRow {
            counts,
            confidence_delta: cdelta,
            max_dssim,
            gen_seconds,
        },
        adv,
    ))
}

/// Formats a percentage for table output.
pub fn pct(x: f32) -> String {
    format!("{:5.1}%", 100.0 * x)
}
