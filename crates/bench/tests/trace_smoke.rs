//! End-to-end check of the tracing pipeline: `repro smoke` under
//! `DIVA_TRACE=1` must write a parseable `metrics.json` covering every
//! instrumented layer, and under `DIVA_TRACE=0` must write nothing. Trace
//! artifacts go to a per-test directory via `DIVA_TRACE_DIR`, so this suite
//! never races concurrent invocations on `trace.jsonl`/`metrics.json`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use diva_trace::Json;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diva-trace-smoke-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_repro(cwd: &Path, trace_level: &str) {
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("smoke")
        .current_dir(cwd)
        .env("DIVA_TRACE", trace_level)
        .env("DIVA_TRACE_DIR", cwd.join("trace"))
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro smoke failed: {status}");
}

fn span_count(metrics: &Json, span: &str) -> u64 {
    metrics
        .get("spans")
        .and_then(|s| s.get(span))
        .and_then(|s| s.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn smoke_run_emits_metrics_for_every_instrumented_layer() {
    let dir = scratch_dir("on");
    run_repro(&dir, "1");

    let path = dir.join("trace/metrics.json");
    let raw = fs::read_to_string(&path).expect("metrics.json written");
    let metrics = diva_trace::json::parse(&raw).expect("metrics.json parses");

    // One span per instrumented layer: fp32 executor, attack loop, int8
    // engine, experiment harness.
    for span in [
        "nn.forward",
        "nn.fwd.conv2d",
        "attack.run",
        "attack.step",
        "quant.engine.run",
        "experiment.smoke",
    ] {
        assert!(
            span_count(&metrics, span) > 0,
            "span `{span}` missing from {}:\n{raw}",
            path.display()
        );
    }
    // Per-span summaries carry quantiles.
    let step = metrics
        .get("spans")
        .and_then(|s| s.get("attack.step"))
        .expect("attack.step summary");
    for key in ["p50_ns", "p95_ns", "max_ns"] {
        assert!(
            step.get(key).and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0,
            "attack.step missing {key}"
        );
    }
    // The attack-step counter and the events file ride along.
    let steps = metrics
        .get("counters")
        .and_then(|c| c.get("attack.steps"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(steps > 0, "attack.steps counter missing:\n{raw}");
    assert!(
        dir.join("trace/trace.jsonl").exists(),
        "trace.jsonl missing"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn disabled_tracing_writes_no_artifacts() {
    let dir = scratch_dir("off");
    run_repro(&dir, "0");

    assert!(
        !dir.join("trace/metrics.json").exists(),
        "metrics.json written despite DIVA_TRACE=0"
    );
    assert!(
        !dir.join("trace/trace.jsonl").exists(),
        "trace.jsonl written despite DIVA_TRACE=0"
    );
    // The report itself is still archived.
    assert!(
        dir.join("repro_out/smoke.txt").exists(),
        "smoke report missing"
    );

    let _ = fs::remove_dir_all(&dir);
}
