//! The diva-par determinism contract, end to end: `repro smoke` must
//! produce byte-identical output and identical `metrics.json` counter
//! totals under `DIVA_JOBS=1` (exact serial fallback) and `DIVA_JOBS=4`
//! (threaded fan-out). See DESIGN.md §7 for the fixed-order-reduction rule
//! that makes this hold.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use diva_trace::Json;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diva-par-det-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `repro smoke` with the given job count, tracing into
/// `<dir>/trace`, and returns its stdout bytes.
fn run_smoke(dir: &Path, jobs: &str) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("smoke")
        .current_dir(dir)
        .env("DIVA_TRACE", "1")
        .env("DIVA_TRACE_DIR", dir.join("trace"))
        .env("DIVA_JOBS", jobs)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro smoke failed under DIVA_JOBS={jobs}: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Counter totals from a run's `metrics.json`.
fn counters(dir: &Path) -> BTreeMap<String, u64> {
    let raw = fs::read_to_string(dir.join("trace/metrics.json")).expect("metrics.json written");
    let metrics = diva_trace::json::parse(&raw).expect("metrics.json parses");
    let Some(Json::Obj(map)) = metrics.get("counters") else {
        panic!("metrics.json missing counters object:\n{raw}");
    };
    map.iter()
        .map(|(k, v)| (k.clone(), v.as_u64().expect("counter is integral")))
        .collect()
}

#[test]
fn smoke_is_byte_identical_across_job_counts() {
    let serial_dir = scratch_dir("serial");
    let parallel_dir = scratch_dir("parallel");

    let serial_stdout = run_smoke(&serial_dir, "1");
    let parallel_stdout = run_smoke(&parallel_dir, "4");

    assert!(
        !serial_stdout.is_empty(),
        "smoke produced no output under DIVA_JOBS=1"
    );
    assert_eq!(
        serial_stdout,
        parallel_stdout,
        "smoke output differs between DIVA_JOBS=1 and DIVA_JOBS=4:\n--- serial ---\n{}\n--- parallel ---\n{}",
        String::from_utf8_lossy(&serial_stdout),
        String::from_utf8_lossy(&parallel_stdout)
    );

    let serial_counters = counters(&serial_dir);
    let parallel_counters = counters(&parallel_dir);
    assert!(
        serial_counters.contains_key("attack.steps"),
        "expected attack.steps among counters: {serial_counters:?}"
    );
    assert_eq!(
        serial_counters, parallel_counters,
        "metrics.json counter totals differ between job counts"
    );

    let _ = fs::remove_dir_all(&serial_dir);
    let _ = fs::remove_dir_all(&parallel_dir);
}

/// The fixed-order-reduction rule extended to *intra-op* tiles (DESIGN.md
/// §7/§9.1): large GEMMs fan their jc/ic tile loops over the diva-par pool,
/// and the result must be byte-identical at any job count — through the
/// public tensor ops (pack cache engaged), and also when the GEMM runs
/// *inside* an outer fan-out, where intra-op threading must inline rather
/// than nest.
#[test]
fn intra_op_gemm_tiles_are_byte_identical_across_job_counts() {
    use diva_tensor::{ops, Tensor};

    let _lock = diva_fault::test_lock(); // set_jobs is process-global

    // Deterministic data without rand: a 32-bit LCG.
    let mut state = 0x1234_5678u32;
    let mut unit = move || {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        (state >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
    };
    // Tall dense shape → ic (row-slab) fan-out; wide matmul → jc (column)
    // fan-out. Both cross the 2²¹-muladd threading threshold.
    let x = Tensor::from_vec((0..600 * 300).map(|_| unit()).collect(), &[600, 300]);
    let w = Tensor::from_vec((0..256 * 300).map(|_| unit()).collect(), &[256, 300]);
    let bias = Tensor::from_vec((0..256).map(|_| unit()).collect(), &[256]);
    let a = Tensor::from_vec((0..80 * 120).map(|_| unit()).collect(), &[80, 120]);
    let b = Tensor::from_vec((0..120 * 1100).map(|_| unit()).collect(), &[120, 1100]);

    let run = |jobs: usize| {
        diva_par::set_jobs(jobs);
        let dense = ops::dense_forward(&x, &w, &bias).unwrap();
        let wide = ops::matmul(&a, &b).unwrap();
        // Same GEMMs from inside a worker: intra-op threading must fall
        // back inline (no nested fan-out) and still produce the same bytes.
        let nested = diva_par::par_map_indexed(2, |_| {
            let d = ops::dense_forward(&x, &w, &bias).unwrap();
            let m = ops::matmul(&a, &b).unwrap();
            (
                d.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            )
        });
        diva_par::set_jobs(0);
        (
            dense.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            wide.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            nested,
        )
    };

    let (dense1, wide1, nested1) = run(1);
    for jobs in [2, 4] {
        let (dense_j, wide_j, nested_j) = run(jobs);
        assert_eq!(dense1, dense_j, "ic fan-out diverged at jobs={jobs}");
        assert_eq!(wide1, wide_j, "jc fan-out diverged at jobs={jobs}");
        assert_eq!(nested1, nested_j, "nested GEMM diverged at jobs={jobs}");
    }
    for (d, m) in &nested1 {
        assert_eq!(&dense1, d, "worker-inlined dense differs from top-level");
        assert_eq!(&wide1, m, "worker-inlined matmul differs from top-level");
    }
}

/// The determinism contract under *supervision*: when some items time out,
/// retry, or are cancelled mid-batch, every item that completes `Ok` is
/// still byte-identical across `DIVA_JOBS` counts — and identical to an
/// unsupervised serial run. Supervision checkpoints only read state; they
/// never perturb the math (DESIGN.md §10).
#[test]
fn ok_items_stay_byte_identical_under_supervision() {
    use diva_core::attack::{pgd_attack_traced, AttackCfg, StepInfo};
    use diva_core::parallel::{par_attack_images_supervised, ParAttackOutput};
    use diva_models::{Architecture, ModelCfg};
    use diva_nn::Infer;
    use diva_par::supervise::{JobStatus, RetryPolicy, SupervisePolicy};
    use diva_quant::{QatNetwork, QuantCfg};
    use diva_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    let _lock = diva_fault::test_lock(); // set_plan / set_jobs are global
    let mut rng = StdRng::seed_from_u64(61);
    let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
    let per: usize = 3 * 8 * 8;
    let samples: Vec<Tensor> = (0..8)
        .map(|_| {
            Tensor::from_vec(
                (0..per).map(|_| rng.gen_range(0.0..1.0)).collect(),
                &[3, 8, 8],
            )
        })
        .collect();
    let x = Tensor::stack(&samples);
    let mut qat = QatNetwork::new(net.clone(), QuantCfg::default());
    qat.calibrate(&x);
    let labels = net.predict(&x);
    let cfg = AttackCfg::with_steps(3);
    let attack = |_: usize, xi: &Tensor, yi: &[usize], hook: &mut dyn FnMut(&StepInfo)| {
        pgd_attack_traced(&qat, xi, yi, &cfg, hook)
    };
    let run = |jobs: usize, policy: &SupervisePolicy| -> ParAttackOutput {
        diva_par::set_jobs(jobs);
        let out = par_attack_images_supervised(
            "PGD",
            &x,
            &labels,
            None::<&QatNetwork>,
            policy,
            None,
            attack,
        );
        diva_par::set_jobs(0);
        out
    };
    let baseline = run(1, &SupervisePolicy::default());
    assert!(baseline.statuses.iter().all(|s| s.is_ok()));
    let assert_ok_items_match = |out: &ParAttackOutput, scenario: &str| {
        for (i, s) in out.statuses.iter().enumerate() {
            if s.is_ok() {
                assert_eq!(
                    out.adv.index_batch(i).data(),
                    baseline.adv.index_batch(i).data(),
                    "[{scenario}] Ok item {i} must match the unsupervised serial run"
                );
            } else {
                assert_eq!(
                    out.adv.index_batch(i).data(),
                    x.index_batch(i).data(),
                    "[{scenario}] non-Ok item {i} must carry the natural image"
                );
            }
        }
    };

    // Scenario 1: one item stalls and times out mid-batch.
    diva_fault::set_plan(Some(
        diva_fault::FaultPlan::parse("worker-stall:item=2,ms=30000").unwrap(),
    ));
    let stall_policy = SupervisePolicy {
        item_deadline: Some(Duration::from_millis(250)),
        ..SupervisePolicy::default()
    };
    for jobs in [1, 4] {
        let out = run(jobs, &stall_policy);
        assert_eq!(out.statuses[2], JobStatus::TimedOut, "jobs={jobs}");
        assert_ok_items_match(&out, "timeout");
    }
    diva_fault::set_plan(None);

    // Scenario 2: one item panics on every retry and is quarantined.
    diva_fault::set_plan(Some(
        diva_fault::FaultPlan::parse("worker-panic:item=5").unwrap(),
    ));
    let retry_policy = SupervisePolicy {
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 1,
            seed: 9,
        },
        ..SupervisePolicy::default()
    };
    for jobs in [1, 4] {
        let out = run(jobs, &retry_policy);
        assert_eq!(out.statuses[5], JobStatus::Quarantined, "jobs={jobs}");
        assert_ok_items_match(&out, "retry");
    }
    diva_fault::set_plan(None);

    // Scenario 3: the run is cancelled mid-batch (item 0 cancels after it
    // finishes). Which later items complete is schedule-dependent, but
    // every item that does complete must still match the baseline.
    for jobs in [1, 4] {
        let policy = SupervisePolicy::default();
        let token = policy.cancel.clone();
        diva_par::set_jobs(jobs);
        let out = par_attack_images_supervised(
            "PGD",
            &x,
            &labels,
            None::<&QatNetwork>,
            &policy,
            None,
            |i, xi: &Tensor, yi: &[usize], hook: &mut dyn FnMut(&StepInfo)| {
                let adv = pgd_attack_traced(&qat, xi, yi, &cfg, hook);
                if i == 0 {
                    token.cancel();
                }
                adv
            },
        );
        diva_par::set_jobs(0);
        assert_eq!(
            out.statuses[0],
            JobStatus::Ok,
            "completion beats cancellation (jobs={jobs})"
        );
        assert!(
            out.statuses.contains(&JobStatus::Cancelled),
            "later items must observe the cancel (jobs={jobs})"
        );
        assert_ok_items_match(&out, "cancel");
    }
}
