//! The diva-par determinism contract, end to end: `repro smoke` must
//! produce byte-identical output and identical `metrics.json` counter
//! totals under `DIVA_JOBS=1` (exact serial fallback) and `DIVA_JOBS=4`
//! (threaded fan-out). See DESIGN.md §7 for the fixed-order-reduction rule
//! that makes this hold.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use diva_trace::Json;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diva-par-det-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `repro smoke` with the given job count, tracing into
/// `<dir>/trace`, and returns its stdout bytes.
fn run_smoke(dir: &Path, jobs: &str) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("smoke")
        .current_dir(dir)
        .env("DIVA_TRACE", "1")
        .env("DIVA_TRACE_DIR", dir.join("trace"))
        .env("DIVA_JOBS", jobs)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro smoke failed under DIVA_JOBS={jobs}: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Counter totals from a run's `metrics.json`.
fn counters(dir: &Path) -> BTreeMap<String, u64> {
    let raw = fs::read_to_string(dir.join("trace/metrics.json")).expect("metrics.json written");
    let metrics = diva_trace::json::parse(&raw).expect("metrics.json parses");
    let Some(Json::Obj(map)) = metrics.get("counters") else {
        panic!("metrics.json missing counters object:\n{raw}");
    };
    map.iter()
        .map(|(k, v)| (k.clone(), v.as_u64().expect("counter is integral")))
        .collect()
}

#[test]
fn smoke_is_byte_identical_across_job_counts() {
    let serial_dir = scratch_dir("serial");
    let parallel_dir = scratch_dir("parallel");

    let serial_stdout = run_smoke(&serial_dir, "1");
    let parallel_stdout = run_smoke(&parallel_dir, "4");

    assert!(
        !serial_stdout.is_empty(),
        "smoke produced no output under DIVA_JOBS=1"
    );
    assert_eq!(
        serial_stdout,
        parallel_stdout,
        "smoke output differs between DIVA_JOBS=1 and DIVA_JOBS=4:\n--- serial ---\n{}\n--- parallel ---\n{}",
        String::from_utf8_lossy(&serial_stdout),
        String::from_utf8_lossy(&parallel_stdout)
    );

    let serial_counters = counters(&serial_dir);
    let parallel_counters = counters(&parallel_dir);
    assert!(
        serial_counters.contains_key("attack.steps"),
        "expected attack.steps among counters: {serial_counters:?}"
    );
    assert_eq!(
        serial_counters, parallel_counters,
        "metrics.json counter totals differ between job counts"
    );

    let _ = fs::remove_dir_all(&serial_dir);
    let _ = fs::remove_dir_all(&parallel_dir);
}
