//! Checkpoint/resume drills for the prepare phases: a second run reloads
//! the persisted victim instead of retraining, a corrupted checkpoint is
//! rejected (typed, not a panic) and transparently rebuilt, and a
//! fingerprint mismatch (changed scale) never resurrects stale state.

use diva_bench::suite::{prepare_surrogates_resumable, prepare_victim_resumable, ExperimentScale};
use diva_models::Architecture;
use diva_nn::train::TrainCfg;

fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        train_n: 160,
        val_pool_n: 128,
        attacker_n: 64,
        per_class_val: 2,
        train_cfg: TrainCfg {
            epochs: 2,
            batch_size: 32,
            lr: 0.03,
            momentum: 0.9,
            weight_decay: 1e-4,
        },
        qat_cfg: TrainCfg {
            epochs: 1,
            batch_size: 32,
            lr: 0.004,
            momentum: 0.9,
            weight_decay: 0.0,
        },
        ..ExperimentScale::quick()
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("diva_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn victim_checkpoint_resumes_rejects_corruption_and_rebuilds() {
    let scale = tiny_scale();
    let dir = scratch_dir("victim");
    let arch = Architecture::MobileNet;

    // First run builds and checkpoints.
    let (built, resumed) = prepare_victim_resumable(arch, &scale, Some(&dir));
    assert!(!resumed, "nothing to resume on the first run");
    let ckpt = dir.join(format!("victim-{arch:?}.ckpt"));
    assert!(ckpt.exists(), "first run must leave a checkpoint");

    // Second run resumes bit-identical model state (data splits are
    // regenerated from the seed, not persisted).
    let (reloaded, resumed) = prepare_victim_resumable(arch, &scale, Some(&dir));
    assert!(resumed, "second run must resume from the checkpoint");
    assert_eq!(reloaded.original.params(), built.original.params());
    assert_eq!(reloaded.original_acc, built.original_acc);
    assert_eq!(reloaded.qat_acc, built.qat_acc);
    assert_eq!(
        serde_json::to_string(&reloaded.engine).unwrap(),
        serde_json::to_string(&built.engine).unwrap(),
        "deployed engine must round-trip exactly (incl. its weight checksum)"
    );
    assert_eq!(reloaded.train.len(), built.train.len());

    // Corrupt a payload byte: the footer checksum must reject it and the
    // phase must rebuild (no panic, no half-loaded state) and re-seal a
    // valid checkpoint.
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&ckpt, &bytes).unwrap();
    let (rebuilt, resumed) = prepare_victim_resumable(arch, &scale, Some(&dir));
    assert!(!resumed, "a corrupt checkpoint must not be resumed");
    assert_eq!(rebuilt.original.params(), built.original.params());
    let (_, resumed) = prepare_victim_resumable(arch, &scale, Some(&dir));
    assert!(
        resumed,
        "the rebuild must have re-sealed a valid checkpoint"
    );

    // A different scale fingerprints differently: the stale checkpoint is
    // rejected instead of silently reusing the wrong models.
    let other = ExperimentScale {
        seed: scale.seed ^ 1,
        ..tiny_scale()
    };
    let (_, resumed) = prepare_victim_resumable(arch, &other, Some(&dir));
    assert!(!resumed, "fingerprint mismatch must force a rebuild");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn surrogate_checkpoint_round_trips() {
    let scale = tiny_scale();
    let dir = scratch_dir("surrogates");
    let (victim, _) = prepare_victim_resumable(Architecture::ResNet, &scale, Some(&dir));

    let (built, resumed) = prepare_surrogates_resumable(&victim, &scale, Some(&dir));
    assert!(!resumed);
    assert!(dir.join("surrogates-ResNet.ckpt").exists());
    let (reloaded, resumed) = prepare_surrogates_resumable(&victim, &scale, Some(&dir));
    assert!(resumed, "second run must resume the surrogate bundle");
    assert_eq!(
        serde_json::to_string(&reloaded.semi).unwrap(),
        serde_json::to_string(&built.semi).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&reloaded.black).unwrap(),
        serde_json::to_string(&built.black).unwrap()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
