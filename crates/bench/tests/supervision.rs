//! Chaos proof for the supervision layer (ISSUE 8 acceptance criteria):
//! under an injected `worker-stall` plan a quick-class attack run must
//! complete within its deadline budget, report explicit `TimedOut` /
//! `Quarantined` counts, resume the remaining items from per-item
//! checkpoints after a cancellation, and keep every `Ok` item bit-identical
//! to an unsupervised serial run.

use std::time::{Duration, Instant};

use diva_core::attack::{pgd_attack_traced, AttackCfg, StepInfo};
use diva_core::parallel::{par_attack_images_supervised, ParAttackOutput};
use diva_core::pipeline::evaluate_outcomes;
use diva_fault::ckpt::ItemStore;
use diva_metrics::success::SuccessCounts;
use diva_models::{Architecture, ModelCfg};
use diva_nn::Infer;
use diva_par::supervise::{JobStatus, RetryPolicy, SupervisePolicy};
use diva_quant::{QatNetwork, QuantCfg};
use diva_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Fixture {
    net: diva_nn::Network,
    qat: QatNetwork,
    x: Tensor,
    labels: Vec<usize>,
    cfg: AttackCfg,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(77);
    let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
    let per: usize = 3 * 8 * 8;
    let samples: Vec<Tensor> = (0..8)
        .map(|_| {
            Tensor::from_vec(
                (0..per).map(|_| rng.gen_range(0.0..1.0)).collect(),
                &[3, 8, 8],
            )
        })
        .collect();
    let x = Tensor::stack(&samples);
    let mut qat = QatNetwork::new(net.clone(), QuantCfg::default());
    qat.calibrate(&x);
    let labels = net.predict(&x);
    Fixture {
        net,
        qat,
        x,
        labels,
        cfg: AttackCfg::with_steps(6),
    }
}

fn attack_run(
    f: &Fixture,
    jobs: usize,
    policy: &SupervisePolicy,
    store: Option<&ItemStore>,
) -> ParAttackOutput {
    diva_par::set_jobs(jobs);
    let out = par_attack_images_supervised(
        "PGD",
        &f.x,
        &f.labels,
        None::<&QatNetwork>,
        policy,
        store,
        |_, xi: &Tensor, yi: &[usize], hook: &mut dyn FnMut(&StepInfo)| {
            pgd_attack_traced(&f.qat, xi, yi, &f.cfg, hook)
        },
    );
    diva_par::set_jobs(0);
    out
}

fn counts_for(f: &Fixture, out: &ParAttackOutput) -> SuccessCounts {
    evaluate_outcomes(&f.net, &f.qat, &out.adv, &f.labels)
        .into_iter()
        .zip(&out.statuses)
        .map(|(o, &s)| o.with_status(s))
        .collect()
}

#[test]
fn chaos_proof_stall_quarantine_cancel_resume() {
    let _lock = diva_fault::test_lock(); // set_plan / set_jobs are global
    let f = fixture();

    // Ground truth: unsupervised serial run, everything Ok.
    let baseline = attack_run(&f, 1, &SupervisePolicy::default(), None);
    assert!(baseline.statuses.iter().all(|s| s.is_ok()));

    // Phase 1 — deadline budget. One item wedges in token-only polling code
    // for 30 s; with an 800 ms per-item deadline the whole batch must finish
    // orders of magnitude sooner, with the stalled item explicitly TimedOut
    // and every other item bit-identical to the baseline.
    diva_fault::set_plan(Some(
        diva_fault::FaultPlan::parse("worker-stall:item=2,ms=30000").unwrap(),
    ));
    let deadline_policy = SupervisePolicy {
        item_deadline: Some(Duration::from_millis(800)),
        ..SupervisePolicy::default()
    };
    let started = Instant::now();
    let stalled = attack_run(&f, 4, &deadline_policy, None);
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "stalled batch must finish within the deadline budget, took {:?}",
        started.elapsed()
    );
    let counts = counts_for(&f, &stalled);
    assert_eq!(counts.timed_out, 1, "explicit TimedOut count");
    assert_eq!(counts.unscored(), 1);
    assert_eq!(stalled.statuses[2], JobStatus::TimedOut);
    for i in [0usize, 1, 3, 4, 5, 6, 7] {
        assert_eq!(stalled.statuses[i], JobStatus::Ok);
        assert_eq!(
            stalled.adv.index_batch(i).data(),
            baseline.adv.index_batch(i).data(),
            "Ok item {i} must be bit-identical to the unsupervised serial run"
        );
    }
    diva_fault::set_plan(None);

    // Phase 2 — quarantine. An item that panics on every attempt of a
    // 3-attempt retry policy is explicitly Quarantined, not silently lost.
    diva_fault::set_plan(Some(
        diva_fault::FaultPlan::parse("worker-panic:item=6").unwrap(),
    ));
    let retry_policy = SupervisePolicy {
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 1,
            seed: 11,
        },
        ..SupervisePolicy::default()
    };
    let quarantined = attack_run(&f, 2, &retry_policy, None);
    assert_eq!(quarantined.statuses[6], JobStatus::Quarantined);
    assert_eq!(counts_for(&f, &quarantined).quarantined, 1);
    diva_fault::set_plan(None);

    // Phase 3 — cancellation, then per-item resume. Serial run that cancels
    // itself after item 2 completes: items 0-2 finish (and are stored),
    // items 3-7 are Cancelled and never stored.
    let dir = std::env::temp_dir().join(format!("diva_supervision_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ItemStore::new(&dir, 0xC0FFEE);
    let cancel_policy = SupervisePolicy::default();
    let token = cancel_policy.cancel.clone();
    diva_par::set_jobs(1);
    let cancelled = par_attack_images_supervised(
        "PGD",
        &f.x,
        &f.labels,
        None::<&QatNetwork>,
        &cancel_policy,
        Some(&store),
        |i, xi: &Tensor, yi: &[usize], hook: &mut dyn FnMut(&StepInfo)| {
            let adv = pgd_attack_traced(&f.qat, xi, yi, &f.cfg, hook);
            if i == 2 {
                token.cancel();
            }
            adv
        },
    );
    diva_par::set_jobs(0);
    for i in 0..3 {
        assert_eq!(cancelled.statuses[i], JobStatus::Ok, "item {i}");
    }
    for i in 3..8 {
        assert_eq!(cancelled.statuses[i], JobStatus::Cancelled, "item {i}");
        assert_eq!(
            cancelled.adv.index_batch(i).data(),
            f.x.index_batch(i).data(),
            "cancelled item {i} must carry the natural image"
        );
    }
    assert_eq!(counts_for(&f, &cancelled).cancelled, 5);

    // Resume: a fresh supervised run over the same store recomputes only
    // the cancelled items. A panic armed for item 1 proves the completed
    // items are loaded from their checkpoints, not re-attacked.
    diva_fault::set_plan(Some(
        diva_fault::FaultPlan::parse("worker-panic:item=1").unwrap(),
    ));
    let resumed = attack_run(&f, 4, &SupervisePolicy::default(), Some(&store));
    diva_fault::set_plan(None);
    assert!(
        resumed.statuses.iter().all(|s| s.is_ok()),
        "resume must complete every item: {:?}",
        resumed.statuses
    );
    assert_eq!(
        resumed.adv.data(),
        baseline.adv.data(),
        "resumed batch must be bit-identical to the unsupervised serial run"
    );
    assert_eq!(resumed.first_flips, baseline.first_flips);
    let _ = std::fs::remove_dir_all(&dir);
}
