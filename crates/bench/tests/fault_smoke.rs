//! End-to-end fault drills: run `repro smoke` as a subprocess under each
//! `DIVA_FAULT` class and assert the run *completes* (exit 0), reports an
//! explicit nonzero `failed` count, and leaves trace evidence of the
//! injected fault in `metrics.json`. Also pins the flip side: with no plan
//! armed, smoke output is byte-identical across `DIVA_JOBS` settings and
//! prints no fault lines at all.

use std::path::PathBuf;
use std::process::Command;

/// Runs `repro smoke` with the given env pairs, returning (stdout, trace
/// dir). Panics if the process fails to spawn or exits nonzero.
fn run_smoke(tag: &str, envs: &[(&str, &str)]) -> (String, PathBuf) {
    let dir = std::env::temp_dir().join(format!("diva_fault_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.arg("smoke")
        .env_remove("DIVA_FAULT")
        .env_remove("DIVA_TRACE")
        .env_remove("DIVA_RESUME")
        .env_remove("DIVA_DEADLINE_MS")
        .env_remove("DIVA_RETRY")
        .env_remove("DIVA_BACKOFF_MS")
        .env("DIVA_TRACE_DIR", &dir)
        // Archive reports into the scratch dir too, so parallel tests (and
        // the developer's own repro_out/) never collide.
        .current_dir(&dir);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn repro smoke");
    assert!(
        out.status.success(),
        "repro smoke under {envs:?} must exit 0 (graceful degradation), got {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    (String::from_utf8_lossy(&out.stdout).into_owned(), dir)
}

/// Parses `failed=N` out of the smoke report's fault summary line.
fn failed_count(stdout: &str) -> usize {
    let line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("fault: failed="))
        .unwrap_or_else(|| panic!("no fault summary line in:\n{stdout}"));
    line.trim_start()
        .trim_start_matches("fault: failed=")
        .split_whitespace()
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable fault line: {line}"))
}

/// Reads the named counter from the run's metrics.json.
fn counter(dir: &std::path::Path, name: &str) -> u64 {
    let text = std::fs::read_to_string(dir.join("metrics.json"))
        .expect("faulted run must still write metrics.json");
    let v: serde_json::Value = serde_json::from_str(&text).expect("metrics.json parses");
    v["counters"][name].as_f64().unwrap_or(0.0) as u64
}

fn drill(tag: &str, plan: &str, evidence_counter: &str) -> (String, PathBuf) {
    let (stdout, dir) = run_smoke(tag, &[("DIVA_FAULT", plan), ("DIVA_TRACE", "1")]);
    assert!(
        stdout.contains(&format!("fault: plan '{plan}' armed")),
        "armed plan must be reported:\n{stdout}"
    );
    assert!(
        failed_count(&stdout) > 0,
        "plan `{plan}` must produce a nonzero failed count:\n{stdout}"
    );
    assert!(
        counter(&dir, evidence_counter) > 0,
        "plan `{plan}` must bump {evidence_counter} in metrics.json"
    );
    (stdout, dir)
}

#[test]
fn grad_nan_sticky_fails_images_but_completes() {
    let (stdout, _) = drill("grad_nan", "grad-nan:sticky=1", "fault.injected.grad_nan");
    // Sticky step-1 poison exhausts the guard budget on every image of
    // both fan-outs: 16 PGD + 16 DIVA.
    assert!(stdout.contains("(images 32,"), "all images fail:\n{stdout}");
}

#[test]
fn grad_inf_transient_recovers_with_zero_failures() {
    // A transient (non-sticky) poison is recovered by one guard retry, so
    // the run is degraded-but-successful: failed counts stay zero.
    let (stdout, dir) = run_smoke(
        "grad_inf",
        &[("DIVA_FAULT", "grad-inf:step=2"), ("DIVA_TRACE", "1")],
    );
    assert_eq!(failed_count(&stdout), 0, "{stdout}");
    assert!(counter(&dir, "fault.injected.grad_inf") > 0);
    assert!(
        counter(&dir, "attack.guard_recoveries") > 0,
        "guard must log its recoveries"
    );
}

#[test]
fn worker_panic_fails_one_item_per_fanout() {
    let (stdout, dir) = drill(
        "worker_panic",
        "worker-panic:item=3",
        "fault.injected.worker_panic",
    );
    // Item 3 dies in the PGD fan-out and the DIVA fan-out; the other 15
    // images of each batch still complete.
    assert!(stdout.contains("(images 2,"), "{stdout}");
    assert_eq!(counter(&dir, "par.item_panics"), 2);
    assert_eq!(counter(&dir, "attack.failed_images"), 2);
}

#[test]
fn bitflip_is_caught_by_the_weight_checksum() {
    let (stdout, _) = drill("bitflip", "bitflip:count=8", "fault.injected.bitflip");
    assert!(stdout.contains("integrity 1"), "{stdout}");
}

#[test]
fn file_faults_are_caught_by_the_checkpoint_footer() {
    let (stdout, _) = drill(
        "file_truncate",
        "file-truncate:bytes=64",
        "fault.injected.file_truncate",
    );
    assert!(stdout.contains("checkpoint 1"), "{stdout}");
    let (stdout, _) = drill(
        "file_corrupt",
        "file-corrupt:count=4",
        "fault.injected.file_corrupt",
    );
    assert!(stdout.contains("checkpoint 1"), "{stdout}");
}

#[test]
fn worker_stall_is_killed_by_the_deadline_within_budget() {
    // A worker wedged for 30 s on one item of each fan-out, under a 1.5 s
    // per-item deadline: the watchdog must cancel it, the run must finish
    // well inside the stall duration, and the report must say exactly
    // which items timed out.
    let started = std::time::Instant::now();
    let (stdout, dir) = run_smoke(
        "worker_stall",
        &[
            ("DIVA_FAULT", "worker-stall:item=3,ms=30000"),
            ("DIVA_DEADLINE_MS", "1500"),
            ("DIVA_TRACE", "1"),
            ("DIVA_JOBS", "4"),
        ],
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(60),
        "stalled run must finish within the deadline budget, took {:?}",
        started.elapsed()
    );
    assert!(
        stdout.contains("supervision: timed_out=2 cancelled=0 quarantined=0"),
        "item 3 of each fan-out must be reported TimedOut:\n{stdout}"
    );
    // The unscored items also show up in the fault summary.
    assert!(stdout.contains("(images 2,"), "{stdout}");
    assert!(counter(&dir, "fault.injected.worker_stall") > 0);
    assert_eq!(counter(&dir, "job.timed_out"), 2);
    assert!(
        counter(&dir, "job.watchdog_cancels") > 0,
        "the token-only stall can only end via the watchdog"
    );
}

#[test]
fn slow_io_delays_checkpoints_without_failing_anything() {
    // Latency-only injection: every checkpoint read/write sleeps, nothing
    // corrupts, so the run degrades in time, not in results.
    let (stdout, dir) = run_smoke(
        "slow_io",
        &[("DIVA_FAULT", "slow-io:ms=40"), ("DIVA_TRACE", "1")],
    );
    assert_eq!(failed_count(&stdout), 0, "{stdout}");
    assert!(
        counter(&dir, "fault.injected.slow_io") >= 2,
        "smoke's ckpt write + read must both hit the delay"
    );
}

#[test]
fn unarmed_smoke_is_byte_identical_across_job_counts() {
    // The fault/degradation machinery must be invisible when disarmed: no
    // fault lines, and the exact same bytes whether the fan-out runs
    // serially or on 4 workers.
    let (serial, _) = run_smoke("jobs1", &[("DIVA_JOBS", "1")]);
    let (parallel, _) = run_smoke("jobs4", &[("DIVA_JOBS", "4")]);
    assert!(!serial.contains("fault:"), "{serial}");
    assert_eq!(
        serial, parallel,
        "smoke output must not depend on DIVA_JOBS"
    );
}
