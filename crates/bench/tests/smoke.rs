//! Smoke tests of the experiment harness: every piece of `repro` plumbing
//! runs end-to-end at a tiny scale and produces structurally valid output.

use diva_bench::experiments::{fig2, fig4};
use diva_bench::suite::{attack_matrix_row, prepare_victim, AttackKind, ExperimentScale};
use diva_core::attack::AttackCfg;
use diva_models::Architecture;
use diva_nn::train::TrainCfg;

fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        train_n: 160,
        val_pool_n: 128,
        attacker_n: 64,
        per_class_val: 2,
        train_cfg: TrainCfg {
            epochs: 2,
            batch_size: 32,
            lr: 0.03,
            momentum: 0.9,
            weight_decay: 1e-4,
        },
        qat_cfg: TrainCfg {
            epochs: 1,
            batch_size: 32,
            lr: 0.004,
            momentum: 0.9,
            weight_decay: 0.0,
        },
        ..ExperimentScale::quick()
    }
}

#[test]
fn victim_preparation_and_attack_rows() {
    let scale = tiny_scale();
    let victim = prepare_victim(Architecture::ResNet, &scale);
    assert_eq!(victim.train.len(), 160);
    assert!(victim.original_acc >= 0.0 && victim.original_acc <= 1.0);
    let attack_set = victim.attack_set(scale.per_class_val);
    if attack_set.is_empty() {
        return; // untrained tiny victim may have no mutually-correct samples
    }
    let cfg = AttackCfg::with_steps(3);
    for kind in [AttackKind::Pgd, AttackKind::DivaWhitebox(1.0)] {
        let row = attack_matrix_row(&victim, &attack_set, kind, &cfg, None)
            .expect("no surrogate-based kinds are queued here");
        assert_eq!(row.counts.total, attack_set.len());
        assert!(row.counts.top1 <= row.counts.total);
        assert!(row.counts.top5 <= row.counts.top1);
        assert!(row.max_dssim >= 0.0 && row.max_dssim < 0.2);
        assert!(row.gen_seconds > 0.0);
    }
}

#[test]
fn victim_preparation_is_deterministic() {
    let scale = tiny_scale();
    let a = prepare_victim(Architecture::MobileNet, &scale);
    let b = prepare_victim(Architecture::MobileNet, &scale);
    assert_eq!(a.original.params(), b.original.params());
    assert_eq!(a.original_acc, b.original_acc);
}

#[test]
fn fig2_boundary_study_runs() {
    let report = fig2::run(21);
    assert!(report.contains("disagreement region"));
    assert!(report.contains("DIVA trajectory"));
    // The raster has 21 rows of 21 cells.
    let grid_rows = report
        .lines()
        .filter(|l| l.len() == 22 && l.starts_with(' '))
        .count();
    assert_eq!(grid_rows, 21);
}

#[test]
fn fig4_pca_study_runs_and_shifts_adapted_more() {
    let (report, shift) = fig4::run(40);
    assert!(report.contains("PCA"));
    // The PCA-space story: the adapted model's attacked representations
    // move at least as far as the original's.
    assert!(
        shift.adapted_move >= shift.original_move * 0.8,
        "adapted moved {} vs original {}",
        shift.adapted_move,
        shift.original_move
    );
    assert!(shift.success >= 0.0 && shift.success <= 1.0);
}
