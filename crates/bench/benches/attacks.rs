//! Criterion benches for the attack path: per-step attack cost (the paper's
//! §5.2 "Attack speed" measurement — PGD and DIVA should run at a similar
//! per-step cost), inference across the three model forms, and the
//! quantization pipeline itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use diva_core::attack::{diva_grad, AttackCfg};
use diva_core::DiffModel;
use diva_models::{Architecture, ModelCfg};
use diva_nn::{losses, Infer, Network};
use diva_quant::{Int8Engine, QatNetwork, QuantCfg};
use diva_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

struct Fixture {
    original: Network,
    qat: QatNetwork,
    engine: Int8Engine,
    x: Tensor,
    labels: Vec<usize>,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(0);
    let original = Architecture::ResNet.build(&ModelCfg::standard(16), &mut rng);
    let n = 8;
    let per = 3 * 16 * 16;
    let samples: Vec<Tensor> = (0..32)
        .map(|_| {
            Tensor::from_vec(
                (0..per).map(|_| rng.gen_range(0.0..1.0f32)).collect(),
                &[3, 16, 16],
            )
        })
        .collect();
    let calib = Tensor::stack(&samples);
    let mut qat = QatNetwork::new(original.clone(), QuantCfg::default());
    qat.calibrate(&calib);
    let engine = Int8Engine::from_qat(&qat);
    let x = diva_nn::train::gather(&calib, &(0..n).collect::<Vec<_>>());
    let labels = original.predict(&x);
    Fixture {
        original,
        qat,
        engine,
        x,
        labels,
    }
}

fn bench_attack_step(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("attack_step");
    g.sample_size(10);
    // One PGD step = one CE gradient through the adapted model.
    g.bench_function("pgd_grad", |b| {
        b.iter(|| {
            f.qat
                .value_and_grad(&f.x, &mut |l| losses::cross_entropy(l, &f.labels).1)
                .1
        })
    });
    // One DIVA step = probability gradients through both models.
    g.bench_function("diva_grad", |b| {
        b.iter(|| diva_grad(&f.original, &f.qat, &f.x, &f.labels, 1.0))
    });
    // Full 20-step attacks for the wall-clock comparison.
    let cfg = AttackCfg::paper_default();
    g.bench_function("pgd_20_steps", |b| {
        b.iter_batched(
            || f.x.clone(),
            |x| diva_core::attack::pgd_attack(&f.qat, &x, &f.labels, &cfg),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("diva_20_steps", |b| {
        b.iter_batched(
            || f.x.clone(),
            |x| diva_core::attack::diva_attack(&f.original, &f.qat, &x, &f.labels, 1.0, &cfg),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("inference");
    g.sample_size(10);
    g.bench_function("fp32", |b| b.iter(|| f.original.logits(&f.x)));
    g.bench_function("fake_quant", |b| b.iter(|| f.qat.logits(&f.x)));
    g.bench_function("int8_engine", |b| b.iter(|| f.engine.logits(&f.x)));
    g.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("quantize");
    g.sample_size(10);
    g.bench_function("calibrate", |b| {
        b.iter_batched(
            || QatNetwork::new(f.original.clone(), QuantCfg::default()),
            |mut q| {
                q.calibrate(&f.x);
                q
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("convert_to_engine", |b| {
        b.iter(|| Int8Engine::from_qat(&f.qat))
    });
    g.finish();
}

criterion_group!(benches, bench_attack_step, bench_inference, bench_quantize);
criterion_main!(benches);
