//! Criterion front-end for the `attacks` microbench area: per-step attack
//! cost (the paper's §5.2 "attack speed" measurement — PGD and DIVA should
//! run at a similar per-step cost), full 20-step attacks, inference across
//! the three model forms, and the quantization pipeline. The case list
//! lives in `diva_bench::microbench` so the same workloads back
//! `repro regress`.
//!
//! With `DIVA_BENCH_JSON` set (`1` = current directory, else an output
//! directory) Criterion is skipped entirely and the median-of-N harness
//! writes `BENCH_attacks.json` — the committed regression baseline format.

use criterion::Criterion;
use diva_bench::microbench;

fn main() {
    if let Some(path) = microbench::json_env_path("attacks") {
        let summary = microbench::run_area("attacks", &microbench::MeasureCfg::default())
            .expect("attacks is a known area");
        summary.save(&path).expect("write bench summary");
        eprintln!("wrote {}", path.display());
        return;
    }
    let mut c = Criterion::default().configure_from_args();
    let mut g = c.benchmark_group("attacks");
    g.sample_size(10);
    for case in microbench::attack_cases() {
        let mut run = case.run;
        g.bench_function(case.id.as_str(), move |b| b.iter(&mut run));
    }
    g.finish();
    Criterion::default().configure_from_args().final_summary();
}
