//! Criterion benches for the DESIGN.md §4 kernel ablations: im2col vs naive
//! convolution, and fixed-point vs float requantization in the engine.

use criterion::{criterion_group, criterion_main, Criterion};
use diva_models::{Architecture, ModelCfg};
use diva_nn::Infer;
use diva_quant::{Int8Engine, QatNetwork, QuantCfg, RequantMode};
use diva_tensor::conv::{conv2d, conv2d_naive, Conv2dCfg};
use diva_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn rand_tensor(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), dims)
}

fn bench_conv_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = rand_tensor(&mut rng, &[8, 12, 16, 16]);
    let w = rand_tensor(&mut rng, &[24, 12, 3, 3]);
    let b = rand_tensor(&mut rng, &[24]);
    let cfg = Conv2dCfg::square(3, 1, 1);
    let mut g = c.benchmark_group("conv_kernels");
    g.sample_size(10);
    g.bench_function("im2col", |bch| {
        bch.iter(|| conv2d(&x, &w, &b, cfg).unwrap())
    });
    g.bench_function("naive", |bch| {
        bch.iter(|| conv2d_naive(&x, &w, &b, cfg).unwrap())
    });
    g.finish();
}

fn bench_engine_requant(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let net = Architecture::ResNet.build(&ModelCfg::standard(16), &mut rng);
    let samples: Vec<Tensor> = (0..16)
        .map(|_| rand_tensor(&mut rng, &[3, 16, 16]).map(|v| (v + 1.0) / 2.0))
        .collect();
    let calib = Tensor::stack(&samples);
    let mut qat = QatNetwork::new(net, QuantCfg::default());
    qat.calibrate(&calib);
    let fixed = Int8Engine::from_qat_with_mode(&qat, RequantMode::FixedPoint);
    let float = fixed.with_mode(RequantMode::Float);
    let x = diva_nn::train::gather(&calib, &(0..8).collect::<Vec<_>>());
    let mut g = c.benchmark_group("engine_requant");
    g.sample_size(10);
    g.bench_function("fixed_point", |b| b.iter(|| fixed.logits(&x)));
    g.bench_function("float", |b| b.iter(|| float.logits(&x)));
    g.finish();
}

criterion_group!(benches, bench_conv_kernels, bench_engine_requant);
criterion_main!(benches);
