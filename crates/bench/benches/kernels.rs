//! Criterion front-end for the `kernels` microbench area (DESIGN.md §4
//! kernel ablations: im2col vs naive convolution, fixed-point vs float
//! requantization). The case list lives in `diva_bench::microbench` so the
//! same workloads back `repro regress`.
//!
//! With `DIVA_BENCH_JSON` set (`1` = current directory, else an output
//! directory) Criterion is skipped entirely and the median-of-N harness
//! writes `BENCH_kernels.json` — the committed regression baseline format.

use criterion::Criterion;
use diva_bench::microbench;

fn main() {
    if let Some(path) = microbench::json_env_path("kernels") {
        let summary = microbench::run_area("kernels", &microbench::MeasureCfg::default())
            .expect("kernels is a known area");
        summary.save(&path).expect("write bench summary");
        eprintln!("wrote {}", path.display());
        return;
    }
    let mut c = Criterion::default().configure_from_args();
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    for case in microbench::kernel_cases() {
        let mut run = case.run;
        g.bench_function(case.id.as_str(), move |b| b.iter(&mut run));
    }
    g.finish();
    Criterion::default().configure_from_args().final_summary();
}
