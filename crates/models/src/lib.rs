//! `diva-models` — the model zoo of the DIVA reproduction.
//!
//! The paper evaluates ResNet50, MobileNet and DenseNet121 on ImageNet, plus
//! a VGGFace (ResNet50-based) face model. Those architectures are rebuilt
//! here as laptop-scale members of the same families over the `diva-nn`
//! graph IR:
//!
//! * [`Architecture::ResNet`] — residual blocks with projection shortcuts
//!   ([`mini_resnet`]);
//! * [`Architecture::MobileNet`] — depthwise-separable convolution stacks
//!   ([`mini_mobilenet`]);
//! * [`Architecture::DenseNet`] — densely concatenated blocks with
//!   transition layers ([`mini_densenet`]).
//!
//! [`face_net`] mirrors the paper's VGGFace choice by reusing the ResNet
//! family for face identification, and [`mnist_cnn`] is the small model used
//! for the PCA representation study (Fig. 4).
//!
//! ```
//! use diva_models::{Architecture, ModelCfg};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = Architecture::ResNet.build(&ModelCfg::tiny(8), &mut rng);
//! assert_eq!(net.graph().num_classes(), 8);
//! ```

use diva_nn::graph::{GraphBuilder, NodeId};
use diva_nn::{Network, ParamId};
use rand::rngs::StdRng;

/// The three architecture families evaluated in the paper (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Residual network (the paper's ResNet50 stand-in).
    ResNet,
    /// Depthwise-separable network (the paper's MobileNet stand-in).
    MobileNet,
    /// Densely connected network (the paper's DenseNet121 stand-in).
    DenseNet,
}

impl Architecture {
    /// All three families, in the order the paper reports them.
    pub const ALL: [Architecture; 3] = [
        Architecture::ResNet,
        Architecture::MobileNet,
        Architecture::DenseNet,
    ];

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::ResNet => "ResNet",
            Architecture::MobileNet => "MobileNet",
            Architecture::DenseNet => "DenseNet",
        }
    }

    /// Builds a freshly initialised network of this family.
    pub fn build(&self, cfg: &ModelCfg, rng: &mut StdRng) -> Network {
        match self {
            Architecture::ResNet => mini_resnet(cfg, rng),
            Architecture::MobileNet => mini_mobilenet(cfg, rng),
            Architecture::DenseNet => mini_densenet(cfg, rng),
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Size/shape configuration shared by all model builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCfg {
    /// Per-sample input shape `[c, h, w]`.
    pub input: [usize; 3],
    /// Number of output classes.
    pub num_classes: usize,
    /// Base channel width; stage widths are multiples of this.
    pub width: usize,
}

impl ModelCfg {
    /// The default experiment scale: 3×16×16 input, base width 12.
    pub fn standard(num_classes: usize) -> Self {
        ModelCfg {
            input: [3, 16, 16],
            num_classes,
            width: 12,
        }
    }

    /// A very small configuration for fast unit tests: 3×8×8, width 6.
    pub fn tiny(num_classes: usize) -> Self {
        ModelCfg {
            input: [3, 8, 8],
            num_classes,
            width: 6,
        }
    }
}

/// Scales down the classifier head's initial weights.
///
/// These networks train without normalization layers, so He-initialised
/// logits start large and the first optimizer steps can collapse the
/// features (a constant predictor at loss ln C). A small head — the Fixup
/// trick — keeps early training stable; every builder applies it.
fn temper_head(net: &mut Network) {
    let n = net.params().len();
    debug_assert!(n >= 2, "builders end with a dense head (weight + bias)");
    let head = ParamId(n - 2);
    let small = net.params().get(head).value.scale(0.1);
    net.params_mut().get_mut(head).value = small;
}

/// A residual block: `relu(conv-relu-conv + shortcut)`.
///
/// When `stride > 1` or the channel count changes, the shortcut is a
/// 1×1 strided projection convolution (as in ResNet); otherwise identity.
fn residual_block(
    b: &mut GraphBuilder<'_>,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
) -> NodeId {
    let c1 = b.conv(x, out_ch, 3, stride, 1);
    let r1 = b.relu(c1);
    let c2 = b.conv(r1, out_ch, 3, 1, 1);
    let shortcut = if stride != 1 || in_ch != out_ch {
        b.conv(x, out_ch, 1, stride, 0)
    } else {
        x
    };
    let sum = b.add(c2, shortcut);
    b.relu(sum)
}

/// The ResNet-family model: stem + three stages of residual blocks +
/// global average pooling + linear classifier.
///
/// With [`ModelCfg::standard`] this is an 11-conv network over 16×16 inputs
/// whose stages run at 16×16, 8×8 and 4×4 — the same stage layout (at
/// reduced depth/width) as ResNet50's.
pub fn mini_resnet(cfg: &ModelCfg, rng: &mut StdRng) -> Network {
    let w = cfg.width;
    let mut b = GraphBuilder::new(cfg.input, rng);
    let x = b.input();
    let stem = b.conv(x, w, 3, 1, 1);
    let stem = b.relu(stem);
    // Stage 1: full resolution.
    let s1 = residual_block(&mut b, stem, w, w, 1);
    let s1 = residual_block(&mut b, s1, w, w, 1);
    // Stage 2: stride-2 projection to 2w channels.
    let s2 = residual_block(&mut b, s1, w, 2 * w, 2);
    let s2 = residual_block(&mut b, s2, 2 * w, 2 * w, 1);
    // Stage 3: stride-2 projection to 3w channels.
    let s3 = residual_block(&mut b, s2, 2 * w, 3 * w, 2);
    let feat = b.global_avg_pool(s3);
    let out = b.dense(feat, cfg.num_classes);
    let mut net = b.finish(out, Some(feat));
    temper_head(&mut net);
    net
}

/// A depthwise-separable block: `relu(dwconv) -> relu(pointwise conv)`.
fn ds_block(b: &mut GraphBuilder<'_>, x: NodeId, out_ch: usize, stride: usize) -> NodeId {
    let dw = b.dwconv(x, 3, stride, 1);
    let dr = b.relu(dw);
    let pw = b.conv(dr, out_ch, 1, 1, 0);
    b.relu(pw)
}

/// The MobileNet-family model: a stem conv followed by depthwise-separable
/// blocks with stride-2 downsampling, GAP and a linear classifier.
pub fn mini_mobilenet(cfg: &ModelCfg, rng: &mut StdRng) -> Network {
    let w = cfg.width;
    let mut b = GraphBuilder::new(cfg.input, rng);
    let x = b.input();
    let stem = b.conv(x, w, 3, 1, 1);
    let stem = b.relu(stem);
    let d1 = ds_block(&mut b, stem, 2 * w, 1);
    let d2 = ds_block(&mut b, d1, 2 * w, 2);
    let d3 = ds_block(&mut b, d2, 3 * w, 1);
    let d4 = ds_block(&mut b, d3, 4 * w, 2);
    let d5 = ds_block(&mut b, d4, 4 * w, 1);
    let feat = b.global_avg_pool(d5);
    let out = b.dense(feat, cfg.num_classes);
    let mut net = b.finish(out, Some(feat));
    temper_head(&mut net);
    net
}

/// A dense block: `layers` conv layers, each consuming the concatenation of
/// everything before it and contributing `growth` channels.
fn dense_block(b: &mut GraphBuilder<'_>, x: NodeId, layers: usize, growth: usize) -> NodeId {
    let mut state = x;
    for _ in 0..layers {
        let c = b.conv(state, growth, 3, 1, 1);
        let r = b.relu(c);
        state = b.concat(&[state, r]);
    }
    state
}

/// The DenseNet-family model: stem + two dense blocks separated by a
/// 1×1-conv + max-pool transition, GAP and a linear classifier.
pub fn mini_densenet(cfg: &ModelCfg, rng: &mut StdRng) -> Network {
    let w = cfg.width;
    let growth = (w / 2).max(2);
    let mut b = GraphBuilder::new(cfg.input, rng);
    let x = b.input();
    let stem = b.conv(x, w, 3, 1, 1);
    let stem = b.relu(stem);
    let blk1 = dense_block(&mut b, stem, 3, growth);
    // Transition: compress channels and halve resolution.
    let t1 = b.conv(blk1, w, 1, 1, 0);
    let t1 = b.relu(t1);
    let t1 = b.max_pool(t1, 2, 2);
    let blk2 = dense_block(&mut b, t1, 3, growth);
    let t2 = b.conv(blk2, 2 * w, 1, 1, 0);
    let t2 = b.relu(t2);
    let feat = b.global_avg_pool(t2);
    let out = b.dense(feat, cfg.num_classes);
    let mut net = b.finish(out, Some(feat));
    temper_head(&mut net);
    net
}

/// The face-recognition model of the case study (§6).
///
/// The paper's VGGFace internally uses the ResNet50 architecture, so the
/// stand-in is the ResNet family at the face dataset's class count.
pub fn face_net(num_identities: usize, rng: &mut StdRng) -> Network {
    mini_resnet(&ModelCfg::standard(num_identities), rng)
}

/// The small CNN used for the MNIST PCA study (Fig. 4): grayscale input,
/// two conv stages, GAP features.
pub fn mnist_cnn(rng: &mut StdRng) -> Network {
    let mut b = GraphBuilder::new([1, 16, 16], rng);
    let x = b.input();
    let c1 = b.conv(x, 8, 3, 1, 1);
    let r1 = b.relu(c1);
    let p1 = b.max_pool(r1, 2, 2);
    let c2 = b.conv(p1, 16, 3, 1, 1);
    let r2 = b.relu(c2);
    let feat = b.global_avg_pool(r2);
    let out = b.dense(feat, 10);
    let mut net = b.finish(out, Some(feat));
    temper_head(&mut net);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_nn::Infer;
    use diva_tensor::Tensor;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn all_families_build_and_run() {
        let cfg = ModelCfg::standard(16);
        for arch in Architecture::ALL {
            let net = arch.build(&cfg, &mut rng());
            let x = Tensor::zeros(&[2, 3, 16, 16]);
            let logits = net.logits(&x);
            assert_eq!(logits.dims(), &[2, 16], "{arch} logits shape");
            let f = net.features(&x).expect("feature node");
            assert_eq!(f.dims()[0], 2, "{arch} features batch");
        }
    }

    #[test]
    fn tiny_configs_build() {
        let cfg = ModelCfg::tiny(4);
        for arch in Architecture::ALL {
            let net = arch.build(&cfg, &mut rng());
            let logits = net.logits(&Tensor::zeros(&[1, 3, 8, 8]));
            assert_eq!(logits.dims(), &[1, 4]);
        }
    }

    #[test]
    fn families_are_structurally_distinct() {
        use diva_nn::Op;
        let cfg = ModelCfg::tiny(4);
        let res = Architecture::ResNet.build(&cfg, &mut rng());
        let mob = Architecture::MobileNet.build(&cfg, &mut rng());
        let den = Architecture::DenseNet.build(&cfg, &mut rng());
        let has =
            |n: &Network, pred: &dyn Fn(&Op) -> bool| n.graph().nodes().iter().any(|m| pred(&m.op));
        assert!(has(&res, &|o| matches!(o, Op::Add)));
        assert!(!has(&res, &|o| matches!(o, Op::Concat)));
        assert!(has(&mob, &|o| matches!(o, Op::DwConv2d { .. })));
        assert!(has(&den, &|o| matches!(o, Op::Concat)));
        assert!(!has(&den, &|o| matches!(o, Op::Add)));
    }

    #[test]
    fn parameter_counts_are_reasonable() {
        let cfg = ModelCfg::standard(16);
        for arch in Architecture::ALL {
            let net = arch.build(&cfg, &mut rng());
            let n = net.params().num_scalars();
            assert!((1_000..2_000_000).contains(&n), "{arch} has {n} parameters");
        }
        // MobileNet should be the lightest family (that's its point).
        let count = |a: Architecture| a.build(&cfg, &mut rng()).params().num_scalars();
        assert!(count(Architecture::MobileNet) < count(Architecture::ResNet));
    }

    #[test]
    fn mnist_and_face_models() {
        let m = mnist_cnn(&mut rng());
        assert_eq!(m.graph().num_classes(), 10);
        assert_eq!(m.graph().input_shape(), [1, 16, 16]);
        let logits = m.logits(&Tensor::zeros(&[1, 1, 16, 16]));
        assert_eq!(logits.dims(), &[1, 10]);

        let f = face_net(25, &mut rng());
        assert_eq!(f.graph().num_classes(), 25);
    }

    #[test]
    fn distinct_seeds_give_distinct_weights() {
        let cfg = ModelCfg::tiny(4);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let a = mini_resnet(&cfg, &mut r1);
        let b = mini_resnet(&cfg, &mut r2);
        assert_ne!(a.params(), b.params());
        // Same seed → identical weights.
        let mut r3 = StdRng::seed_from_u64(1);
        let c = mini_resnet(&cfg, &mut r3);
        assert_eq!(a.params(), c.params());
    }
}
