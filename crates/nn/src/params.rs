//! Parameter storage: values, gradients, and pruning masks.

use serde::{Deserialize, Serialize};

use diva_tensor::Tensor;

use crate::graph::ParamId;

/// One learnable tensor with its gradient accumulator and an optional
/// pruning mask.
///
/// When a mask is present the *effective* value used by executors is
/// `value ⊙ mask`, and gradients are masked too, so pruned weights stay
/// exactly zero through fine-tuning (this is how `tfmot` sparsity
/// preservation behaves).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulator (same shape as `value`).
    pub grad: Tensor,
    /// Optional binary pruning mask (same shape as `value`).
    pub mask: Option<Tensor>,
}

impl Param {
    /// Wraps a value with a zeroed gradient and no mask.
    pub fn new(value: Tensor) -> Self {
        let grad = value.zeros_like();
        Param {
            value,
            grad,
            mask: None,
        }
    }

    /// The value the executor should use: masked if a mask is set.
    pub fn effective(&self) -> Tensor {
        match &self.mask {
            Some(m) => self.value.mul(m),
            None => self.value.clone(),
        }
    }

    /// Fraction of entries zeroed by the mask (0 when unmasked).
    pub fn sparsity(&self) -> f32 {
        match &self.mask {
            Some(m) => 1.0 - m.mean(),
            None => 0.0,
        }
    }
}

/// The full set of parameters of one model.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Appends a parameter, returning its id.
    pub fn push(&mut self, value: Tensor) -> ParamId {
        self.params.push(Param::new(value));
        ParamId(self.params.len() - 1)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameter tensors.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Immutable parameter access.
    pub fn get(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Mutable parameter access.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Iterates mutably over all parameters.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.params.iter_mut()
    }

    /// Effective (masked) value of parameter `id`.
    pub fn effective(&self, id: ParamId) -> Tensor {
        self.params[id.0].effective()
    }

    /// Accumulates `g` into parameter `id`'s gradient, respecting the mask.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        let p = &mut self.params[id.0];
        match &p.mask {
            Some(m) => p.grad.axpy(1.0, &g.mul(m)),
            None => p.grad.axpy(1.0, g),
        }
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad = p.value.zeros_like();
        }
    }

    /// Global fraction of scalars zeroed by masks.
    pub fn global_sparsity(&self) -> f32 {
        let total: usize = self.num_scalars();
        if total == 0 {
            return 0.0;
        }
        let zeroed: f32 = self
            .params
            .iter()
            .map(|p| p.sparsity() * p.value.len() as f32)
            .sum();
        zeroed / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut s = ParamStore::new();
        let id = s.push(Tensor::ones(&[2, 2]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_scalars(), 4);
        assert_eq!(s.get(id).value.sum(), 4.0);
        assert_eq!(s.get(id).grad.sum(), 0.0);
    }

    #[test]
    fn effective_applies_mask() {
        let mut s = ParamStore::new();
        let id = s.push(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]));
        assert_eq!(s.effective(id).sum(), 10.0);
        s.get_mut(id).mask = Some(Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]));
        assert_eq!(s.effective(id).data(), &[1.0, 0.0, 3.0, 0.0]);
        assert_eq!(s.get(id).sparsity(), 0.5);
    }

    #[test]
    fn grads_respect_mask() {
        let mut s = ParamStore::new();
        let id = s.push(Tensor::zeros(&[3]));
        s.get_mut(id).mask = Some(Tensor::from_vec(vec![1.0, 0.0, 1.0], &[3]));
        s.accumulate_grad(id, &Tensor::ones(&[3]));
        assert_eq!(s.get(id).grad.data(), &[1.0, 0.0, 1.0]);
        s.zero_grads();
        assert_eq!(s.get(id).grad.sum(), 0.0);
    }

    #[test]
    fn global_sparsity_weighted_by_size() {
        let mut s = ParamStore::new();
        let a = s.push(Tensor::zeros(&[8]));
        let _b = s.push(Tensor::zeros(&[2]));
        s.get_mut(a).mask = Some(Tensor::zeros(&[8])); // fully pruned
                                                       // 8 of 10 scalars pruned
        assert!((s.global_sparsity() - 0.8).abs() < 1e-6);
    }
}
