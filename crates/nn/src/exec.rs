//! The graph executor: forward and reverse passes with quantization hooks.
//!
//! The executor walks the graph in topological order (forward) and reverse
//! topological order (backward). Both passes are generic over a [`Hooks`]
//! implementation, which is how `diva-quant` injects fake-quantization:
//!
//! * [`Hooks::weight`] transforms each parameter before use (weight
//!   fake-quant);
//! * [`Hooks::output`] transforms each node's output (activation fake-quant,
//!   observer updates during QAT);
//! * [`Hooks::output_grad`] implements the straight-through estimator on the
//!   way back.
//!
//! The plain fp32 path uses [`NoHooks`], which the compiler erases entirely.

use diva_tensor::conv::{conv2d, conv2d_backward, depthwise_conv2d, depthwise_conv2d_backward};
use diva_tensor::pool::{
    global_avg_pool, global_avg_pool_backward, max_pool2d, max_pool2d_backward,
};
use diva_tensor::{ops, Tensor};

use crate::graph::{Graph, NodeId, Op, ParamId};
use crate::params::ParamStore;

/// Static span names per op kind, so per-op timing costs no allocation.
fn fwd_span_name(op: &Op) -> &'static str {
    match op {
        Op::Input => "nn.fwd.input",
        Op::Conv2d { .. } => "nn.fwd.conv2d",
        Op::DwConv2d { .. } => "nn.fwd.dwconv2d",
        Op::Dense { .. } => "nn.fwd.dense",
        Op::Relu => "nn.fwd.relu",
        Op::Add => "nn.fwd.add",
        Op::Concat => "nn.fwd.concat",
        Op::MaxPool2d { .. } => "nn.fwd.maxpool2d",
        Op::GlobalAvgPool => "nn.fwd.gap",
        Op::Flatten => "nn.fwd.flatten",
    }
}

fn bwd_span_name(op: &Op) -> &'static str {
    match op {
        Op::Input => "nn.bwd.input",
        Op::Conv2d { .. } => "nn.bwd.conv2d",
        Op::DwConv2d { .. } => "nn.bwd.dwconv2d",
        Op::Dense { .. } => "nn.bwd.dense",
        Op::Relu => "nn.bwd.relu",
        Op::Add => "nn.bwd.add",
        Op::Concat => "nn.bwd.concat",
        Op::MaxPool2d { .. } => "nn.bwd.maxpool2d",
        Op::GlobalAvgPool => "nn.bwd.gap",
        Op::Flatten => "nn.bwd.flatten",
    }
}

/// Interposition points for quantization-aware execution.
///
/// All methods default to identity, so `impl Hooks for MyType {}` starts from
/// plain fp32 behaviour. Implementations that transform outputs must set
/// [`Hooks::ACTIVE`] so the executor caches raw (pre-hook) outputs for the
/// backward pass.
pub trait Hooks {
    /// Whether output hooks actually transform values. When `false` the
    /// executor skips caching raw outputs.
    const ACTIVE: bool = false;

    /// Transforms a parameter value before the op consumes it.
    ///
    /// Takes `&self`: weight fake-quantization derives its range from the
    /// weight itself, so it needs no running observer state (unlike
    /// activation quantization in [`Hooks::output`]).
    fn weight(&self, _id: ParamId, w: Tensor) -> Tensor {
        w
    }

    /// Transforms a node output after the op produces it.
    fn output(&mut self, _node: NodeId, _op: &Op, y: Tensor) -> Tensor {
        y
    }

    /// Maps the gradient w.r.t. the hooked output back to a gradient w.r.t.
    /// the raw output (straight-through estimator in the quantized case).
    ///
    /// `raw` is the pre-hook output cached during forward (only available
    /// when [`Hooks::ACTIVE`]).
    fn output_grad(&self, _node: NodeId, _raw: &Tensor, dy: Tensor) -> Tensor {
        dy
    }

    /// Maps the gradient w.r.t. the hooked weight back to a gradient w.r.t.
    /// the raw weight.
    fn weight_grad(&self, _id: ParamId, _raw_w: &Tensor, dw: Tensor) -> Tensor {
        dw
    }
}

/// The identity hook set: plain fp32 execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl Hooks for NoHooks {}

/// Cached state of one forward pass, consumed by [`backward`].
#[derive(Debug, Clone)]
pub struct Execution {
    /// Post-hook output of every node.
    acts: Vec<Tensor>,
    /// Pre-hook outputs (only cached when the hook set is ACTIVE).
    raws: Vec<Option<Tensor>>,
    /// Argmax caches for max-pool nodes.
    pool_args: Vec<Option<Vec<usize>>>,
    /// Batch size of the pass.
    batch: usize,
}

impl Execution {
    /// Post-hook activation of `node`.
    pub fn activation(&self, node: NodeId) -> &Tensor {
        &self.acts[node.0]
    }

    /// The graph output (logits) of this pass.
    pub fn output(&self, graph: &Graph) -> &Tensor {
        &self.acts[graph.output().0]
    }

    /// Batch size of the pass.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

/// Runs a forward pass over `graph` with parameters `params` on a batched
/// input `x` (`[n, c, h, w]`), applying `hooks` at every interposition point.
///
/// # Panics
///
/// Panics if `x` does not match the graph's input shape, or if an internal
/// kernel reports a shape mismatch (which would indicate a builder bug).
pub fn forward<H: Hooks>(
    graph: &Graph,
    params: &ParamStore,
    x: &Tensor,
    hooks: &mut H,
) -> Execution {
    let [c, h, w] = graph.input_shape();
    assert_eq!(
        x.dims()[1..],
        [c, h, w],
        "input {:?} does not match graph input shape {:?}",
        x.dims(),
        [c, h, w]
    );
    let n = x.dims()[0];
    let mut acts: Vec<Tensor> = Vec::with_capacity(graph.len());
    let mut raws: Vec<Option<Tensor>> = vec![None; graph.len()];
    let mut pool_args: Vec<Option<Vec<usize>>> = vec![None; graph.len()];

    let _pass = diva_trace::span(1, "nn.forward");
    for (idx, node) in graph.nodes().iter().enumerate() {
        let id = NodeId(idx);
        let _op_span = diva_trace::span(1, fwd_span_name(&node.op));
        let raw = match &node.op {
            Op::Input => x.clone(),
            Op::Conv2d { w, b, cfg } => {
                let weight = hooks.weight(*w, params.effective(*w));
                let bias = hooks.weight(*b, params.effective(*b));
                conv2d(&acts[node.inputs[0].0], &weight, &bias, *cfg).expect("conv2d")
            }
            Op::DwConv2d { w, b, cfg } => {
                let weight = hooks.weight(*w, params.effective(*w));
                let bias = hooks.weight(*b, params.effective(*b));
                depthwise_conv2d(&acts[node.inputs[0].0], &weight, &bias, *cfg).expect("dwconv2d")
            }
            Op::Dense { w, b } => {
                let weight = hooks.weight(*w, params.effective(*w));
                let bias = hooks.weight(*b, params.effective(*b));
                let xin = &acts[node.inputs[0].0];
                ops::dense_forward(xin, &weight, &bias).expect("dense")
            }
            Op::Relu => acts[node.inputs[0].0].relu(),
            Op::Add => acts[node.inputs[0].0].add(&acts[node.inputs[1].0]),
            Op::Concat => {
                concat_channels(&node.inputs.iter().map(|i| &acts[i.0]).collect::<Vec<_>>())
            }
            Op::MaxPool2d { k, stride } => {
                let (y, arg) = max_pool2d(&acts[node.inputs[0].0], *k, *stride).expect("maxpool");
                pool_args[idx] = Some(arg);
                y
            }
            Op::GlobalAvgPool => global_avg_pool(&acts[node.inputs[0].0]).expect("gap"),
            Op::Flatten => {
                let xin = &acts[node.inputs[0].0];
                let flat = node.shape.len();
                xin.reshape(&[n, flat]).expect("flatten")
            }
        };
        let hooked = hooks.output(id, &node.op, raw.clone());
        if H::ACTIVE {
            raws[idx] = Some(raw);
        }
        acts.push(hooked);
    }
    Execution {
        acts,
        raws,
        pool_args,
        batch: n,
    }
}

/// Runs the reverse pass: given the gradient of a scalar objective w.r.t. the
/// graph output, accumulates parameter gradients into `params` and returns
/// the gradient w.r.t. the input batch.
///
/// # Panics
///
/// Panics if `d_output` does not match the output activation's shape.
pub fn backward<H: Hooks>(
    graph: &Graph,
    params: &mut ParamStore,
    exec: &Execution,
    d_output: &Tensor,
    hooks: &H,
) -> Tensor {
    let out_id = graph.output();
    assert_eq!(
        d_output.dims(),
        exec.acts[out_id.0].dims(),
        "d_output shape mismatch"
    );
    let mut grads: Vec<Option<Tensor>> = vec![None; graph.len()];
    grads[out_id.0] = Some(d_output.clone());

    let _pass = diva_trace::span(1, "nn.backward");
    for idx in (0..graph.len()).rev() {
        let node = &graph.nodes()[idx];
        let Some(dy_hooked) = grads[idx].take() else {
            continue; // node does not influence the output
        };
        let _op_span = diva_trace::span(1, bwd_span_name(&node.op));
        // Straight-through / dequant adjoint.
        let dy = if H::ACTIVE {
            let raw = exec.raws[idx]
                .as_ref()
                .expect("raw output missing for active hooks");
            hooks.output_grad(NodeId(idx), raw, dy_hooked)
        } else {
            dy_hooked
        };
        match &node.op {
            Op::Input => {
                // handled after the loop; re-store for extraction
                grads[idx] = Some(dy);
            }
            Op::Conv2d { w, b, cfg } => {
                let xin = &exec.acts[node.inputs[0].0];
                let raw_weight = params.effective(*w);
                // Differentiate at the *hooked* (e.g. fake-quantized) weight:
                // that is the value the forward pass actually used. The STE
                // then treats d(quant(w))/dw = 1 via `weight_grad`.
                let weight = hooks.weight(*w, raw_weight.clone());
                let (dx, dw, db) = conv2d_backward(xin, &weight, &dy, *cfg).expect("conv2d bwd");
                let dw = hooks.weight_grad(*w, &raw_weight, dw);
                params.accumulate_grad(*w, &dw);
                params.accumulate_grad(*b, &db);
                accumulate(&mut grads, node.inputs[0], dx);
            }
            Op::DwConv2d { w, b, cfg } => {
                let xin = &exec.acts[node.inputs[0].0];
                let raw_weight = params.effective(*w);
                let weight = hooks.weight(*w, raw_weight.clone());
                let (dx, dw, db) =
                    depthwise_conv2d_backward(xin, &weight, &dy, *cfg).expect("dwconv2d bwd");
                let dw = hooks.weight_grad(*w, &raw_weight, dw);
                params.accumulate_grad(*w, &dw);
                params.accumulate_grad(*b, &db);
                accumulate(&mut grads, node.inputs[0], dx);
            }
            Op::Dense { w, b } => {
                let xin = &exec.acts[node.inputs[0].0];
                let raw_weight = params.effective(*w);
                let weight = hooks.weight(*w, raw_weight.clone());
                // y = x W^T + b; dW = dy^T x; dx = dy W; db = col-sums(dy)
                let dw = ops::matmul_at_b(&dy, xin).expect("dense dW");
                let dw = hooks.weight_grad(*w, &raw_weight, dw);
                let dx = ops::matmul(&dy, &weight).expect("dense dx");
                let (rows, cols) = (dy.dims()[0], dy.dims()[1]);
                let mut db = Tensor::zeros(&[cols]);
                for r in 0..rows {
                    for c in 0..cols {
                        db.data_mut()[c] += dy.data()[r * cols + c];
                    }
                }
                params.accumulate_grad(*w, &dw);
                params.accumulate_grad(*b, &db);
                accumulate(&mut grads, node.inputs[0], dx);
            }
            Op::Relu => {
                let xin = &exec.acts[node.inputs[0].0];
                let dx = dy.zip(xin, |g, x| if x > 0.0 { g } else { 0.0 });
                accumulate(&mut grads, node.inputs[0], dx);
            }
            Op::Add => {
                accumulate(&mut grads, node.inputs[0], dy.clone());
                accumulate(&mut grads, node.inputs[1], dy);
            }
            Op::Concat => {
                let mut offset = 0;
                let n = exec.batch;
                let dims = dy.dims().to_vec();
                let (c_total, hh, ww) = (dims[1], dims[2], dims[3]);
                for &inp in &node.inputs {
                    let ci = exec.acts[inp.0].dims()[1];
                    let mut slice = Tensor::zeros(&[n, ci, hh, ww]);
                    for ni in 0..n {
                        for cc in 0..ci {
                            let src = ((ni * c_total + offset + cc) * hh) * ww;
                            let dst = ((ni * ci + cc) * hh) * ww;
                            slice.data_mut()[dst..dst + hh * ww]
                                .copy_from_slice(&dy.data()[src..src + hh * ww]);
                        }
                    }
                    accumulate(&mut grads, inp, slice);
                    offset += ci;
                }
            }
            Op::MaxPool2d { .. } => {
                let arg = exec.pool_args[idx].as_ref().expect("pool argmax cache");
                let xin_dims = exec.acts[node.inputs[0].0].dims().to_vec();
                let dx = max_pool2d_backward(&dy, arg, &xin_dims);
                accumulate(&mut grads, node.inputs[0], dx);
            }
            Op::GlobalAvgPool => {
                let xin_dims = exec.acts[node.inputs[0].0].dims().to_vec();
                let dx = global_avg_pool_backward(&dy, &xin_dims);
                accumulate(&mut grads, node.inputs[0], dx);
            }
            Op::Flatten => {
                let xin_dims = exec.acts[node.inputs[0].0].dims().to_vec();
                let dx = dy.reshape(&xin_dims).expect("flatten bwd");
                accumulate(&mut grads, node.inputs[0], dx);
            }
        }
    }
    grads[0].take().unwrap_or_else(|| exec.acts[0].zeros_like())
}

/// Concatenates NCHW tensors along the channel axis.
fn concat_channels(xs: &[&Tensor]) -> Tensor {
    let n = xs[0].dims()[0];
    let (h, w) = (xs[0].dims()[2], xs[0].dims()[3]);
    let c_total: usize = xs.iter().map(|x| x.dims()[1]).sum();
    let mut out = Tensor::zeros(&[n, c_total, h, w]);
    let plane = h * w;
    let od = out.data_mut();
    for ni in 0..n {
        let mut c_off = 0;
        for x in xs {
            let ci = x.dims()[1];
            let src = ni * ci * plane;
            let dst = (ni * c_total + c_off) * plane;
            od[dst..dst + ci * plane].copy_from_slice(&x.data()[src..src + ci * plane]);
            c_off += ci;
        }
    }
    out
}

fn accumulate(grads: &mut [Option<Tensor>], node: NodeId, g: Tensor) {
    match &mut grads[node.0] {
        Some(existing) => existing.axpy(1.0, &g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_shapes_and_batch() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new([2, 6, 6], &mut rng);
        let x = b.input();
        let c = b.conv(x, 4, 3, 1, 1);
        let r = b.relu(c);
        let p = b.max_pool(r, 2, 2);
        let g = b.global_avg_pool(p);
        let d = b.dense(g, 5);
        let net = b.finish(d, Some(g));
        let input = Tensor::zeros(&[3, 2, 6, 6]);
        let exec = forward(net.graph(), net.params(), &input, &mut NoHooks);
        assert_eq!(exec.output(net.graph()).dims(), &[3, 5]);
        assert_eq!(exec.batch(), 3);
    }

    #[test]
    fn concat_layout() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[1, 1, 2, 2]);
        let c = concat_channels(&[&a, &b]);
        assert_eq!(c.dims(), &[1, 2, 2, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        // Batched: samples interleave channels correctly.
        let a2 = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 1, 2, 2]);
        let b2 = Tensor::from_vec((10..18).map(|v| v as f32).collect(), &[2, 1, 2, 2]);
        let c2 = concat_channels(&[&a2, &b2]);
        assert_eq!(
            c2.index_batch(0).data(),
            &[0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0]
        );
        assert_eq!(
            c2.index_batch(1).data(),
            &[4.0, 5.0, 6.0, 7.0, 14.0, 15.0, 16.0, 17.0]
        );
    }

    #[test]
    #[should_panic(expected = "does not match graph input shape")]
    fn wrong_input_shape_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new([2, 6, 6], &mut rng);
        let x = b.input();
        let g = b.global_avg_pool(x);
        let d = b.dense(g, 2);
        let net = b.finish(d, None);
        let bad = Tensor::zeros(&[1, 3, 6, 6]);
        let _ = forward(net.graph(), net.params(), &bad, &mut NoHooks);
    }
}
