//! Optimizers: SGD with momentum and Adam.
//!
//! Both respect pruning masks: after each update, masked entries are re-zeroed
//! so fine-tuning never resurrects pruned weights.

use diva_tensor::Tensor;

use crate::params::ParamStore;

/// Stochastic gradient descent with classical momentum and optional weight
/// decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Applies one update from the accumulated gradients, then zeroes them.
    pub fn step(&mut self, params: &mut ParamStore) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| p.value.zeros_like()).collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            let mut g = p.grad.clone();
            if self.weight_decay > 0.0 {
                g.axpy(self.weight_decay, &p.value);
            }
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                *v = v.scale(self.momentum);
                v.axpy(1.0, &g);
                p.value.axpy(-self.lr, v);
            } else {
                p.value.axpy(-self.lr, &g);
            }
            if let Some(mask) = p.mask.clone() {
                p.value = p.value.mul(&mask);
            }
            p.grad = p.value.zeros_like();
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u32,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Applies one update from the accumulated gradients, then zeroes them.
    pub fn step(&mut self, params: &mut ParamStore) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| p.value.zeros_like()).collect();
            self.v = params.iter().map(|p| p.value.zeros_like()).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let g = &p.grad;
            let m = &mut self.m[i];
            *m = m.scale(self.beta1);
            m.axpy(1.0 - self.beta1, g);
            let v = &mut self.v[i];
            *v = v.scale(self.beta2);
            v.axpy(1.0 - self.beta2, &g.mul(g));
            for j in 0..p.value.len() {
                let mh = m.data()[j] / bc1;
                let vh = v.data()[j] / bc2;
                p.value.data_mut()[j] -= self.lr * mh / (vh.sqrt() + self.eps);
            }
            if let Some(mask) = p.mask.clone() {
                p.value = p.value.mul(&mask);
            }
            p.grad = p.value.zeros_like();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store() -> ParamStore {
        // One scalar parameter starting at 5; objective f(w) = w^2 / 2,
        // so grad = w.
        let mut s = ParamStore::new();
        s.push(Tensor::from_vec(vec![5.0], &[1]));
        s
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut s = quadratic_store();
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        for _ in 0..100 {
            let w = s.get(crate::graph::ParamId(0)).value.clone();
            s.accumulate_grad(crate::graph::ParamId(0), &w);
            opt.step(&mut s);
        }
        assert!(s.get(crate::graph::ParamId(0)).value.data()[0].abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut s = quadratic_store();
            let mut opt = Sgd::new(0.01, momentum, 0.0);
            for _ in 0..50 {
                let w = s.get(crate::graph::ParamId(0)).value.clone();
                s.accumulate_grad(crate::graph::ParamId(0), &w);
                opt.step(&mut s);
            }
            s.get(crate::graph::ParamId(0)).value.data()[0].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut s = quadratic_store();
        let mut opt = Adam::new(0.2);
        for _ in 0..200 {
            let w = s.get(crate::graph::ParamId(0)).value.clone();
            s.accumulate_grad(crate::graph::ParamId(0), &w);
            opt.step(&mut s);
        }
        assert!(s.get(crate::graph::ParamId(0)).value.data()[0].abs() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut s = quadratic_store();
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        // Zero task gradient; only decay acts.
        opt.step(&mut s);
        let w = s.get(crate::graph::ParamId(0)).value.data()[0];
        assert!((w - 5.0 * (1.0 - 0.1 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn masked_entries_stay_zero() {
        let mut s = ParamStore::new();
        let id = s.push(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        s.get_mut(id).mask = Some(Tensor::from_vec(vec![1.0, 0.0], &[2]));
        s.get_mut(id).value = s.effective(id);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        for _ in 0..5 {
            s.accumulate_grad(id, &Tensor::from_vec(vec![1.0, 1.0], &[2]));
            opt.step(&mut s);
        }
        assert_eq!(s.get(id).value.data()[1], 0.0);
        let mut adam = Adam::new(0.1);
        for _ in 0..5 {
            s.accumulate_grad(id, &Tensor::from_vec(vec![1.0, 1.0], &[2]));
            adam.step(&mut s);
        }
        assert_eq!(s.get(id).value.data()[1], 0.0);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut s = quadratic_store();
        s.accumulate_grad(crate::graph::ParamId(0), &Tensor::ones(&[1]));
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.step(&mut s);
        assert_eq!(s.get(crate::graph::ParamId(0)).grad.sum(), 0.0);
    }
}
