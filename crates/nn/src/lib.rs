//! `diva-nn` — a small graph-IR neural-network framework with reverse-mode
//! autodiff, built for the DIVA reproduction.
//!
//! The paper's attack needs three things from its ML framework:
//!
//! 1. differentiable inference through *two* models (gradients w.r.t. the
//!    **input image**, not just the weights) — see [`Network::backward`],
//!    which returns the input gradient;
//! 2. an op set covering the ResNet / MobileNet / DenseNet families
//!    (convolution, depthwise convolution, residual add, channel concat,
//!    pooling, dense) — see [`graph::Op`];
//! 3. a place to interpose quantization (fake-quant forward, straight-through
//!    backward) without forking the executor — see [`exec::Hooks`], which the
//!    `diva-quant` crate implements.
//!
//! A model is a [`graph::Graph`] (pure structure) plus a [`params::ParamStore`]
//! (values, gradients, pruning masks), bundled as a [`Network`].
//!
//! ```
//! use diva_nn::{Infer, Network, graph::GraphBuilder};
//! use diva_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut b = GraphBuilder::new([1, 4, 4], &mut rng);
//! let x = b.input();
//! let c = b.conv(x, 2, 3, 1, 1);
//! let r = b.relu(c);
//! let g = b.global_avg_pool(r);
//! let out = b.dense(g, 3);
//! let net: Network = b.finish(out, Some(g));
//! let logits = net.logits(&Tensor::zeros(&[2, 1, 4, 4]));
//! assert_eq!(logits.dims(), &[2, 3]);
//! ```

pub mod exec;
pub mod graph;
pub mod losses;
pub mod network;
pub mod optim;
pub mod params;
pub mod persist;
pub mod train;

pub use exec::{Execution, Hooks, NoHooks};
pub use graph::{Graph, GraphBuilder, NodeId, Op, ParamId};
pub use network::{Infer, Network};
pub use params::{Param, ParamStore};
