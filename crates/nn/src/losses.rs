//! Loss functions and their logit-space gradients.
//!
//! Every loss returns `(value, d_value/d_logits)` so callers can seed
//! [`crate::exec::backward`] directly. Attacks additionally use the
//! probability-of-label gradient ([`prob_of_label_grad`]) and the CW margin
//! ([`cw_margin`]).

use diva_tensor::ops::{log_softmax_rows, softmax_rows};
use diva_tensor::Tensor;

/// Mean softmax cross-entropy over a batch.
///
/// `logits` is `[n, c]`; `labels[i]` is the class index of sample `i`.
/// Returns the scalar loss and its gradient w.r.t. `logits` (already divided
/// by the batch size).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or a label is out of
/// range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    let log_p = log_softmax_rows(logits);
    let p = softmax_rows(logits);
    let mut loss = 0.0;
    let mut grad = p;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        loss -= log_p.data()[i * c + y];
        grad.data_mut()[i * c + y] -= 1.0;
    }
    let inv_n = 1.0 / n as f32;
    (loss * inv_n, grad.scale(inv_n))
}

/// Mean KL divergence `KL(teacher ‖ student)` with temperature `t`, the
/// distillation loss of Hinton et al. used for surrogate reconstruction.
///
/// Both inputs are raw logits `[n, c]`. Returns the scalar loss and its
/// gradient w.r.t. the **student** logits. The gradient carries the standard
/// `t^2` correction so its scale is comparable to the hard-label loss.
pub fn distillation_kl(student_logits: &Tensor, teacher_logits: &Tensor, t: f32) -> (f32, Tensor) {
    assert_eq!(
        student_logits.dims(),
        teacher_logits.dims(),
        "student/teacher logits shape mismatch"
    );
    let (n, c) = (student_logits.dims()[0], student_logits.dims()[1]);
    let ps = softmax_rows(&student_logits.scale(1.0 / t));
    let log_ps = log_softmax_rows(&student_logits.scale(1.0 / t));
    let pt = softmax_rows(&teacher_logits.scale(1.0 / t));
    let log_pt = log_softmax_rows(&teacher_logits.scale(1.0 / t));
    let mut loss = 0.0;
    for i in 0..n * c {
        let q = pt.data()[i];
        if q > 0.0 {
            loss += q * (log_pt.data()[i] - log_ps.data()[i]);
        }
    }
    // dKL/d(student logit) = (ps - pt) / t; times t^2 correction = t*(ps-pt)
    let grad = ps.sub(&pt).scale(t / n as f32);
    (loss / n as f32, grad)
}

/// Gradient of the mean predicted probability of each sample's label w.r.t.
/// the logits: `d(mean_i p_i[y_i]) / d logits`.
///
/// This is the building block of the DIVA loss (Eq. 5 uses *raw
/// probabilities*, not log-probabilities). For row `i`:
/// `d p[y] / d z_j = p[y] (δ_{jy} − p_j)`.
pub fn prob_of_label_grad(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    let p = softmax_rows(logits);
    let mut value = 0.0;
    let mut grad = Tensor::zeros(&[n, c]);
    for (i, &y) in labels.iter().enumerate() {
        let py = p.data()[i * c + y];
        value += py;
        for j in 0..c {
            let delta = if j == y { 1.0 } else { 0.0 };
            grad.data_mut()[i * c + j] = py * (delta - p.data()[i * c + j]);
        }
    }
    let inv_n = 1.0 / n as f32;
    (value * inv_n, grad.scale(inv_n))
}

/// The Carlini–Wagner margin `max(z_y − max_{j≠y} z_j, −κ)` averaged over the
/// batch, with its gradient w.r.t. the logits.
///
/// An attacker *minimises* this (drives the true-class logit below the
/// runner-up); equivalently PGD ascends its negation — which is what
/// `diva-core` does, following the CW-loss-inside-PGD setup of Madry et al.
pub fn cw_margin(logits: &Tensor, labels: &[usize], kappa: f32) -> (f32, Tensor) {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    let mut value = 0.0;
    let mut grad = Tensor::zeros(&[n, c]);
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let zy = row[y];
        let (mut best_j, mut best) = (usize::MAX, f32::NEG_INFINITY);
        for (j, &z) in row.iter().enumerate() {
            if j != y && z > best {
                best = z;
                best_j = j;
            }
        }
        let margin = zy - best;
        if margin > -kappa {
            value += margin;
            grad.data_mut()[i * c + y] = 1.0;
            grad.data_mut()[i * c + best_j] = -1.0;
        } else {
            value += -kappa; // clamped: zero gradient
        }
    }
    let inv_n = 1.0 / n as f32;
    (value * inv_n, grad.scale(inv_n))
}

/// Mean squared distance between the softmax of `logits` and the one-hot
/// vector of `target`, with gradient w.r.t. logits.
///
/// Used by the targeted DIVA variant (§6) to pull the adapted model toward a
/// chosen identity.
pub fn onehot_distance(logits: &Tensor, target: usize) -> (f32, Tensor) {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert!(target < c, "target {target} out of range for {c} classes");
    let p = softmax_rows(logits);
    let mut value = 0.0;
    let mut dp = Tensor::zeros(&[n, c]);
    for i in 0..n {
        for j in 0..c {
            let t = if j == target { 1.0 } else { 0.0 };
            let d = p.data()[i * c + j] - t;
            value += d * d;
            dp.data_mut()[i * c + j] = 2.0 * d;
        }
    }
    // Chain through softmax: dL/dz_k = p_k * (dp_k - sum_j dp_j p_j)
    let mut grad = Tensor::zeros(&[n, c]);
    for i in 0..n {
        let dot: f32 = (0..c)
            .map(|j| dp.data()[i * c + j] * p.data()[i * c + j])
            .sum();
        for k in 0..c {
            grad.data_mut()[i * c + k] = p.data()[i * c + k] * (dp.data()[i * c + k] - dot);
        }
    }
    let inv_n = 1.0 / n as f32;
    (value * inv_n, grad.scale(inv_n))
}

/// Top-1 accuracy of `logits` against `labels`.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let n = logits.dims()[0];
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    if n == 0 {
        return 0.0;
    }
    let correct = (0..n)
        .filter(|&i| logits.row(i).argmax() == Some(labels[i]))
        .count();
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(&Tensor) -> f32, logits: &Tensor, analytic: &Tensor, tol: f32) {
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (f(&lp) - f(&lm)) / (2.0 * eps);
            assert!(
                (num - analytic.data()[i]).abs() < tol,
                "grad[{i}]: numeric {num} vs analytic {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_gradient_checks() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.2, -0.4], &[2, 3]);
        let labels = [2usize, 0];
        let (_, g) = cross_entropy(&logits, &labels);
        finite_diff(|l| cross_entropy(l, &labels).0, &logits, &g, 1e-3);
    }

    #[test]
    fn cross_entropy_perfect_prediction_small_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]);
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
        let (bad_loss, _) = cross_entropy(&logits, &[1]);
        assert!(bad_loss > 5.0);
    }

    #[test]
    fn prob_of_label_gradient_checks() {
        let logits = Tensor::from_vec(vec![0.3, 1.0, -0.7, 0.0, 0.5, 0.9], &[2, 3]);
        let labels = [1usize, 2];
        let (v, g) = prob_of_label_grad(&logits, &labels);
        assert!(v > 0.0 && v < 1.0);
        finite_diff(|l| prob_of_label_grad(l, &labels).0, &logits, &g, 1e-3);
    }

    #[test]
    fn distillation_kl_gradient_checks() {
        let s = Tensor::from_vec(vec![0.1, 0.9, -0.5, 0.3, -0.2, 0.8], &[2, 3]);
        let t = Tensor::from_vec(vec![1.0, 0.0, 0.0, -0.5, 0.5, 0.2], &[2, 3]);
        let (v, g) = distillation_kl(&s, &t, 2.0);
        assert!(v >= 0.0, "KL must be non-negative, got {v}");
        // d(loss*t^2)/ds checked against numeric derivative of loss*t^2
        finite_diff(|l| distillation_kl(l, &t, 2.0).0 * 4.0, &s, &g, 2e-3);
    }

    #[test]
    fn kl_zero_when_identical() {
        let s = Tensor::from_vec(vec![0.4, -0.6, 1.2], &[1, 3]);
        let (v, g) = distillation_kl(&s, &s, 1.0);
        assert!(v.abs() < 1e-6);
        assert!(g.norm_inf() < 1e-6);
    }

    #[test]
    fn cw_margin_gradient_and_clamp() {
        let logits = Tensor::from_vec(vec![2.0, 1.0, -1.0], &[1, 3]);
        let (v, g) = cw_margin(&logits, &[0], 0.0);
        assert!((v - 1.0).abs() < 1e-6); // z0 - z1 = 1
        assert_eq!(g.data(), &[1.0, -1.0, 0.0]);
        // Clamped region: margin below -kappa gives zero grad.
        let logits2 = Tensor::from_vec(vec![-5.0, 1.0, 0.0], &[1, 3]);
        let (v2, g2) = cw_margin(&logits2, &[0], 2.0);
        assert!((v2 + 2.0).abs() < 1e-6);
        assert_eq!(g2.norm_inf(), 0.0);
    }

    #[test]
    fn onehot_distance_gradient_checks() {
        let logits = Tensor::from_vec(vec![0.2, -0.3, 0.8, 0.0], &[1, 4]);
        let (_, g) = onehot_distance(&logits, 2);
        finite_diff(|l| onehot_distance(l, 2).0, &logits, &g, 1e-3);
    }

    #[test]
    fn onehot_distance_minimised_at_target() {
        let good = Tensor::from_vec(vec![-10.0, 10.0], &[1, 2]);
        let bad = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]);
        assert!(onehot_distance(&good, 1).0 < onehot_distance(&bad, 1).0);
    }

    #[test]
    fn accuracy_counts() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 2]), &[]), 0.0);
    }
}
