//! Training loop utilities shared by fp32 training, QAT fine-tuning,
//! pruning fine-tuning, and distillation.

use diva_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::exec::{self, NoHooks};
use crate::losses;
use crate::network::{Infer, Network};
use crate::optim::Sgd;

/// Gradient-shard size for data-parallel training, from `DIVA_GRAD_SHARD`.
///
/// The default (`None`) is one shard per minibatch: the whole-batch
/// forward/backward, bit-identical to the historical serial loop — sharding
/// changes the float summation order of the accumulated gradient, which
/// shifts long training trajectories, so it must be opted into. When set,
/// the shard size is fixed (independent of the worker count) so the shard
/// boundaries — and therefore the fixed-order float reduction of the shard
/// gradients — are identical for every `DIVA_JOBS` setting. See
/// DESIGN.md §7.
fn grad_shard() -> Option<usize> {
    std::env::var("DIVA_GRAD_SHARD")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&s| s >= 1)
}

/// Configuration of a supervised training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCfg {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Default for TrainCfg {
    fn default() -> Self {
        TrainCfg {
            epochs: 4,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f32,
}

/// Yields shuffled mini-batch index ranges over `n` samples.
pub fn shuffled_batches(n: usize, batch_size: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.chunks(batch_size.max(1)).map(|c| c.to_vec()).collect()
}

/// Gathers samples `idx` from a batched tensor into a new batch.
pub fn gather(x: &Tensor, idx: &[usize]) -> Tensor {
    let samples: Vec<Tensor> = idx.iter().map(|&i| x.index_batch(i)).collect();
    Tensor::stack(&samples)
}

/// Gathers labels `idx`.
pub fn gather_labels(labels: &[usize], idx: &[usize]) -> Vec<usize> {
    idx.iter().map(|&i| labels[i]).collect()
}

/// Trains `net` with softmax cross-entropy on `(images, labels)`.
///
/// Returns per-epoch statistics. Deterministic given `rng`.
pub fn train_classifier(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    cfg: &TrainCfg,
    rng: &mut StdRng,
) -> Vec<EpochStats> {
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "labels/images mismatch");
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let shard = grad_shard();
    let mut stats = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut loss_sum = 0.0;
        let mut correct = 0usize;
        let batches = shuffled_batches(n, cfg.batch_size, rng);
        for batch in &batches {
            let (batch_loss, batch_correct) =
                train_step(net, images, labels, batch, &mut opt, shard);
            loss_sum += batch_loss;
            correct += batch_correct;
        }
        stats.push(EpochStats {
            loss: loss_sum / n as f32,
            accuracy: correct as f32 / n as f32,
        });
    }
    stats
}

/// One optimizer step on `batch`, with the forward/backward fanned out over
/// fixed-size gradient shards (diva-par; shard size from `DIVA_GRAD_SHARD`,
/// default one shard = the exact whole-batch computation).
///
/// Each shard runs an independent forward + backward into a scratch copy of
/// the parameter store, with its mean cross-entropy gradient rescaled by
/// `shard_len / batch_len` so the shard gradients *sum* to the whole-batch
/// mean gradient. The shard gradients are then reduced into the live
/// parameter store in shard order — a fixed-order reduction over fixed
/// shard boundaries, so the accumulated gradient (and everything downstream
/// of it) is bit-identical for every worker count.
///
/// Returns `(summed loss, correct count)` for the batch.
fn train_step(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    batch: &[usize],
    opt: &mut Sgd,
    shard: Option<usize>,
) -> (f32, usize) {
    let b = batch.len();
    let shards: Vec<&[usize]> = batch.chunks(shard.unwrap_or(b).min(b).max(1)).collect();
    let shard_results = {
        let graph = net.graph();
        let params = net.params();
        diva_par::par_map_indexed(shards.len(), |s| {
            let idx = shards[s];
            let x = gather(images, idx);
            let y = gather_labels(labels, idx);
            let exec = exec::forward(graph, params, &x, &mut NoHooks);
            let logits = exec.output(graph).clone();
            let (loss, dlogits) = losses::cross_entropy(&logits, &y);
            let shard_correct = (0..idx.len())
                .filter(|&i| logits.row(i).argmax() == Some(y[i]))
                .count();
            // cross_entropy averages over its batch; rescale so the shard
            // gradients sum to the whole-batch mean gradient.
            let dlogits = dlogits.scale(idx.len() as f32 / b as f32);
            let mut scratch = params.clone();
            scratch.zero_grads();
            exec::backward(graph, &mut scratch, &exec, &dlogits, &NoHooks);
            let grads: Vec<Tensor> = scratch.iter().map(|p| p.grad.clone()).collect();
            (loss * idx.len() as f32, shard_correct, grads)
        })
    };
    let mut loss_sum = 0.0;
    let mut correct = 0usize;
    // Fixed-order reduction: shard s always folds in before shard s+1.
    for (shard_loss, shard_correct, grads) in &shard_results {
        loss_sum += shard_loss;
        correct += shard_correct;
        for (p, g) in net.params_mut().iter_mut().zip(grads) {
            p.grad.axpy(1.0, g);
        }
    }
    // Divergence guard: a non-finite batch loss or gradient would poison
    // the parameters through the optimizer and every step after it. Skip
    // the update (zeroing the accumulated gradient) and keep training on
    // the remaining batches instead of propagating NaN to the whole run.
    // On healthy runs both checks pass and nothing changes bit-wise.
    let grads_finite = || {
        net.params()
            .iter()
            .all(|p| p.grad.data().iter().all(|v| v.is_finite()))
    };
    if !loss_sum.is_finite() || !grads_finite() {
        net.params_mut().zero_grads();
        diva_trace::counter!("train.steps_skipped_nonfinite", 1);
        diva_trace::event!(
            1,
            "train.step_skipped",
            reason = "non-finite loss or gradient",
            batch = b,
        );
        return (0.0, correct);
    }
    opt.step(net.params_mut());
    (loss_sum, correct)
}

/// Evaluates top-1 accuracy of any [`Infer`] implementation, with fixed
/// 64-sample chunks fanned out across diva-par workers. Chunk boundaries
/// (and the integer reduction) are independent of the worker count, so the
/// result is identical for every `DIVA_JOBS` setting.
pub fn evaluate<M: Infer + Sync + ?Sized>(model: &M, images: &Tensor, labels: &[usize]) -> f32 {
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "labels/images mismatch");
    if n == 0 {
        return 0.0;
    }
    let chunks = diva_par::fixed_chunks(n, 64);
    let per_chunk = diva_par::par_map_indexed(chunks.len(), |c| {
        let (lo, hi) = chunks[c];
        let idx: Vec<usize> = (lo..hi).collect();
        let x = gather(images, &idx);
        let logits = model.logits(&x);
        (0..idx.len())
            .filter(|&j| logits.row(j).argmax() == Some(labels[lo + j]))
            .count()
    });
    per_chunk.iter().sum::<usize>() as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::SeedableRng;

    /// Two linearly separable blobs rendered as 1x4x4 "images".
    fn blob_data(rng: &mut StdRng, n: usize) -> (Tensor, Vec<usize>) {
        use rand::Rng;
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { 0.2 } else { 0.8 };
            let img: Vec<f32> = (0..16)
                .map(|_| (base + rng.gen_range(-0.1..0.1f32)).clamp(0.0, 1.0))
                .collect();
            images.push(Tensor::from_vec(img, &[1, 4, 4]));
            labels.push(class);
        }
        (Tensor::stack(&images), labels)
    }

    fn tiny_net(rng: &mut StdRng) -> Network {
        let mut b = GraphBuilder::new([1, 4, 4], rng);
        let x = b.input();
        let c = b.conv(x, 4, 3, 1, 1);
        let r = b.relu(c);
        let g = b.global_avg_pool(r);
        let d = b.dense(g, 2);
        b.finish(d, Some(g))
    }

    #[test]
    fn training_learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(42);
        let (images, labels) = blob_data(&mut rng, 64);
        let mut net = tiny_net(&mut rng);
        let cfg = TrainCfg {
            epochs: 20,
            batch_size: 16,
            lr: 0.5,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let stats = train_classifier(&mut net, &images, &labels, &cfg, &mut rng);
        let acc = evaluate(&net, &images, &labels);
        assert!(
            acc > 0.95,
            "expected near-perfect separation, got {acc} (last epoch: {:?})",
            stats.last()
        );
        // Loss decreased overall.
        assert!(stats.last().unwrap().loss < stats[0].loss);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            let (images, labels) = blob_data(&mut rng, 32);
            let mut net = tiny_net(&mut rng);
            let cfg = TrainCfg {
                epochs: 3,
                ..TrainCfg::default()
            };
            train_classifier(&mut net, &images, &labels, &cfg, &mut rng);
            net.logits(&images.index_batch(0).reshape(&[1, 1, 4, 4]).unwrap())
        };
        let a = run();
        let b = run();
        assert!(a.allclose(&b, 0.0));
    }

    /// One `train_step` with explicit sharding, returning the updated
    /// parameter values flattened.
    fn step_params(shard: Option<usize>, jobs: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(11);
        let (images, labels) = blob_data(&mut rng, 24);
        let mut net = tiny_net(&mut rng);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let batch: Vec<usize> = (0..24).collect();
        diva_par::set_jobs(jobs);
        train_step(&mut net, &images, &labels, &batch, &mut opt, shard);
        diva_par::set_jobs(0);
        net.params()
            .iter()
            .flat_map(|p| p.value.data().to_vec())
            .collect()
    }

    #[test]
    fn sharded_step_is_identical_across_job_counts() {
        // The fixed-order-reduction rule (DESIGN.md §7): shard boundaries
        // and the reduction order are independent of the worker count, so
        // the updated parameters are bit-identical.
        let serial = step_params(Some(8), 1);
        let threaded = step_params(Some(8), 4);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn single_shard_matches_whole_batch_exactly() {
        // `None` (the default) and an over-large explicit shard are the
        // same whole-batch computation, bit for bit.
        assert_eq!(step_params(None, 1), step_params(Some(1024), 4));
    }

    #[test]
    fn sharded_gradient_tracks_whole_batch() {
        // Sharding only reorders the float summation of per-sample
        // gradients, so one step lands within float-accumulation noise of
        // the whole-batch step (exact equality is NOT expected).
        let whole = step_params(None, 1);
        let sharded = step_params(Some(8), 4);
        assert_eq!(whole.len(), sharded.len());
        for (i, (a, b)) in whole.iter().zip(&sharded).enumerate() {
            assert!(
                (a - b).abs() <= 1e-5 * (1.0 + a.abs()),
                "param value [{i}] diverged: whole-batch {a} vs sharded {b}"
            );
        }
    }

    #[test]
    fn shuffled_batches_cover_everything() {
        let mut rng = StdRng::seed_from_u64(0);
        let batches = shuffled_batches(10, 3, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn gather_selects_samples() {
        let x = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]);
        let g = gather(&x, &[2, 0]);
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(gather_labels(&[9, 8, 7], &[2, 0]), vec![7, 9]);
    }
}
