//! Training loop utilities shared by fp32 training, QAT fine-tuning,
//! pruning fine-tuning, and distillation.

use diva_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::losses;
use crate::network::{Infer, Network};
use crate::optim::Sgd;

/// Configuration of a supervised training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCfg {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Default for TrainCfg {
    fn default() -> Self {
        TrainCfg {
            epochs: 4,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f32,
}

/// Yields shuffled mini-batch index ranges over `n` samples.
pub fn shuffled_batches(n: usize, batch_size: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.chunks(batch_size.max(1)).map(|c| c.to_vec()).collect()
}

/// Gathers samples `idx` from a batched tensor into a new batch.
pub fn gather(x: &Tensor, idx: &[usize]) -> Tensor {
    let samples: Vec<Tensor> = idx.iter().map(|&i| x.index_batch(i)).collect();
    Tensor::stack(&samples)
}

/// Gathers labels `idx`.
pub fn gather_labels(labels: &[usize], idx: &[usize]) -> Vec<usize> {
    idx.iter().map(|&i| labels[i]).collect()
}

/// Trains `net` with softmax cross-entropy on `(images, labels)`.
///
/// Returns per-epoch statistics. Deterministic given `rng`.
pub fn train_classifier(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    cfg: &TrainCfg,
    rng: &mut StdRng,
) -> Vec<EpochStats> {
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "labels/images mismatch");
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let mut stats = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut loss_sum = 0.0;
        let mut correct = 0usize;
        let batches = shuffled_batches(n, cfg.batch_size, rng);
        for batch in &batches {
            let x = gather(images, batch);
            let y = gather_labels(labels, batch);
            let exec = net.forward(&x);
            let logits = exec.output(net.graph()).clone();
            let (loss, dlogits) = losses::cross_entropy(&logits, &y);
            loss_sum += loss * batch.len() as f32;
            correct += (0..batch.len())
                .filter(|&i| logits.row(i).argmax() == Some(y[i]))
                .count();
            net.backward(&exec, &dlogits);
            opt.step(net.params_mut());
        }
        stats.push(EpochStats {
            loss: loss_sum / n as f32,
            accuracy: correct as f32 / n as f32,
        });
    }
    stats
}

/// Evaluates top-1 accuracy of any [`Infer`] implementation, batched.
pub fn evaluate<M: Infer + ?Sized>(model: &M, images: &Tensor, labels: &[usize]) -> f32 {
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "labels/images mismatch");
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    let bs = 64;
    let mut i = 0;
    while i < n {
        let hi = (i + bs).min(n);
        let idx: Vec<usize> = (i..hi).collect();
        let x = gather(images, &idx);
        let logits = model.logits(&x);
        correct += (0..idx.len())
            .filter(|&j| logits.row(j).argmax() == Some(labels[i + j]))
            .count();
        i = hi;
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::SeedableRng;

    /// Two linearly separable blobs rendered as 1x4x4 "images".
    fn blob_data(rng: &mut StdRng, n: usize) -> (Tensor, Vec<usize>) {
        use rand::Rng;
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { 0.2 } else { 0.8 };
            let img: Vec<f32> = (0..16)
                .map(|_| (base + rng.gen_range(-0.1..0.1f32)).clamp(0.0, 1.0))
                .collect();
            images.push(Tensor::from_vec(img, &[1, 4, 4]));
            labels.push(class);
        }
        (Tensor::stack(&images), labels)
    }

    fn tiny_net(rng: &mut StdRng) -> Network {
        let mut b = GraphBuilder::new([1, 4, 4], rng);
        let x = b.input();
        let c = b.conv(x, 4, 3, 1, 1);
        let r = b.relu(c);
        let g = b.global_avg_pool(r);
        let d = b.dense(g, 2);
        b.finish(d, Some(g))
    }

    #[test]
    fn training_learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(42);
        let (images, labels) = blob_data(&mut rng, 64);
        let mut net = tiny_net(&mut rng);
        let cfg = TrainCfg {
            epochs: 20,
            batch_size: 16,
            lr: 0.5,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let stats = train_classifier(&mut net, &images, &labels, &cfg, &mut rng);
        let acc = evaluate(&net, &images, &labels);
        assert!(
            acc > 0.95,
            "expected near-perfect separation, got {acc} (last epoch: {:?})",
            stats.last()
        );
        // Loss decreased overall.
        assert!(stats.last().unwrap().loss < stats[0].loss);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            let (images, labels) = blob_data(&mut rng, 32);
            let mut net = tiny_net(&mut rng);
            let cfg = TrainCfg {
                epochs: 3,
                ..TrainCfg::default()
            };
            train_classifier(&mut net, &images, &labels, &cfg, &mut rng);
            net.logits(&images.index_batch(0).reshape(&[1, 1, 4, 4]).unwrap())
        };
        let a = run();
        let b = run();
        assert!(a.allclose(&b, 0.0));
    }

    #[test]
    fn shuffled_batches_cover_everything() {
        let mut rng = StdRng::seed_from_u64(0);
        let batches = shuffled_batches(10, 3, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn gather_selects_samples() {
        let x = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]);
        let g = gather(&x, &[2, 0]);
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(gather_labels(&[9, 8, 7], &[2, 0]), vec![7, 9]);
    }
}
