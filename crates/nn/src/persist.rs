//! Model persistence: save/load a [`Network`] as a checksummed model file.
//!
//! The deployment story of the paper runs through model files — the operator
//! pushes adapted model files to devices, and the attacker reads one back
//! (§4.3). This module provides the fp32 side; `diva-quant` persists the
//! deployed int8 engine through the same envelope.
//!
//! # File format
//!
//! A model file is a one-line JSON header followed by the JSON payload:
//!
//! ```text
//! {"format":"diva-model","version":1,"kind":"network","len":N,"crc":"<fnv1a64 hex>"}
//! <payload JSON, N bytes>
//! ```
//!
//! The header pins the envelope version and the payload kind, and carries
//! the payload's length and FNV-1a 64 checksum, so truncation, bit rot, and
//! wrong-kind/wrong-version files are all rejected with a typed
//! [`PersistError::Format`] — never a panic — before the payload is parsed.
//! Writes go to a tmp sibling and are renamed into place, so a crash
//! mid-save leaves the old file (or none), never a torn one. Armed
//! `DIVA_FAULT` file faults corrupt the on-disk image at this layer (see
//! `diva-fault`), which is exactly what the load-side checks must catch.

use std::path::Path;

use serde::Deserialize;

use crate::Network;

/// Envelope version written by [`save_versioned`].
pub const FORMAT_VERSION: u32 = 1;

/// Errors from model persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed model file; the message says which check failed.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file I/O error: {e}"),
            PersistError::Format(m) => write!(f, "malformed model file: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e.to_string())
    }
}

#[derive(Deserialize)]
struct Header {
    format: String,
    version: u32,
    kind: String,
    len: usize,
    crc: String,
}

/// Writes `payload` to `path` inside the versioned envelope, atomically
/// (tmp sibling + rename). `kind` tags what the payload is (`"network"`,
/// `"int8-engine"`, ...) and is checked on load.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failures.
pub fn save_versioned(
    path: impl AsRef<Path>,
    kind: &str,
    payload: &str,
) -> Result<(), PersistError> {
    let path = path.as_ref();
    let header = format!(
        "{{\"format\":\"diva-model\",\"version\":{FORMAT_VERSION},\"kind\":\"{kind}\",\
         \"len\":{},\"crc\":\"{:016x}\"}}\n",
        payload.len(),
        diva_fault::fnv1a64(payload.as_bytes()),
    );
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(payload.as_bytes());
    diva_fault::corrupt_file_bytes(&mut bytes);
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "model".into());
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, &bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e.into())
        }
    }
}

/// Reads a model file written by [`save_versioned`], returning the verified
/// payload.
///
/// # Errors
///
/// Returns [`PersistError::Io`] when the file cannot be read and
/// [`PersistError::Format`] when the header is missing or malformed, the
/// envelope version or `kind` does not match, the payload is truncated, or
/// the checksum disagrees.
pub fn load_versioned(path: impl AsRef<Path>, kind: &str) -> Result<String, PersistError> {
    let text = std::fs::read_to_string(path.as_ref())?;
    let (header_line, payload) = text
        .split_once('\n')
        .ok_or_else(|| PersistError::Format("missing header line".into()))?;
    let header: Header = serde_json::from_str(header_line)
        .map_err(|e| PersistError::Format(format!("bad header: {e}")))?;
    if header.format != "diva-model" {
        return Err(PersistError::Format(format!(
            "not a diva model file (format `{}`)",
            header.format
        )));
    }
    if header.version != FORMAT_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported envelope version {} (expected {FORMAT_VERSION})",
            header.version
        )));
    }
    if header.kind != kind {
        return Err(PersistError::Format(format!(
            "kind mismatch: file holds `{}`, expected `{kind}`",
            header.kind
        )));
    }
    if header.len != payload.len() {
        return Err(PersistError::Format(format!(
            "length mismatch: header says {}, file holds {} (truncated?)",
            header.len,
            payload.len()
        )));
    }
    let got = format!("{:016x}", diva_fault::fnv1a64(payload.as_bytes()));
    if got != header.crc {
        return Err(PersistError::Format(format!(
            "checksum mismatch: header {}, payload {got}",
            header.crc
        )));
    }
    Ok(payload.to_string())
}

impl Network {
    /// Writes the network (graph + parameters + masks) to a checksummed
    /// model file (see the module docs for the envelope).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let json = serde_json::to_string(self)?;
        save_versioned(path, "network", &json)
    }

    /// Reads a network back from a model file written by [`Network::save`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failures and
    /// [`PersistError::Format`] if the envelope or payload is not a valid
    /// model.
    pub fn load(path: impl AsRef<Path>) -> Result<Network, PersistError> {
        let json = load_versioned(path, "network")?;
        Ok(serde_json::from_str(&json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::Infer;
    use diva_tensor::Tensor;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new([1, 4, 4], &mut rng);
        let x = b.input();
        let c = b.conv(x, 3, 3, 1, 1);
        let g = b.global_avg_pool(c);
        let d = b.dense(g, 2);
        b.finish(d, Some(g))
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("diva_nn_persist_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let net = tiny_net();
        let path = tmp_dir("roundtrip").join("model.json");
        net.save(&path).unwrap();
        let back = Network::load(&path).unwrap();
        assert_eq!(&back, &net);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        assert_eq!(back.logits(&x), net.logits(&x));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp_dir("garbage").join("garbage.json");
        std::fs::write(&path, "not a model").unwrap();
        assert!(matches!(Network::load(&path), Err(PersistError::Format(_))));
        std::fs::write(&path, "not a header\nnot a payload").unwrap();
        assert!(matches!(Network::load(&path), Err(PersistError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        assert!(matches!(
            Network::load("/nonexistent/diva/model.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn truncated_file_is_format_error_not_panic() {
        let net = tiny_net();
        let path = tmp_dir("trunc").join("model.json");
        net.save(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        for keep in [full.len() - 1, full.len() / 2, full.find('\n').unwrap() + 3] {
            std::fs::write(&path, &full[..keep]).unwrap();
            assert!(
                matches!(Network::load(&path), Err(PersistError::Format(_))),
                "truncation to {keep} bytes must be a Format error"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_payload_byte_is_format_error() {
        let net = tiny_net();
        let path = tmp_dir("flip").join("model.json");
        net.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let at = header_end + (bytes.len() - header_end) / 2;
        bytes[at] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Network::load(&path), Err(PersistError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_and_wrong_kind_are_format_errors() {
        let net = tiny_net();
        let path = tmp_dir("version").join("model.json");
        net.save(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        let (_, payload) = full.split_once('\n').unwrap();

        // Same valid payload under a future envelope version.
        let crc = format!("{:016x}", diva_fault::fnv1a64(payload.as_bytes()));
        let futuristic = format!(
            "{{\"format\":\"diva-model\",\"version\":99,\"kind\":\"network\",\
             \"len\":{},\"crc\":\"{crc}\"}}\n{payload}",
            payload.len()
        );
        std::fs::write(&path, futuristic).unwrap();
        match Network::load(&path) {
            Err(PersistError::Format(m)) => assert!(m.contains("version"), "msg: {m}"),
            other => panic!("expected Format error, got {other:?}"),
        }

        // Right envelope, wrong payload kind.
        save_versioned(&path, "int8-engine", payload).unwrap();
        match Network::load(&path) {
            Err(PersistError::Format(m)) => assert!(m.contains("kind"), "msg: {m}"),
            other => panic!("expected Format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_over_existing_file() {
        let net = tiny_net();
        let path = tmp_dir("atomic").join("model.json");
        net.save(&path).unwrap();
        // Overwrite through the same path; the tmp sibling must be gone and
        // the file must load.
        net.save(&path).unwrap();
        assert!(Network::load(&path).is_ok());
        assert!(!path.with_file_name("model.json.tmp").exists());
        std::fs::remove_file(&path).ok();
    }
}
