//! Model persistence: save/load a [`Network`] as a JSON model file.
//!
//! The deployment story of the paper runs through model files — the operator
//! pushes adapted model files to devices, and the attacker reads one back
//! (§4.3). This module provides the fp32 side; `diva-quant` persists the
//! deployed int8 engine the same way.

use std::path::Path;

use crate::Network;

/// Errors from model persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed model file.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file I/O error: {e}"),
            PersistError::Format(e) => write!(f, "malformed model file: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

impl Network {
    /// Writes the network (graph + parameters + masks) to a JSON model file.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Reads a network back from a JSON model file written by
    /// [`Network::save`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failures and
    /// [`PersistError::Format`] if the file is not a valid model.
    pub fn load(path: impl AsRef<Path>) -> Result<Network, PersistError> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::Infer;
    use diva_tensor::Tensor;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new([1, 4, 4], &mut rng);
        let x = b.input();
        let c = b.conv(x, 3, 3, 1, 1);
        let g = b.global_avg_pool(c);
        let d = b.dense(g, 2);
        b.finish(d, Some(g))
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let net = tiny_net();
        let dir = std::env::temp_dir().join("diva_nn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        net.save(&path).unwrap();
        let back = Network::load(&path).unwrap();
        assert_eq!(&back, &net);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        assert_eq!(back.logits(&x), net.logits(&x));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("diva_nn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not a model").unwrap();
        assert!(matches!(Network::load(&path), Err(PersistError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        assert!(matches!(
            Network::load("/nonexistent/diva/model.json"),
            Err(PersistError::Io(_))
        ));
    }
}
