//! The [`Network`] bundle (graph + parameters) and the [`Infer`] trait that
//! unifies fp32 networks, QAT networks, and the int8 engine for evaluation.

use serde::{Deserialize, Serialize};

use diva_tensor::Tensor;

use crate::exec::{self, Execution, Hooks, NoHooks};
use crate::graph::Graph;
use crate::params::ParamStore;

/// Anything that maps a batch of images to logits.
///
/// Implemented by [`Network`] (fp32), the QAT network in `diva-quant`, and
/// the int8 engine, so evaluation and metrics code is written once.
pub trait Infer {
    /// Computes logits for a batched input `[n, c, h, w]` → `[n, classes]`.
    fn logits(&self, x: &Tensor) -> Tensor;

    /// Number of classes in the output.
    fn num_classes(&self) -> usize;

    /// Softmax probabilities for a batched input.
    fn probs(&self, x: &Tensor) -> Tensor {
        diva_tensor::ops::softmax_rows(&self.logits(x))
    }

    /// Top-1 predictions for a batched input.
    fn predict(&self, x: &Tensor) -> Vec<usize> {
        let logits = self.logits(x);
        let classes = self.num_classes();
        (0..logits.dims()[0])
            .map(|i| logits.row(i).argmax().unwrap_or(0))
            .inspect(|&p| debug_assert!(p < classes))
            .collect()
    }
}

/// A model: an immutable [`Graph`] plus its mutable [`ParamStore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    graph: Graph,
    params: ParamStore,
}

impl Network {
    /// Bundles a graph with a parameter store.
    pub fn new(graph: Graph, params: ParamStore) -> Self {
        Network { graph, params }
    }

    /// The computation graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Parameter store (read).
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Parameter store (write): used by optimizers, pruners, quantizers.
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    /// Splits the network into its parts.
    pub fn into_parts(self) -> (Graph, ParamStore) {
        (self.graph, self.params)
    }

    /// Full forward pass retaining all activations (fp32, no hooks).
    pub fn forward(&self, x: &Tensor) -> Execution {
        exec::forward(&self.graph, &self.params, x, &mut NoHooks)
    }

    /// Forward pass with a custom hook set (used by `diva-quant`).
    pub fn forward_with<H: Hooks>(&self, x: &Tensor, hooks: &mut H) -> Execution {
        exec::forward(&self.graph, &self.params, x, hooks)
    }

    /// Reverse pass: accumulates parameter gradients and returns the
    /// gradient w.r.t. the input batch (what adversarial attacks consume).
    pub fn backward(&mut self, exec: &Execution, d_output: &Tensor) -> Tensor {
        exec::backward(&self.graph, &mut self.params, exec, d_output, &NoHooks)
    }

    /// Reverse pass with a custom hook set.
    pub fn backward_with<H: Hooks>(
        &mut self,
        exec: &Execution,
        d_output: &Tensor,
        hooks: &H,
    ) -> Tensor {
        exec::backward(&self.graph, &mut self.params, exec, d_output, hooks)
    }

    /// Gradient of a scalar objective w.r.t. the **input only**, leaving
    /// parameter gradients untouched.
    ///
    /// This is the primitive every attack uses: parameters are borrowed
    /// immutably (cloned gradient buffers are discarded), so a frozen victim
    /// model can be attacked through `&Network`.
    pub fn input_grad(&self, exec: &Execution, d_output: &Tensor) -> Tensor {
        let mut scratch = self.params.clone();
        exec::backward(&self.graph, &mut scratch, exec, d_output, &NoHooks)
    }

    /// Penultimate-layer (feature node) activations for a batch, if the
    /// graph designates one.
    pub fn features(&self, x: &Tensor) -> Option<Tensor> {
        let node = self.graph.feature()?;
        let exec = self.forward(x);
        Some(exec.activation(node).clone())
    }
}

impl Infer for Network {
    fn logits(&self, x: &Tensor) -> Tensor {
        self.forward(x).output(&self.graph).clone()
    }

    fn num_classes(&self) -> usize {
        self.graph.num_classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new([1, 4, 4], &mut rng);
        let x = b.input();
        let c = b.conv(x, 3, 3, 1, 1);
        let r = b.relu(c);
        let g = b.global_avg_pool(r);
        let d = b.dense(g, 4);
        b.finish(d, Some(g))
    }

    #[test]
    fn logits_and_predict() {
        let net = tiny_net();
        let x = Tensor::ones(&[2, 1, 4, 4]);
        let l = net.logits(&x);
        assert_eq!(l.dims(), &[2, 4]);
        let preds = net.predict(&x);
        assert_eq!(preds.len(), 2);
        // Same input -> same prediction for both samples.
        assert_eq!(preds[0], preds[1]);
    }

    #[test]
    fn probs_are_distributions() {
        let net = tiny_net();
        let p = net.probs(&Tensor::ones(&[1, 1, 4, 4]));
        assert!((p.sum() - 1.0).abs() < 1e-5);
        assert!(p.min() >= 0.0);
    }

    #[test]
    fn input_grad_leaves_params_untouched() {
        let net = tiny_net();
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let exec = net.forward(&x);
        let before = net.params().clone();
        let dy = Tensor::ones(&[1, 4]);
        let gx = net.input_grad(&exec, &dy);
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(net.params(), &before);
    }

    #[test]
    fn features_come_from_feature_node() {
        let net = tiny_net();
        let f = net.features(&Tensor::ones(&[2, 1, 4, 4])).unwrap();
        assert_eq!(f.dims(), &[2, 3]); // GAP over 3 channels
    }
}
