//! The graph IR: ops, nodes, shape inference, and the builder API.
//!
//! A [`Graph`] is a DAG of [`Op`]s in topological order (guaranteed by
//! construction: a node may only consume already-built nodes). Parameters are
//! referenced by [`ParamId`] into a separate [`crate::ParamStore`], so the
//! same graph can be executed against different parameter sets (fp32,
//! quantization-aware, pruned, surrogate...).

use serde::{Deserialize, Serialize};

use diva_tensor::conv::Conv2dCfg;
use diva_tensor::{init, Tensor};
use rand::rngs::StdRng;

use crate::params::ParamStore;
use crate::Network;

/// Identifier of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifier of a parameter tensor in a [`crate::ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// Per-sample shape of a node's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeShape {
    /// Spatial activation `[c, h, w]`.
    Chw([usize; 3]),
    /// Flat feature vector of the given width.
    Flat(usize),
}

impl NodeShape {
    /// Number of elements per sample.
    pub fn len(&self) -> usize {
        match self {
            NodeShape::Chw([c, h, w]) => c * h * w,
            NodeShape::Flat(n) => *n,
        }
    }

    /// True when the shape holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Batched dimension list for batch size `n`.
    pub fn batched(&self, n: usize) -> Vec<usize> {
        match self {
            NodeShape::Chw([c, h, w]) => vec![n, *c, *h, *w],
            NodeShape::Flat(f) => vec![n, *f],
        }
    }
}

/// One operation in the IR.
///
/// All spatial ops take and produce NCHW activations; `Dense` takes and
/// produces `[n, features]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// The graph input (one per graph, always node 0).
    Input,
    /// Standard convolution with weight `[co, ci, kh, kw]` and bias `[co]`.
    Conv2d {
        /// Weight parameter.
        w: ParamId,
        /// Bias parameter.
        b: ParamId,
        /// Kernel / stride / padding configuration.
        #[serde(with = "conv_cfg_serde")]
        cfg: Conv2dCfg,
    },
    /// Depthwise convolution with weight `[c, kh, kw]` and bias `[c]`.
    DwConv2d {
        /// Weight parameter.
        w: ParamId,
        /// Bias parameter.
        b: ParamId,
        /// Kernel / stride / padding configuration.
        #[serde(with = "conv_cfg_serde")]
        cfg: Conv2dCfg,
    },
    /// Fully connected layer with weight `[out, in]` and bias `[out]`.
    Dense {
        /// Weight parameter.
        w: ParamId,
        /// Bias parameter.
        b: ParamId,
    },
    /// Elementwise max(x, 0).
    Relu,
    /// Elementwise sum of exactly two same-shaped inputs (residual add).
    Add,
    /// Channel-axis concatenation of two or more inputs (dense blocks).
    Concat,
    /// Max pooling with a square window.
    MaxPool2d {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling `[n,c,h,w] -> [n,c]`.
    GlobalAvgPool,
    /// Reshape `[n,c,h,w] -> [n, c*h*w]`.
    Flatten,
}

impl Op {
    /// Short mnemonic used in debug output and quantization reports.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Input => "input",
            Op::Conv2d { .. } => "conv2d",
            Op::DwConv2d { .. } => "dwconv2d",
            Op::Dense { .. } => "dense",
            Op::Relu => "relu",
            Op::Add => "add",
            Op::Concat => "concat",
            Op::MaxPool2d { .. } => "maxpool2d",
            Op::GlobalAvgPool => "gap",
            Op::Flatten => "flatten",
        }
    }

    /// True for ops that own parameters.
    pub fn has_params(&self) -> bool {
        matches!(
            self,
            Op::Conv2d { .. } | Op::DwConv2d { .. } | Op::Dense { .. }
        )
    }
}

mod conv_cfg_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    #[derive(Serialize, Deserialize)]
    struct Repr {
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    }

    pub fn serialize<S: Serializer>(cfg: &Conv2dCfg, s: S) -> Result<S::Ok, S::Error> {
        Repr {
            kh: cfg.kh,
            kw: cfg.kw,
            stride: cfg.stride,
            pad: cfg.pad,
        }
        .serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Conv2dCfg, D::Error> {
        let r = Repr::deserialize(d)?;
        Ok(Conv2dCfg {
            kh: r.kh,
            kw: r.kw,
            stride: r.stride,
            pad: r.pad,
        })
    }
}

/// A node: an op plus the ids of the nodes it consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Input node ids (all strictly smaller than this node's id).
    pub inputs: Vec<NodeId>,
    /// Per-sample output shape.
    pub shape: NodeShape,
}

/// An immutable computation graph in topological order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<Node>,
    input_shape: [usize; 3],
    output: NodeId,
    /// Node whose activation serves as the learned representation
    /// (penultimate layer) for PCA analysis; usually the GAP output.
    feature: Option<NodeId>,
}

impl Graph {
    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Per-sample input shape `[c, h, w]`.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// The output (logits) node.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// The designated feature (penultimate representation) node, if any.
    pub fn feature(&self) -> Option<NodeId> {
        self.feature
    }

    /// Number of classes (width of the output node).
    pub fn num_classes(&self) -> usize {
        self.nodes[self.output.0].shape.len()
    }

    /// Ids of all parameters referenced by the graph, in node order.
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = Vec::new();
        for n in &self.nodes {
            match n.op {
                Op::Conv2d { w, b, .. } | Op::DwConv2d { w, b, .. } | Op::Dense { w, b } => {
                    ids.push(w);
                    ids.push(b);
                }
                _ => {}
            }
        }
        ids
    }
}

/// Builds a [`Graph`] and its freshly initialised [`ParamStore`] together.
///
/// Construction order is the topological order; each method returns the
/// [`NodeId`] of the node it appended.
///
/// # Panics
///
/// Builder methods panic on structural errors (wrong input rank for an op,
/// mismatched shapes for `add`, ...) — a malformed architecture is a
/// programming error, not a runtime condition.
#[derive(Debug)]
pub struct GraphBuilder<'r> {
    nodes: Vec<Node>,
    params: ParamStore,
    input_shape: [usize; 3],
    rng: &'r mut StdRng,
}

impl<'r> GraphBuilder<'r> {
    /// Starts a graph for per-sample input shape `[c, h, w]`, drawing
    /// parameter initialisations from `rng` (He init).
    pub fn new(input_shape: [usize; 3], rng: &'r mut StdRng) -> Self {
        GraphBuilder {
            nodes: Vec::new(),
            params: ParamStore::new(),
            input_shape,
            rng,
        }
    }

    /// Appends the input node. Must be called first, exactly once.
    pub fn input(&mut self) -> NodeId {
        assert!(self.nodes.is_empty(), "input() must be the first node");
        self.push(Op::Input, vec![], NodeShape::Chw(self.input_shape))
    }

    /// Appends a `k`×`k` convolution producing `co` channels.
    pub fn conv(&mut self, x: NodeId, co: usize, k: usize, stride: usize, pad: usize) -> NodeId {
        let [ci, h, w] = self.chw(x);
        let cfg = Conv2dCfg::square(k, stride, pad);
        let (oh, ow) = cfg.out_hw(h, w);
        let wp = self.params.push(init::he(self.rng, &[co, ci, k, k]));
        let bp = self.params.push(Tensor::zeros(&[co]));
        self.push(
            Op::Conv2d { w: wp, b: bp, cfg },
            vec![x],
            NodeShape::Chw([co, oh, ow]),
        )
    }

    /// Appends a depthwise `k`×`k` convolution (channel multiplier 1).
    pub fn dwconv(&mut self, x: NodeId, k: usize, stride: usize, pad: usize) -> NodeId {
        let [c, h, w] = self.chw(x);
        let cfg = Conv2dCfg::square(k, stride, pad);
        let (oh, ow) = cfg.out_hw(h, w);
        let wp = self.params.push(init::he(self.rng, &[c, k, k]));
        let bp = self.params.push(Tensor::zeros(&[c]));
        self.push(
            Op::DwConv2d { w: wp, b: bp, cfg },
            vec![x],
            NodeShape::Chw([c, oh, ow]),
        )
    }

    /// Appends a dense (fully connected) layer of width `out`.
    pub fn dense(&mut self, x: NodeId, out: usize) -> NodeId {
        let input_len = self.nodes[x.0].shape.len();
        if let NodeShape::Chw(_) = self.nodes[x.0].shape {
            panic!("dense() requires a flat input; insert flatten() or global_avg_pool() first");
        }
        let wp = self.params.push(init::he(self.rng, &[out, input_len]));
        let bp = self.params.push(Tensor::zeros(&[out]));
        self.push(Op::Dense { w: wp, b: bp }, vec![x], NodeShape::Flat(out))
    }

    /// Appends a ReLU.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let shape = self.nodes[x.0].shape;
        self.push(Op::Relu, vec![x], shape)
    }

    /// Appends a residual add of two same-shaped nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(
            self.nodes[a.0].shape, self.nodes[b.0].shape,
            "add() requires identical shapes"
        );
        let shape = self.nodes[a.0].shape;
        self.push(Op::Add, vec![a, b], shape)
    }

    /// Appends a channel concatenation of two or more NCHW nodes.
    pub fn concat(&mut self, xs: &[NodeId]) -> NodeId {
        assert!(xs.len() >= 2, "concat() needs at least two inputs");
        let [c0, h0, w0] = self.chw(xs[0]);
        let mut c_total = c0;
        for &x in &xs[1..] {
            let [c, h, w] = self.chw(x);
            assert_eq!((h, w), (h0, w0), "concat() requires equal spatial dims");
            c_total += c;
        }
        self.push(Op::Concat, xs.to_vec(), NodeShape::Chw([c_total, h0, w0]))
    }

    /// Appends a max pool.
    pub fn max_pool(&mut self, x: NodeId, k: usize, stride: usize) -> NodeId {
        let [c, h, w] = self.chw(x);
        assert!(h >= k && w >= k, "max_pool window does not fit");
        let oh = (h - k) / stride + 1;
        let ow = (w - k) / stride + 1;
        self.push(
            Op::MaxPool2d { k, stride },
            vec![x],
            NodeShape::Chw([c, oh, ow]),
        )
    }

    /// Appends global average pooling.
    pub fn global_avg_pool(&mut self, x: NodeId) -> NodeId {
        let [c, _, _] = self.chw(x);
        self.push(Op::GlobalAvgPool, vec![x], NodeShape::Flat(c))
    }

    /// Appends a flatten.
    pub fn flatten(&mut self, x: NodeId) -> NodeId {
        let len = self.nodes[x.0].shape.len();
        self.push(Op::Flatten, vec![x], NodeShape::Flat(len))
    }

    /// Finishes the graph, designating the output (logits) node and an
    /// optional feature node, and bundles it with the initialised parameters.
    pub fn finish(self, output: NodeId, feature: Option<NodeId>) -> Network {
        let graph = Graph {
            nodes: self.nodes,
            input_shape: self.input_shape,
            output,
            feature,
        };
        Network::new(graph, self.params)
    }

    fn chw(&self, x: NodeId) -> [usize; 3] {
        match self.nodes[x.0].shape {
            NodeShape::Chw(chw) => chw,
            NodeShape::Flat(_) => panic!(
                "node {:?} is flat but op requires a spatial (NCHW) input",
                x
            ),
        }
    }

    fn push(&mut self, op: Op, inputs: Vec<NodeId>, shape: NodeShape) -> NodeId {
        assert!(
            !self.nodes.is_empty() || matches!(op, Op::Input),
            "first node must be input()"
        );
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { op, inputs, shape });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn builds_shapes_through_a_small_cnn() {
        let mut r = rng();
        let mut b = GraphBuilder::new([3, 8, 8], &mut r);
        let x = b.input();
        let c1 = b.conv(x, 8, 3, 1, 1); // 8x8x8
        let r1 = b.relu(c1);
        let p = b.max_pool(r1, 2, 2); // 8x4x4
        let c2 = b.conv(p, 16, 3, 2, 1); // 16x2x2
        let g = b.global_avg_pool(c2); // 16
        let out = b.dense(g, 10);
        let net = b.finish(out, Some(g));
        let gph = net.graph();
        assert_eq!(gph.node(c1).shape, NodeShape::Chw([8, 8, 8]));
        assert_eq!(gph.node(p).shape, NodeShape::Chw([8, 4, 4]));
        assert_eq!(gph.node(c2).shape, NodeShape::Chw([16, 2, 2]));
        assert_eq!(gph.node(g).shape, NodeShape::Flat(16));
        assert_eq!(gph.num_classes(), 10);
        assert_eq!(gph.feature(), Some(g));
    }

    #[test]
    fn residual_and_concat_shapes() {
        let mut r = rng();
        let mut b = GraphBuilder::new([4, 6, 6], &mut r);
        let x = b.input();
        let c1 = b.conv(x, 4, 3, 1, 1);
        let a = b.add(c1, x);
        assert_eq!(b.nodes[a.0].shape, NodeShape::Chw([4, 6, 6]));
        let cat = b.concat(&[a, x]);
        assert_eq!(b.nodes[cat.0].shape, NodeShape::Chw([8, 6, 6]));
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn add_shape_mismatch_panics() {
        let mut r = rng();
        let mut b = GraphBuilder::new([4, 6, 6], &mut r);
        let x = b.input();
        let c = b.conv(x, 8, 3, 1, 1);
        let _ = b.add(c, x);
    }

    #[test]
    #[should_panic(expected = "flat input")]
    fn dense_on_spatial_panics() {
        let mut r = rng();
        let mut b = GraphBuilder::new([4, 6, 6], &mut r);
        let x = b.input();
        let _ = b.dense(x, 10);
    }

    #[test]
    fn param_ids_enumerates_in_node_order() {
        let mut r = rng();
        let mut b = GraphBuilder::new([1, 4, 4], &mut r);
        let x = b.input();
        let c = b.conv(x, 2, 3, 1, 1);
        let g = b.global_avg_pool(c);
        let d = b.dense(g, 2);
        let net = b.finish(d, None);
        assert_eq!(
            net.graph().param_ids(),
            vec![ParamId(0), ParamId(1), ParamId(2), ParamId(3)]
        );
    }

    #[test]
    fn graph_serde_round_trips() {
        let mut r = rng();
        let mut b = GraphBuilder::new([1, 4, 4], &mut r);
        let x = b.input();
        let c = b.conv(x, 2, 3, 1, 1);
        let g = b.global_avg_pool(c);
        let d = b.dense(g, 2);
        let net = b.finish(d, Some(g));
        let json = serde_json::to_string(net.graph()).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, net.graph());
    }
}
