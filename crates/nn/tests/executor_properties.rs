//! Property-based tests of executor invariants the attack pipelines rely on:
//! batch invariance (per-sample results don't depend on batching), gradient
//! linearity in the output cotangent, and determinism.

use diva_nn::graph::GraphBuilder;
use diva_nn::{Infer, Network};
use diva_tensor::Tensor;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn make_net(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new([2, 6, 6], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 4, 3, 1, 1);
    let r1 = b.relu(c1);
    let c2 = b.conv(r1, 4, 3, 1, 1);
    let a = b.add(c2, c1); // fan-out + residual
    let p = b.max_pool(a, 2, 2);
    let g = b.global_avg_pool(p);
    let d = b.dense(g, 3);
    b.finish(d, Some(g))
}

fn batch(data: Vec<f32>, n: usize) -> Tensor {
    Tensor::from_vec(data, &[n, 2, 6, 6])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batching_does_not_change_per_sample_logits(
        data in proptest::collection::vec(0.0f32..1.0, 3 * 72),
        seed in 0u64..50,
    ) {
        let net = make_net(seed);
        let full = net.logits(&batch(data.clone(), 3));
        for i in 0..3 {
            let single = net.logits(&batch(data[i * 72..(i + 1) * 72].to_vec(), 1));
            for j in 0..3 {
                let a = full.at(&[i, j]).unwrap();
                let b = single.at(&[0, j]).unwrap();
                prop_assert!((a - b).abs() < 1e-4, "sample {i} logit {j}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn input_gradient_is_linear_in_cotangent(
        data in proptest::collection::vec(0.0f32..1.0, 72),
        seed in 0u64..50,
        alpha in 0.1f32..3.0,
    ) {
        let net = make_net(seed);
        let x = batch(data, 1);
        let exec = net.forward(&x);
        let dy = Tensor::from_vec(vec![1.0, -0.5, 2.0], &[1, 3]);
        let g1 = net.input_grad(&exec, &dy);
        let g2 = net.input_grad(&exec, &dy.scale(alpha));
        // grad(alpha * dy) == alpha * grad(dy)
        prop_assert!(g2.allclose(&g1.scale(alpha), 1e-3 * (1.0 + alpha)));
        // And additivity: grad(dy + dy') == grad(dy) + grad(dy')
        let dy_b = Tensor::from_vec(vec![0.3, 0.7, -1.0], &[1, 3]);
        let g_sum = net.input_grad(&exec, &dy.add(&dy_b));
        let mut expected = net.input_grad(&exec, &dy_b);
        expected.axpy(1.0, &g1);
        prop_assert!(g_sum.allclose(&expected, 1e-3));
    }

    #[test]
    fn forward_is_deterministic(
        data in proptest::collection::vec(0.0f32..1.0, 72),
        seed in 0u64..50,
    ) {
        let net = make_net(seed);
        let x = batch(data, 1);
        prop_assert_eq!(net.logits(&x), net.logits(&x));
    }

    #[test]
    fn probabilities_are_well_formed(
        data in proptest::collection::vec(0.0f32..1.0, 2 * 72),
        seed in 0u64..50,
    ) {
        let net = make_net(seed);
        let p = net.probs(&batch(data, 2));
        for i in 0..2 {
            let row = p.row(i);
            prop_assert!(row.min() >= 0.0);
            prop_assert!((row.sum() - 1.0).abs() < 1e-4);
        }
    }
}
