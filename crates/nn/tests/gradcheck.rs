//! End-to-end gradient checks for the graph executor.
//!
//! Two layers of defense:
//!
//! 1. **Topology checks** (`gradcheck`): for several graph topologies
//!    (plain CNN, residual, concat, depthwise, max-pool, flatten) the
//!    analytic input and parameter gradients of a cross-entropy objective
//!    are compared per-coordinate against central finite differences at a
//!    loose f32 tolerance.
//! 2. **Per-op directional checks** (`directional_gradcheck`): every op
//!    kind in isolation (conv, depthwise conv, dense, relu, residual add,
//!    concat, max/global-avg pooling), comparing the reverse-mode
//!    Jacobian-vector product against a central-difference directional
//!    derivative of a fixed linear functional of the output, at relative
//!    error < 1e-3. The linear functional keeps the objective piecewise
//!    linear in a relu network, so the central difference is exact up to
//!    float noise and the tight tolerance is meaningful in f32.
//!
//! The attacks live or die by the correctness of the *input* gradient, so
//! these are the most load-bearing tests in the workspace.

use diva_nn::graph::GraphBuilder;
use diva_nn::losses;
use diva_nn::Network;
use diva_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Scalar objective: cross-entropy against fixed labels.
fn objective(net: &Network, x: &Tensor, labels: &[usize]) -> f32 {
    let exec = net.forward(x);
    losses::cross_entropy(exec.output(net.graph()), labels).0
}

/// Checks analytic input and parameter gradients against finite differences.
fn gradcheck(mut net: Network, x: &Tensor, labels: &[usize], tol: f32) {
    let exec = net.forward(x);
    let (_, dlogits) = losses::cross_entropy(exec.output(net.graph()), labels);
    net.params_mut().zero_grads();
    let dx = net.backward(&exec, &dlogits);

    let eps = 1e-2;
    // Input gradient: check a spread of coordinates.
    let stride = (x.len() / 12).max(1);
    for i in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let num = (objective(&net, &xp, labels) - objective(&net, &xm, labels)) / (2.0 * eps);
        let ana = dx.data()[i];
        assert!(
            (num - ana).abs() < tol * (1.0 + num.abs()),
            "input grad [{i}]: numeric {num} vs analytic {ana}"
        );
    }

    // Parameter gradients: sample a few coordinates of each parameter.
    let n_params = net.params().len();
    for pi in 0..n_params {
        let id = diva_nn::ParamId(pi);
        let len = net.params().get(id).value.len();
        let ana_grad = net.params().get(id).grad.clone();
        for i in (0..len).step_by((len / 4).max(1)) {
            let orig = net.params().get(id).value.data()[i];
            net.params_mut().get_mut(id).value.data_mut()[i] = orig + eps;
            let fp = objective(&net, x, labels);
            net.params_mut().get_mut(id).value.data_mut()[i] = orig - eps;
            let fm = objective(&net, x, labels);
            net.params_mut().get_mut(id).value.data_mut()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            let ana = ana_grad.data()[i];
            assert!(
                (num - ana).abs() < tol * (1.0 + num.abs()),
                "param {pi} grad [{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }
}

fn rand_input(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(0.0..1.0)).collect(), dims)
}

/// A random ±1 direction with the given shape.
fn rand_signs(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec(
        (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
            .collect(),
        dims,
    )
}

/// f64 dot product (the f32 sums would eat the 1e-3 tolerance).
fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum::<f64>()
}

/// Relative error with a small floor so near-zero derivatives don't blow up
/// the ratio.
fn rel_err(num: f64, ana: f64) -> f64 {
    (num - ana).abs() / num.abs().max(ana.abs()).max(1e-3)
}

/// Directional gradient check at relative error < 1e-3.
///
/// Objective: `J = <w, output>` for a fixed random ±1 tensor `w` — linear
/// in the output, so for relu networks `J` is piecewise linear in both the
/// input and the parameters and central differences carry no truncation
/// error. The analytic side is the reverse-mode vector-Jacobian product
/// `backward(w)`: its inner product with a random ±1 direction must match
/// `(J(+h·v) - J(-h·v)) / 2h`. Checks the input-gradient path (what the
/// attacks differentiate) and every parameter tensor.
fn directional_gradcheck(mut net: Network, x: &Tensor, seed: u64) {
    let h = 1e-2f32;
    let mut rng = StdRng::seed_from_u64(seed);
    let out_dims = net.forward(x).output(net.graph()).dims().to_vec();
    let w = rand_signs(&mut rng, &out_dims);
    let objective = |net: &Network, x: &Tensor| -> f64 {
        let exec = net.forward(x);
        dot_f64(exec.output(net.graph()).data(), w.data())
    };

    let exec = net.forward(x);
    net.params_mut().zero_grads();
    let dx = net.backward(&exec, &w);

    // Input-gradient path.
    let v = rand_signs(&mut rng, x.dims());
    let mut xp = x.clone();
    xp.axpy(h, &v);
    let mut xm = x.clone();
    xm.axpy(-h, &v);
    let num = (objective(&net, &xp) - objective(&net, &xm)) / (2.0 * h as f64);
    let ana = dot_f64(dx.data(), v.data());
    let rel = rel_err(num, ana);
    assert!(
        rel < 1e-3,
        "input directional derivative: numeric {num} vs analytic {ana} (rel {rel:.2e})"
    );

    // One direction per parameter tensor, so a failure names the op.
    for pi in 0..net.params().len() {
        let id = diva_nn::ParamId(pi);
        let dims = net.params().get(id).value.dims().to_vec();
        let vp = rand_signs(&mut rng, &dims);
        let ana = dot_f64(net.params().get(id).grad.data(), vp.data());
        net.params_mut().get_mut(id).value.axpy(h, &vp);
        let fp = objective(&net, x);
        net.params_mut().get_mut(id).value.axpy(-2.0 * h, &vp);
        let fm = objective(&net, x);
        net.params_mut().get_mut(id).value.axpy(h, &vp);
        let num = (fp - fm) / (2.0 * h as f64);
        let rel = rel_err(num, ana);
        assert!(
            rel < 1e-3,
            "param {pi} directional derivative: numeric {num} vs analytic {ana} (rel {rel:.2e})"
        );
    }
}

/// Input with all values spaced `step` apart (a shuffled arithmetic grid,
/// offset by `step/2` so no value sits exactly on zero). Used for the relu
/// and max-pool checks: with the spacing wider than the finite-difference
/// step, no kink (relu zero-crossing, max-pool winner change) can be
/// crossed between `x - h·v` and `x + h·v`, so the objective stays linear
/// over the stencil and the tight tolerance holds.
fn spaced_input(rng: &mut StdRng, dims: &[usize], step: f32) -> Tensor {
    let n: usize = dims.iter().product();
    let mut vals: Vec<f32> = (0..n)
        .map(|i| (i as f32 - n as f32 / 2.0) * step + step / 2.0)
        .collect();
    // Fisher-Yates shuffle so spatial position is uncorrelated with value.
    for i in (1..n).rev() {
        vals.swap(i, rng.gen_range(0..=i));
    }
    Tensor::from_vec(vals, dims)
}

// ---------------------------------------------------------------------------
// Per-op directional checks: one minimal graph per op kind, rel error < 1e-3.
// Linear ops get uniform random inputs (exactly linear objective); relu and
// max-pool get spaced inputs so the ±h stencil cannot straddle a kink.
// ---------------------------------------------------------------------------

#[test]
fn directional_conv() {
    let mut rng = StdRng::seed_from_u64(20);
    let mut b = GraphBuilder::new([3, 5, 5], &mut rng);
    let x = b.input();
    let c = b.conv(x, 4, 3, 1, 1);
    let net = b.finish(c, None);
    let input = rand_input(&mut rng, &[2, 3, 5, 5]);
    directional_gradcheck(net, &input, 120);
}

#[test]
fn directional_conv_strided() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut b = GraphBuilder::new([2, 6, 6], &mut rng);
    let x = b.input();
    let c = b.conv(x, 3, 3, 2, 1);
    let net = b.finish(c, None);
    let input = rand_input(&mut rng, &[2, 2, 6, 6]);
    directional_gradcheck(net, &input, 121);
}

#[test]
fn directional_depthwise_conv() {
    let mut rng = StdRng::seed_from_u64(22);
    let mut b = GraphBuilder::new([4, 6, 6], &mut rng);
    let x = b.input();
    let dw = b.dwconv(x, 3, 1, 1);
    let net = b.finish(dw, None);
    let input = rand_input(&mut rng, &[2, 4, 6, 6]);
    directional_gradcheck(net, &input, 122);
}

#[test]
fn directional_dense() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut b = GraphBuilder::new([2, 4, 4], &mut rng);
    let x = b.input();
    let f = b.flatten(x);
    let d = b.dense(f, 5);
    let net = b.finish(d, None);
    let input = rand_input(&mut rng, &[3, 2, 4, 4]);
    directional_gradcheck(net, &input, 123);
}

#[test]
fn directional_relu() {
    let mut rng = StdRng::seed_from_u64(24);
    let mut b = GraphBuilder::new([3, 4, 4], &mut rng);
    let x = b.input();
    let r = b.relu(x);
    let net = b.finish(r, None);
    // Values spaced 0.05 apart, straddling zero: both branches of relu are
    // exercised, and no unit can cross zero inside the ±1e-2 stencil.
    let input = spaced_input(&mut rng, &[2, 3, 4, 4], 0.05);
    directional_gradcheck(net, &input, 124);
}

#[test]
fn directional_residual_add() {
    let mut rng = StdRng::seed_from_u64(25);
    let mut b = GraphBuilder::new([3, 5, 5], &mut rng);
    let x = b.input();
    let c = b.conv(x, 3, 3, 1, 1);
    let a = b.add(c, x); // fan-out on x: gradient must accumulate
    let net = b.finish(a, None);
    let input = rand_input(&mut rng, &[2, 3, 5, 5]);
    directional_gradcheck(net, &input, 125);
}

#[test]
fn directional_concat() {
    let mut rng = StdRng::seed_from_u64(26);
    let mut b = GraphBuilder::new([2, 5, 5], &mut rng);
    let x = b.input();
    let c = b.conv(x, 3, 3, 1, 1);
    let cat = b.concat(&[x, c]); // fan-out on x through two paths
    let net = b.finish(cat, None);
    let input = rand_input(&mut rng, &[2, 2, 5, 5]);
    directional_gradcheck(net, &input, 126);
}

#[test]
fn directional_max_pool() {
    let mut rng = StdRng::seed_from_u64(27);
    let mut b = GraphBuilder::new([2, 8, 8], &mut rng);
    let x = b.input();
    let p = b.max_pool(x, 2, 2);
    let net = b.finish(p, None);
    // Spaced values: every pool window's winner is decided by ≥ 0.05, so a
    // ±1e-2 perturbation cannot change the argmax.
    let input = spaced_input(&mut rng, &[2, 2, 8, 8], 0.05);
    directional_gradcheck(net, &input, 127);
}

#[test]
fn directional_global_avg_pool() {
    let mut rng = StdRng::seed_from_u64(28);
    let mut b = GraphBuilder::new([3, 6, 6], &mut rng);
    let x = b.input();
    let g = b.global_avg_pool(x);
    let net = b.finish(g, None);
    let input = rand_input(&mut rng, &[2, 3, 6, 6]);
    directional_gradcheck(net, &input, 128);
}

// ---------------------------------------------------------------------------
// Blocked-GEMM coverage: the cases above are small enough that `gemm_f32`
// takes its plain ascending-k path (m·n·k ≤ 32³). The cases below are sized
// past that threshold with ragged tile edges (rows ∤ MR=4, cols ∤ NR=8), so
// forward conv/dense and the `matmul`/`matmul_at_b` calls in their backward
// passes all run the packed blocked core. Weights, inputs, and probe
// directions come from an in-file LCG (not `rand`), so these checks are
// identical on any platform.
// ---------------------------------------------------------------------------

/// 32-bit LCG (Numerical Recipes constants), mirroring the qat_vs_engine
/// fixture so the checks don't depend on the `rand` crate's stream.
struct Lcg(u32);

impl Lcg {
    fn next_unit(&mut self) -> f32 {
        self.0 = self.0.wrapping_mul(1664525).wrapping_add(1013904223);
        (self.0 >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
    }

    fn input(&mut self, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| self.next_unit() * 0.5 + 0.5).collect(), dims)
    }

    fn signs(&mut self, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec(
            (0..n)
                .map(|_| if self.next_unit() >= 0.0 { 1.0 } else { -1.0 })
                .collect(),
            dims,
        )
    }
}

/// Overwrites every parameter with fan-in-scaled LCG values, erasing the
/// `rand`-dependent init from `GraphBuilder`.
fn lcg_reinit(net: &mut Network, seed: u32) {
    let mut lcg = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
    for p in net.params_mut().iter_mut() {
        let dims = p.value.dims().to_vec();
        let scale = if dims.len() >= 2 {
            let fan_in = (p.value.len() / dims[0]).max(1);
            1.0 / (fan_in as f32).sqrt()
        } else {
            0.1
        };
        for v in p.value.data_mut() {
            *v = lcg.next_unit() * scale;
        }
    }
}

/// `directional_gradcheck` with all randomness drawn from the in-file LCG.
fn directional_gradcheck_lcg(mut net: Network, x: &Tensor, seed: u32) {
    let h = 1e-2f32;
    let mut lcg = Lcg(seed.wrapping_mul(747796405).wrapping_add(11));
    let out_dims = net.forward(x).output(net.graph()).dims().to_vec();
    let w = lcg.signs(&out_dims);
    let objective = |net: &Network, x: &Tensor| -> f64 {
        let exec = net.forward(x);
        dot_f64(exec.output(net.graph()).data(), w.data())
    };

    let exec = net.forward(x);
    net.params_mut().zero_grads();
    let dx = net.backward(&exec, &w);

    let v = lcg.signs(x.dims());
    let mut xp = x.clone();
    xp.axpy(h, &v);
    let mut xm = x.clone();
    xm.axpy(-h, &v);
    let num = (objective(&net, &xp) - objective(&net, &xm)) / (2.0 * h as f64);
    let ana = dot_f64(dx.data(), v.data());
    let rel = rel_err(num, ana);
    assert!(
        rel < 1e-3,
        "input directional derivative: numeric {num} vs analytic {ana} (rel {rel:.2e})"
    );

    for pi in 0..net.params().len() {
        let id = diva_nn::ParamId(pi);
        let dims = net.params().get(id).value.dims().to_vec();
        let vp = lcg.signs(&dims);
        let ana = dot_f64(net.params().get(id).grad.data(), vp.data());
        net.params_mut().get_mut(id).value.axpy(h, &vp);
        let fp = objective(&net, x);
        net.params_mut().get_mut(id).value.axpy(-2.0 * h, &vp);
        let fm = objective(&net, x);
        net.params_mut().get_mut(id).value.axpy(h, &vp);
        let num = (fp - fm) / (2.0 * h as f64);
        let rel = rel_err(num, ana);
        assert!(
            rel < 1e-3,
            "param {pi} directional derivative: numeric {num} vs analytic {ana} (rel {rel:.2e})"
        );
    }
}

#[test]
fn directional_conv_strided_padded_blocked_core() {
    // co=9 rows (2·MR+1), oh·ow=100 cols (12·NR+4), k-depth 54:
    // 9·100·54 = 48600 > 32³, so the im2col GEMM takes the blocked path with
    // ragged edge tiles in both m and n, through stride 2 + padding.
    let mut rng = StdRng::seed_from_u64(30);
    let mut b = GraphBuilder::new([6, 20, 20], &mut rng);
    let x = b.input();
    let c = b.conv(x, 9, 3, 2, 1);
    let mut net = b.finish(c, None);
    lcg_reinit(&mut net, 301);
    let input = Lcg(0x5EED1).input(&[2, 6, 20, 20]);
    directional_gradcheck_lcg(net, &input, 302);
}

#[test]
fn directional_dense_wide_blocked_core() {
    // batch 40 × out 13 × in 108 = 56160 > 32³: `dense_forward`'s fused
    // bias GEMM and the `matmul_at_b`/`matmul` backward both run blocked;
    // 13 columns leave a 5-wide ragged NR strip.
    let mut rng = StdRng::seed_from_u64(31);
    let mut b = GraphBuilder::new([3, 6, 6], &mut rng);
    let x = b.input();
    let f = b.flatten(x);
    let d = b.dense(f, 13);
    let mut net = b.finish(d, None);
    lcg_reinit(&mut net, 311);
    let input = Lcg(0x5EED2).input(&[40, 3, 6, 6]);
    directional_gradcheck_lcg(net, &input, 312);
}

#[test]
fn directional_depthwise_strided_lcg() {
    // Depthwise with stride 2 + padding (the MobileNet backbone shape).
    let mut rng = StdRng::seed_from_u64(32);
    let mut b = GraphBuilder::new([4, 9, 9], &mut rng);
    let x = b.input();
    let dw = b.dwconv(x, 3, 2, 1);
    let mut net = b.finish(dw, None);
    lcg_reinit(&mut net, 321);
    let input = Lcg(0x5EED3).input(&[2, 4, 9, 9]);
    directional_gradcheck_lcg(net, &input, 322);
}

// Deep composites are deliberately *not* directional-checked at 1e-3: a ±h
// input perturbation across every coordinate shifts interior relu/max-pool
// pre-activations past their kinks with probability ≈ 1, so the central
// difference no longer measures the derivative. The loose-tolerance
// topology checks below cover composition; the per-op checks above carry
// the tight bound.

#[test]
fn plain_cnn_gradients() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut b = GraphBuilder::new([2, 6, 6], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 4, 3, 1, 1);
    let r1 = b.relu(c1);
    let c2 = b.conv(r1, 6, 3, 2, 1);
    let r2 = b.relu(c2);
    let g = b.global_avg_pool(r2);
    let d = b.dense(g, 3);
    let net = b.finish(d, Some(g));
    let input = rand_input(&mut rng, &[2, 2, 6, 6]);
    gradcheck(net, &input, &[0, 2], 5e-2);
}

#[test]
fn residual_topology_gradients() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut b = GraphBuilder::new([3, 6, 6], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 3, 3, 1, 1);
    let r1 = b.relu(c1);
    let c2 = b.conv(r1, 3, 3, 1, 1);
    let a = b.add(c2, x); // skip connection from the input (fan-out on x)
    let r2 = b.relu(a);
    let g = b.global_avg_pool(r2);
    let d = b.dense(g, 4);
    let net = b.finish(d, Some(g));
    let input = rand_input(&mut rng, &[1, 3, 6, 6]);
    gradcheck(net, &input, &[1], 5e-2);
}

#[test]
fn concat_topology_gradients() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut b = GraphBuilder::new([2, 5, 5], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 3, 3, 1, 1);
    let r1 = b.relu(c1);
    let cat = b.concat(&[x, r1]); // densenet-style concat with fan-out
    let c2 = b.conv(cat, 4, 3, 1, 1);
    let g = b.global_avg_pool(c2);
    let d = b.dense(g, 3);
    let net = b.finish(d, Some(g));
    let input = rand_input(&mut rng, &[2, 2, 5, 5]);
    gradcheck(net, &input, &[2, 0], 5e-2);
}

#[test]
fn depthwise_separable_gradients() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut b = GraphBuilder::new([3, 6, 6], &mut rng);
    let x = b.input();
    let dw = b.dwconv(x, 3, 1, 1);
    let r1 = b.relu(dw);
    let pw = b.conv(r1, 5, 1, 1, 0); // pointwise
    let r2 = b.relu(pw);
    let g = b.global_avg_pool(r2);
    let d = b.dense(g, 3);
    let net = b.finish(d, Some(g));
    let input = rand_input(&mut rng, &[1, 3, 6, 6]);
    gradcheck(net, &input, &[0], 5e-2);
}

#[test]
fn maxpool_flatten_gradients() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut b = GraphBuilder::new([1, 8, 8], &mut rng);
    let x = b.input();
    let c = b.conv(x, 3, 3, 1, 1);
    let r = b.relu(c);
    let p = b.max_pool(r, 2, 2);
    let f = b.flatten(p);
    let d = b.dense(f, 4);
    let net = b.finish(d, None);
    let input = rand_input(&mut rng, &[1, 1, 8, 8]);
    gradcheck(net, &input, &[3], 5e-2);
}

#[test]
fn fan_out_accumulates_gradients() {
    // x feeds two conv branches that are summed: d/dx must be the sum of
    // both branch gradients. Compare against a single-branch graph scaled.
    let mut rng = StdRng::seed_from_u64(6);
    let mut b = GraphBuilder::new([2, 4, 4], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 2, 3, 1, 1);
    let c2 = b.conv(x, 2, 3, 1, 1);
    let a = b.add(c1, c2);
    let g = b.global_avg_pool(a);
    let d = b.dense(g, 2);
    let net = b.finish(d, None);
    let input = rand_input(&mut rng, &[1, 2, 4, 4]);
    gradcheck(net, &input, &[1], 5e-2);
}

#[test]
fn input_grad_matches_backward_input_grad() {
    // `Network::input_grad` (immutable) must agree with `backward`'s return.
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = GraphBuilder::new([1, 4, 4], &mut rng);
    let x = b.input();
    let c = b.conv(x, 2, 3, 1, 1);
    let g = b.global_avg_pool(c);
    let d = b.dense(g, 2);
    let mut net = b.finish(d, None);
    let input = rand_input(&mut rng, &[2, 1, 4, 4]);
    let exec = net.forward(&input);
    let dlogits = Tensor::ones(&[2, 2]);
    let gi = net.input_grad(&exec, &dlogits);
    let gb = net.backward(&exec, &dlogits);
    assert!(gi.allclose(&gb, 1e-6));
}
