//! End-to-end gradient checks for the graph executor.
//!
//! For several graph topologies (plain CNN, residual, concat, depthwise,
//! max-pool, flatten) we compare the analytic input gradient and parameter
//! gradients of a scalar objective against central finite differences.
//! The attacks live or die by the correctness of the *input* gradient, so
//! this is the most load-bearing test in the workspace.

use diva_nn::graph::GraphBuilder;
use diva_nn::losses;
use diva_nn::Network;
use diva_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Scalar objective: cross-entropy against fixed labels.
fn objective(net: &Network, x: &Tensor, labels: &[usize]) -> f32 {
    let exec = net.forward(x);
    losses::cross_entropy(exec.output(net.graph()), labels).0
}

/// Checks analytic input and parameter gradients against finite differences.
fn gradcheck(mut net: Network, x: &Tensor, labels: &[usize], tol: f32) {
    let exec = net.forward(x);
    let (_, dlogits) = losses::cross_entropy(exec.output(net.graph()), labels);
    net.params_mut().zero_grads();
    let dx = net.backward(&exec, &dlogits);

    let eps = 1e-2;
    // Input gradient: check a spread of coordinates.
    let stride = (x.len() / 12).max(1);
    for i in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let num = (objective(&net, &xp, labels) - objective(&net, &xm, labels)) / (2.0 * eps);
        let ana = dx.data()[i];
        assert!(
            (num - ana).abs() < tol * (1.0 + num.abs()),
            "input grad [{i}]: numeric {num} vs analytic {ana}"
        );
    }

    // Parameter gradients: sample a few coordinates of each parameter.
    let n_params = net.params().len();
    for pi in 0..n_params {
        let id = diva_nn::ParamId(pi);
        let len = net.params().get(id).value.len();
        let ana_grad = net.params().get(id).grad.clone();
        for i in (0..len).step_by((len / 4).max(1)) {
            let orig = net.params().get(id).value.data()[i];
            net.params_mut().get_mut(id).value.data_mut()[i] = orig + eps;
            let fp = objective(&net, x, labels);
            net.params_mut().get_mut(id).value.data_mut()[i] = orig - eps;
            let fm = objective(&net, x, labels);
            net.params_mut().get_mut(id).value.data_mut()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            let ana = ana_grad.data()[i];
            assert!(
                (num - ana).abs() < tol * (1.0 + num.abs()),
                "param {pi} grad [{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }
}

fn rand_input(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(0.0..1.0)).collect(), dims)
}

#[test]
fn plain_cnn_gradients() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut b = GraphBuilder::new([2, 6, 6], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 4, 3, 1, 1);
    let r1 = b.relu(c1);
    let c2 = b.conv(r1, 6, 3, 2, 1);
    let r2 = b.relu(c2);
    let g = b.global_avg_pool(r2);
    let d = b.dense(g, 3);
    let net = b.finish(d, Some(g));
    let input = rand_input(&mut rng, &[2, 2, 6, 6]);
    gradcheck(net, &input, &[0, 2], 5e-2);
}

#[test]
fn residual_topology_gradients() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut b = GraphBuilder::new([3, 6, 6], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 3, 3, 1, 1);
    let r1 = b.relu(c1);
    let c2 = b.conv(r1, 3, 3, 1, 1);
    let a = b.add(c2, x); // skip connection from the input (fan-out on x)
    let r2 = b.relu(a);
    let g = b.global_avg_pool(r2);
    let d = b.dense(g, 4);
    let net = b.finish(d, Some(g));
    let input = rand_input(&mut rng, &[1, 3, 6, 6]);
    gradcheck(net, &input, &[1], 5e-2);
}

#[test]
fn concat_topology_gradients() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut b = GraphBuilder::new([2, 5, 5], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 3, 3, 1, 1);
    let r1 = b.relu(c1);
    let cat = b.concat(&[x, r1]); // densenet-style concat with fan-out
    let c2 = b.conv(cat, 4, 3, 1, 1);
    let g = b.global_avg_pool(c2);
    let d = b.dense(g, 3);
    let net = b.finish(d, Some(g));
    let input = rand_input(&mut rng, &[2, 2, 5, 5]);
    gradcheck(net, &input, &[2, 0], 5e-2);
}

#[test]
fn depthwise_separable_gradients() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut b = GraphBuilder::new([3, 6, 6], &mut rng);
    let x = b.input();
    let dw = b.dwconv(x, 3, 1, 1);
    let r1 = b.relu(dw);
    let pw = b.conv(r1, 5, 1, 1, 0); // pointwise
    let r2 = b.relu(pw);
    let g = b.global_avg_pool(r2);
    let d = b.dense(g, 3);
    let net = b.finish(d, Some(g));
    let input = rand_input(&mut rng, &[1, 3, 6, 6]);
    gradcheck(net, &input, &[0], 5e-2);
}

#[test]
fn maxpool_flatten_gradients() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut b = GraphBuilder::new([1, 8, 8], &mut rng);
    let x = b.input();
    let c = b.conv(x, 3, 3, 1, 1);
    let r = b.relu(c);
    let p = b.max_pool(r, 2, 2);
    let f = b.flatten(p);
    let d = b.dense(f, 4);
    let net = b.finish(d, None);
    let input = rand_input(&mut rng, &[1, 1, 8, 8]);
    gradcheck(net, &input, &[3], 5e-2);
}

#[test]
fn fan_out_accumulates_gradients() {
    // x feeds two conv branches that are summed: d/dx must be the sum of
    // both branch gradients. Compare against a single-branch graph scaled.
    let mut rng = StdRng::seed_from_u64(6);
    let mut b = GraphBuilder::new([2, 4, 4], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 2, 3, 1, 1);
    let c2 = b.conv(x, 2, 3, 1, 1);
    let a = b.add(c1, c2);
    let g = b.global_avg_pool(a);
    let d = b.dense(g, 2);
    let net = b.finish(d, None);
    let input = rand_input(&mut rng, &[1, 2, 4, 4]);
    gradcheck(net, &input, &[1], 5e-2);
}

#[test]
fn input_grad_matches_backward_input_grad() {
    // `Network::input_grad` (immutable) must agree with `backward`'s return.
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = GraphBuilder::new([1, 4, 4], &mut rng);
    let x = b.input();
    let c = b.conv(x, 2, 3, 1, 1);
    let g = b.global_avg_pool(c);
    let d = b.dense(g, 2);
    let mut net = b.finish(d, None);
    let input = rand_input(&mut rng, &[2, 1, 4, 4]);
    let exec = net.forward(&input);
    let dlogits = Tensor::ones(&[2, 2]);
    let gi = net.input_grad(&exec, &dlogits);
    let gb = net.backward(&exec, &dlogits);
    assert!(gi.allclose(&gb, 1e-6));
}
