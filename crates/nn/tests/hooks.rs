//! Tests of the [`diva_nn::exec::Hooks`] extension point — the seam the
//! quantization crate plugs into. A synthetic hook set that scales outputs
//! and weights verifies that every interposition point actually fires and
//! that the backward path consults `output_grad`/`weight_grad`.

use diva_nn::exec::{backward, forward, Hooks};
use diva_nn::graph::{GraphBuilder, NodeId, Op, ParamId};
use diva_nn::Network;
use diva_tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

/// Doubles every dense/conv weight and counts interposition calls.
struct DoublingHooks {
    output_calls: usize,
    grad_calls: std::cell::Cell<usize>,
}

impl Hooks for DoublingHooks {
    const ACTIVE: bool = true;

    fn weight(&self, _id: ParamId, w: Tensor) -> Tensor {
        if w.shape().rank() >= 2 {
            w.scale(2.0)
        } else {
            w
        }
    }

    fn output(&mut self, _node: NodeId, _op: &Op, y: Tensor) -> Tensor {
        self.output_calls += 1;
        y
    }

    fn output_grad(&self, _node: NodeId, _raw: &Tensor, dy: Tensor) -> Tensor {
        self.grad_calls.set(self.grad_calls.get() + 1);
        dy
    }
}

fn linear_net() -> Network {
    let mut rng = StdRng::seed_from_u64(3);
    let mut b = GraphBuilder::new([1, 2, 2], &mut rng);
    let x = b.input();
    let f = b.flatten(x);
    let d = b.dense(f, 2);
    b.finish(d, None)
}

#[test]
fn weight_hook_transforms_forward_values() {
    let net = linear_net();
    let x = Tensor::ones(&[1, 1, 2, 2]);
    let plain = net.forward(&x);
    let mut hooks = DoublingHooks {
        output_calls: 0,
        grad_calls: std::cell::Cell::new(0),
    };
    let hooked = forward(net.graph(), net.params(), &x, &mut hooks);
    // The dense layer is linear (bias unchanged, rank-1): doubling the
    // weight doubles (logits - bias).
    let bias = net.params().get(diva_nn::ParamId(1)).value.clone();
    let plain_out = plain.output(net.graph()).clone();
    let hooked_out = hooked.output(net.graph()).clone();
    for j in 0..2 {
        let p = plain_out.data()[j] - bias.data()[j];
        let h = hooked_out.data()[j] - bias.data()[j];
        assert!((h - 2.0 * p).abs() < 1e-5, "logit {j}: {h} vs 2*{p}");
    }
    // Output hook fired once per node (input, flatten, dense).
    assert_eq!(hooks.output_calls, 3);
}

#[test]
fn backward_consults_output_grad_per_node() {
    let net = linear_net();
    let x = Tensor::ones(&[1, 1, 2, 2]);
    let mut hooks = DoublingHooks {
        output_calls: 0,
        grad_calls: std::cell::Cell::new(0),
    };
    let exec = forward(net.graph(), net.params(), &x, &mut hooks);
    let mut scratch = net.params().clone();
    let dy = Tensor::ones(&[1, 2]);
    let gx = backward(net.graph(), &mut scratch, &exec, &dy, &hooks);
    assert_eq!(gx.dims(), x.dims());
    // output_grad fires for every node reached on the way back.
    assert_eq!(hooks.grad_calls.get(), 3);
    // Input gradient reflects the hooked (doubled) weight: compare with the
    // unhooked gradient.
    let plain_exec = net.forward(&x);
    let plain_gx = net.input_grad(&plain_exec, &dy);
    assert!(gx.allclose(&plain_gx.scale(2.0), 1e-5));
}
