//! `diva-prune` — magnitude weight pruning, the paper's second
//! edge-adaptation technique (§5.6).
//!
//! Mirrors Keras weight pruning (`tfmot.sparsity`): weights with the
//! smallest magnitudes are zeroed via binary masks, sparsity ramps up along a
//! polynomial schedule during fine-tuning, and masks are preserved through
//! all later training (and through quantization, for the pruned+quantized
//! models of Fig. 8c/d).
//!
//! ```
//! use diva_prune::{prune_network, PruneCfg};
//! use diva_models::{Architecture, ModelCfg};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
//! prune_network(&mut net, &PruneCfg::default());
//! assert!(net.params().global_sparsity() > 0.5);
//! ```

use diva_nn::train::{gather, gather_labels, shuffled_batches, EpochStats, TrainCfg};
use diva_nn::{losses, optim::Sgd, Network};
use diva_tensor::Tensor;
use rand::rngs::StdRng;

/// Pruning configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneCfg {
    /// Target fraction of weights to zero in each prunable tensor.
    pub sparsity: f32,
    /// Whether biases (rank-1 parameters) are pruned too. Keras prunes only
    /// kernels, so this defaults to `false`.
    pub prune_biases: bool,
}

impl Default for PruneCfg {
    fn default() -> Self {
        PruneCfg {
            // The paper reports pruned models compressed to ~1/3 size; at a
            // sparse-storage encoding that corresponds to zeroing about two
            // thirds of the weights.
            sparsity: 2.0 / 3.0,
            prune_biases: false,
        }
    }
}

impl PruneCfg {
    /// A configuration with the given target sparsity.
    pub fn with_sparsity(sparsity: f32) -> Self {
        PruneCfg {
            sparsity,
            ..PruneCfg::default()
        }
    }
}

/// Applies one-shot magnitude pruning at `cfg.sparsity` to every prunable
/// parameter of `net`, installing masks in the parameter store.
///
/// # Panics
///
/// Panics if `cfg.sparsity` is outside `[0, 1)`.
pub fn prune_network(net: &mut Network, cfg: &PruneCfg) {
    set_sparsity(net, cfg.sparsity, cfg.prune_biases);
}

/// Sets every prunable parameter's mask to the given sparsity level,
/// recomputed from current weight magnitudes (used by the schedule).
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1)`.
pub fn set_sparsity(net: &mut Network, sparsity: f32, prune_biases: bool) {
    assert!(
        (0.0..1.0).contains(&sparsity),
        "sparsity must be in [0, 1), got {sparsity}"
    );
    for p in net.params_mut().iter_mut() {
        let is_kernel = p.value.shape().rank() >= 2;
        if !is_kernel && !prune_biases {
            continue;
        }
        p.mask = Some(magnitude_mask(&p.value, sparsity));
        p.value = p.effective();
    }
}

/// Builds a binary mask zeroing the `sparsity` fraction of smallest-|w|
/// entries (ties broken by index for determinism).
pub fn magnitude_mask(w: &Tensor, sparsity: f32) -> Tensor {
    let n = w.len();
    let k = ((n as f32) * sparsity).round() as usize;
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        w.data()[a]
            .abs()
            .partial_cmp(&w.data()[b].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut mask = Tensor::ones(w.dims());
    for &i in idx.iter().take(k.min(n)) {
        mask.data_mut()[i] = 0.0;
    }
    mask
}

/// The polynomial sparsity ramp of Zhu & Gupta (2018), used by tfmot:
/// `s(t) = s_f + (s_i − s_f) (1 − t/T)^3`.
pub fn polynomial_sparsity(step: usize, total_steps: usize, s_init: f32, s_final: f32) -> f32 {
    if total_steps == 0 || step >= total_steps {
        return s_final;
    }
    let frac = 1.0 - step as f32 / total_steps as f32;
    s_final + (s_init - s_final) * frac.powi(3)
}

/// Prunes with a polynomial schedule while fine-tuning: each epoch raises
/// sparsity (recomputing masks from current magnitudes) and then trains one
/// epoch with masks enforced.
///
/// This is the paper's §5.1 pruned-model recipe ("applying Keras weight
/// pruning on original models ... then fine-tuned to reach their highest
/// accuracy"). Returns per-epoch stats.
pub fn prune_with_finetune(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    prune_cfg: &PruneCfg,
    train_cfg: &TrainCfg,
    rng: &mut StdRng,
) -> Vec<EpochStats> {
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "labels/images mismatch");
    let mut opt = Sgd::new(train_cfg.lr, train_cfg.momentum, train_cfg.weight_decay);
    let mut stats = Vec::with_capacity(train_cfg.epochs);
    for epoch in 0..train_cfg.epochs {
        let s = polynomial_sparsity(epoch, train_cfg.epochs.max(1) - 1, 0.0, prune_cfg.sparsity);
        set_sparsity(net, s, prune_cfg.prune_biases);
        let mut loss_sum = 0.0;
        let mut correct = 0usize;
        for batch in shuffled_batches(n, train_cfg.batch_size, rng) {
            let x = gather(images, &batch);
            let y = gather_labels(labels, &batch);
            let exec = net.forward(&x);
            let logits = exec.output(net.graph()).clone();
            let (loss, dlogits) = losses::cross_entropy(&logits, &y);
            loss_sum += loss * batch.len() as f32;
            correct += (0..batch.len())
                .filter(|&i| logits.row(i).argmax() == Some(y[i]))
                .count();
            net.backward(&exec, &dlogits);
            opt.step(net.params_mut());
        }
        stats.push(EpochStats {
            loss: loss_sum / n as f32,
            accuracy: correct as f32 / n as f32,
        });
    }
    stats
}

/// Size of the model if stored sparse (nonzero weights at 4 bytes plus one
/// index byte each) relative to dense fp32 — the "compressed to one third"
/// measurement the paper makes after pruning.
pub fn sparse_size_ratio(net: &Network) -> f32 {
    let mut dense_bytes = 0usize;
    let mut sparse_bytes = 0usize;
    for p in net.params().iter() {
        dense_bytes += 4 * p.value.len();
        let nonzero = p.value.data().iter().filter(|&&v| v != 0.0).count();
        sparse_bytes += 5 * nonzero;
    }
    if dense_bytes == 0 {
        return 1.0;
    }
    sparse_bytes as f32 / dense_bytes as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_models::{Architecture, ModelCfg};
    use diva_nn::train::evaluate;
    use diva_nn::Infer;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn magnitude_mask_zeroes_smallest() {
        let w = Tensor::from_vec(vec![0.1, -3.0, 0.5, -0.01, 2.0, 0.0], &[6]);
        let mask = magnitude_mask(&w, 0.5);
        assert_eq!(mask.data(), &[0.0, 1.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn mask_sparsity_matches_request() {
        let mut r = rng();
        let w = diva_tensor::init::normal(&mut r, &[100], 1.0);
        for s in [0.0, 0.25, 0.5, 0.9] {
            let mask = magnitude_mask(&w, s);
            let zeros = mask.data().iter().filter(|&&v| v == 0.0).count();
            assert_eq!(zeros, (100.0 * s) as usize);
        }
    }

    #[test]
    fn polynomial_schedule_shape() {
        // Starts at s_init, ends at s_final, monotone non-decreasing.
        assert_eq!(polynomial_sparsity(0, 10, 0.0, 0.8), 0.0);
        assert_eq!(polynomial_sparsity(10, 10, 0.0, 0.8), 0.8);
        let mut prev = -1.0;
        for t in 0..=10 {
            let s = polynomial_sparsity(t, 10, 0.0, 0.8);
            assert!(s >= prev);
            prev = s;
        }
        // Ramps fast early: halfway point is past half the final sparsity.
        assert!(polynomial_sparsity(5, 10, 0.0, 0.8) > 0.4);
    }

    #[test]
    fn prune_network_reaches_target_sparsity() {
        let mut net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng());
        prune_network(&mut net, &PruneCfg::with_sparsity(0.7));
        // Kernels pruned to 70%; biases unpruned, so global is slightly less.
        let g = net.params().global_sparsity();
        assert!((0.6..=0.7).contains(&g), "global sparsity {g}");
        // Weights actually zeroed in the values, not just masked.
        let zeros: usize = net
            .params()
            .iter()
            .map(|p| p.value.data().iter().filter(|&&v| v == 0.0).count())
            .sum();
        assert!(zeros > net.params().num_scalars() / 2);
    }

    #[test]
    fn pruned_model_still_runs_and_size_shrinks() {
        let mut net = Architecture::DenseNet.build(&ModelCfg::tiny(4), &mut rng());
        let before = sparse_size_ratio(&net);
        assert!(before > 0.9);
        prune_network(&mut net, &PruneCfg::default());
        let after = sparse_size_ratio(&net);
        // Paper: "model sizes were compressed to one third of their original
        // size" — ours lands in the same ballpark at 2/3 sparsity.
        assert!(after < 0.45, "sparse size ratio {after}");
        let logits = net.logits(&Tensor::zeros(&[1, 3, 8, 8]));
        assert_eq!(logits.dims(), &[1, 4]);
    }

    #[test]
    fn finetune_recovers_accuracy_under_masks() {
        let mut r = rng();
        // Simple separable data.
        let n = 80;
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { 0.25 } else { 0.75 };
            images.push(Tensor::from_vec(
                (0..3 * 64)
                    .map(|_| (base + r.gen_range(-0.15..0.15f32)).clamp(0.0, 1.0))
                    .collect(),
                &[3, 8, 8],
            ));
            labels.push(class);
        }
        let images = Tensor::stack(&images);
        let mut net = Architecture::ResNet.build(&ModelCfg::tiny(2), &mut r);
        // Pre-train dense, then prune with finetune.
        let cfg = TrainCfg {
            epochs: 10,
            batch_size: 16,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        diva_nn::train::train_classifier(&mut net, &images, &labels, &cfg, &mut r);
        prune_with_finetune(
            &mut net,
            &images,
            &labels,
            &PruneCfg::with_sparsity(0.5),
            &cfg,
            &mut r,
        );
        let acc = evaluate(&net, &images, &labels);
        assert!(acc > 0.9, "pruned+finetuned accuracy {acc}");
        let g = net.params().global_sparsity();
        assert!(g > 0.4, "sparsity after finetune {g}");
        // Masked weights stayed zero through training.
        for p in net.params().iter() {
            if let Some(mask) = &p.mask {
                for (v, m) in p.value.data().iter().zip(mask.data()) {
                    if *m == 0.0 {
                        assert_eq!(*v, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "sparsity must be in")]
    fn bad_sparsity_rejected() {
        let mut net = Architecture::ResNet.build(&ModelCfg::tiny(2), &mut rng());
        prune_network(&mut net, &PruneCfg::with_sparsity(1.0));
    }
}
