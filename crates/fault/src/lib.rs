//! diva-fault: deterministic fault injection + checkpoint integrity.
//!
//! The paper's deployment story (§4.3) pushes model files to flaky edge
//! devices and reads them back; a robust reproduction harness must survive
//! the failure modes that story implies — NaNs mid-ascent, a crashed
//! worker, a truncated model file — and report partial results instead of
//! dying. This crate provides the *injection* half: an env-gated,
//! deterministic fault plan that the instrumented layers (attack driver,
//! parallel fan-out, engine deployment, persistence) consult at well-defined
//! points. The *degradation* half lives at those call sites.
//!
//! - **Off by default, zero-cost when off.** [`armed`] is a single relaxed
//!   atomic load; no plan is parsed and no call site changes behaviour
//!   unless `DIVA_FAULT` is set (or a test installs a plan via
//!   [`set_plan`]).
//! - **Deterministic and replayable.** Faults are keyed by *predicates*
//!   (item index, step index, seeded bit positions), never by wall-clock or
//!   global countdowns, so the same plan produces the same faults for every
//!   `DIVA_JOBS` setting — the fault plan is part of the seed (DESIGN.md
//!   §7/§8).
//! - **Observable.** Every injected fault emits a `diva-trace` event and
//!   bumps a `fault.injected.*` counter, so a faulted run leaves evidence.
//!
//! # Plan grammar
//!
//! `DIVA_FAULT` holds `;`-separated fault specs, each
//! `class[:key=value,...]`:
//!
//! | class           | keys                  | effect                                      |
//! |-----------------|-----------------------|---------------------------------------------|
//! | `grad-nan`      | `step`, `item`, `sticky` | NaN into the attack gradient at `step`   |
//! | `grad-inf`      | `step`, `item`, `sticky` | +inf into the attack gradient at `step`  |
//! | `worker-panic`  | `item`                | panic the worker processing item `item`     |
//! | `worker-stall`  | `item`, `ms`          | stall the worker processing item `item`     |
//! | `slow-io`       | `ms`                  | delay checkpoint reads/writes by `ms`       |
//! | `bitflip`       | `count`, `seed`       | flip `count` bits in deployed int8 weights  |
//! | `file-truncate` | `bytes`               | drop the last `bytes` bytes of saved files  |
//! | `file-corrupt`  | `count`, `seed`       | flip `count` bits in saved file payloads    |
//! | `conn-drop`     | `job`                 | server drops the client socket after admitting job `job` |
//! | `journal-corrupt` | `count`, `seed`, `job`, `rec` | flip `count` bits in a journal record *after* sealing |
//!
//! `sticky=1` re-injects on retries, guaranteeing the divergence guard's
//! budget is exhausted (a deterministic *failure*); the default transient
//! fault fires once per `(item, step)` and is recovered by a single retry.
//!
//! `worker-stall` and `slow-io` are the chaos tests for the supervision
//! layer (DESIGN.md §10): the stall is executed by the fan-out as a
//! cooperative sleep that polls only the cancel token, so only the
//! supervisor's watchdog can end it early; `slow-io` delays checkpoint I/O
//! without corrupting anything. Both inject *latency*, never values, so
//! they cannot change any item's bytes — the determinism rule holds.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

pub mod ckpt;

/// 0 = not yet read from env, 1 = disarmed, 2 = armed.
static ARMED: AtomicU8 = AtomicU8::new(0);

/// The installed plan (env-parsed or test-injected).
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

thread_local! {
    /// Index of the work item the current thread is processing, for
    /// item-filtered fault predicates.
    static CURRENT_ITEM: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// True when a fault plan is installed. The disarmed path is a single
/// relaxed atomic load after the first call.
#[inline]
pub fn armed() -> bool {
    match ARMED.load(Ordering::Relaxed) {
        0 => init_from_env(),
        1 => false,
        _ => true,
    }
}

#[cold]
fn init_from_env() -> bool {
    let parsed = std::env::var("DIVA_FAULT")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .map(|s| FaultPlan::parse(&s));
    let mut guard = lock_plan();
    // A plan installed by set_plan between the atomic read and here wins.
    if ARMED.load(Ordering::Relaxed) != 0 {
        return guard.is_some();
    }
    match parsed {
        Some(Ok(plan)) => {
            diva_trace::event!(1, "fault.armed", spec = plan.spec.clone());
            *guard = Some(plan);
            ARMED.store(2, Ordering::Relaxed);
            true
        }
        Some(Err(e)) => {
            eprintln!("[diva-fault] ignoring invalid DIVA_FAULT: {e}");
            ARMED.store(1, Ordering::Relaxed);
            false
        }
        None => {
            ARMED.store(1, Ordering::Relaxed);
            false
        }
    }
}

fn lock_plan() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
    PLAN.lock().unwrap_or_else(|p| p.into_inner())
}

/// Installs (or clears, with `None`) a fault plan in-process, taking
/// precedence over the environment. Intended for tests.
pub fn set_plan(plan: Option<FaultPlan>) {
    let mut guard = lock_plan();
    ARMED.store(if plan.is_some() { 2 } else { 1 }, Ordering::Relaxed);
    *guard = plan;
}

/// Runs `f` with a snapshot of the installed plan.
fn with_plan<R>(f: impl FnOnce(&FaultPlan) -> R) -> Option<R> {
    if !armed() {
        return None;
    }
    lock_plan().as_ref().map(f)
}

/// One fault spec from the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Poison the attack gradient at a chosen step (1-based).
    GradPoison {
        /// NaN (`true`) or +inf (`false`).
        nan: bool,
        /// 1-based attack step to poison.
        step: usize,
        /// Restrict to one work item; `None` poisons every item.
        item: Option<usize>,
        /// Re-inject on guard retries (guaranteed failure) instead of
        /// firing once per `(item, step)`.
        sticky: bool,
    },
    /// Panic the worker processing a given item.
    WorkerPanic {
        /// Item index whose worker panics.
        item: usize,
    },
    /// Stall the worker processing an item: the fan-out sleeps, polling
    /// only its cancel token, until `ms` elapse or the supervisor's
    /// watchdog signals it.
    WorkerStall {
        /// Restrict to one work item; `None` stalls every item.
        item: Option<usize>,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Delay checkpoint reads and writes (slow storage).
    SlowIo {
        /// Delay per I/O operation in milliseconds.
        ms: u64,
    },
    /// Flip bits in deployed int8 engine weights.
    BitFlip {
        /// Number of bits to flip.
        count: usize,
        /// Seed for the bit positions.
        seed: u64,
    },
    /// Drop the last `bytes` bytes of persisted files.
    FileTruncate {
        /// Bytes to drop (clamped to the file size).
        bytes: usize,
    },
    /// Flip bits in persisted file payloads.
    FileCorrupt {
        /// Number of bits to flip.
        count: usize,
        /// Seed for the bit positions.
        seed: u64,
    },
    /// Drop the client connection right after the server admits a job:
    /// the job still runs and journals, the reply write fails.
    ConnDrop {
        /// Restrict to one job id; `None` drops every admitted job's
        /// connection.
        job: Option<u64>,
    },
    /// Flip bits in a written journal record *after* the integrity footer
    /// is sealed, so replay must detect and reject the record.
    JournalCorrupt {
        /// Number of bits to flip.
        count: usize,
        /// Seed for the bit positions.
        seed: u64,
        /// Restrict to one job id; `None` corrupts every record.
        job: Option<u64>,
        /// Restrict to one record kind; `None` corrupts both.
        rec: Option<ckpt::RecordKind>,
    },
}

/// A parsed `DIVA_FAULT` plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, in spec order.
    pub faults: Vec<Fault>,
    /// The original spec string (for reporting).
    pub spec: String,
}

/// A typed `DIVA_FAULT` parse error carrying the offending clause, so the
/// message pinpoints which `;`-separated spec was wrong (the same
/// convention as diva-trace's `ArtifactError`: typed variants, offending
/// input attached).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The offending clause (one `;`-separated spec), or the whole spec
    /// for plan-level errors like an empty plan.
    pub clause: String,
    /// What was wrong with it.
    pub kind: FaultParseErrorKind,
}

/// The ways a fault clause can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultParseErrorKind {
    /// The clause names a class the grammar does not know.
    UnknownClass(String),
    /// The clause uses a key its class does not accept.
    UnknownKey(String),
    /// An argument is not of the form `key=value`.
    NotKeyValue(String),
    /// A value failed to parse for its key.
    BadValue {
        /// The key whose value was rejected.
        key: String,
        /// The rejected value text.
        value: String,
    },
    /// The spec contained no fault clauses at all.
    EmptyPlan,
}

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let clause = &self.clause;
        match &self.kind {
            FaultParseErrorKind::UnknownClass(c) => {
                write!(f, "unknown fault class `{c}` in `{clause}`")
            }
            FaultParseErrorKind::UnknownKey(k) => write!(f, "unknown key `{k}` in `{clause}`"),
            FaultParseErrorKind::NotKeyValue(p) => {
                write!(f, "`{p}` is not key=value (in `{clause}`)")
            }
            FaultParseErrorKind::BadValue { key, value } => {
                write!(f, "bad {key}={value} in `{clause}`")
            }
            FaultParseErrorKind::EmptyPlan => write!(f, "empty fault plan"),
        }
    }
}

impl std::error::Error for FaultParseError {}

impl FaultParseError {
    fn new(clause: &str, kind: FaultParseErrorKind) -> FaultParseError {
        FaultParseError {
            clause: clause.to_string(),
            kind,
        }
    }
}

impl FaultPlan {
    /// Parses the `DIVA_FAULT` grammar (see the crate docs).
    ///
    /// # Errors
    ///
    /// Returns a [`FaultParseError`] naming the offending clause for
    /// unknown classes, unknown keys, or unparseable values.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultParseError> {
        let mut faults = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (class, args) = match part.split_once(':') {
                Some((c, a)) => (c.trim(), a),
                None => (part, ""),
            };
            let mut kv = std::collections::BTreeMap::new();
            for pair in args.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let (k, v) = pair.split_once('=').ok_or_else(|| {
                    FaultParseError::new(part, FaultParseErrorKind::NotKeyValue(pair.to_string()))
                })?;
                kv.insert(k.trim().to_string(), v.trim().to_string());
            }
            let bad = |key: &str, value: &str| {
                FaultParseError::new(
                    part,
                    FaultParseErrorKind::BadValue {
                        key: key.to_string(),
                        value: value.to_string(),
                    },
                )
            };
            let get_usize = |kv: &std::collections::BTreeMap<String, String>,
                             key: &str,
                             default: usize|
             -> Result<usize, FaultParseError> {
                match kv.get(key) {
                    Some(v) => v.parse().map_err(|_| bad(key, v)),
                    None => Ok(default),
                }
            };
            let get_u64 = |kv: &std::collections::BTreeMap<String, String>,
                           key: &str,
                           default: u64|
             -> Result<u64, FaultParseError> {
                match kv.get(key) {
                    Some(v) => v.parse().map_err(|_| bad(key, v)),
                    None => Ok(default),
                }
            };
            let known = |allowed: &[&str]| -> Result<(), FaultParseError> {
                for k in kv.keys() {
                    if !allowed.contains(&k.as_str()) {
                        return Err(FaultParseError::new(
                            part,
                            FaultParseErrorKind::UnknownKey(k.clone()),
                        ));
                    }
                }
                Ok(())
            };
            let fault = match class {
                "grad-nan" | "grad-inf" => {
                    known(&["step", "item", "sticky"])?;
                    Fault::GradPoison {
                        nan: class == "grad-nan",
                        step: get_usize(&kv, "step", 1)?,
                        item: kv
                            .get("item")
                            .map(|v| v.parse().map_err(|_| bad("item", v)))
                            .transpose()?,
                        sticky: get_usize(&kv, "sticky", 0)? != 0,
                    }
                }
                "worker-panic" => {
                    known(&["item"])?;
                    Fault::WorkerPanic {
                        item: get_usize(&kv, "item", 0)?,
                    }
                }
                "worker-stall" => {
                    known(&["item", "ms"])?;
                    Fault::WorkerStall {
                        item: kv
                            .get("item")
                            .map(|v| v.parse().map_err(|_| bad("item", v)))
                            .transpose()?,
                        ms: get_u64(&kv, "ms", 10_000)?,
                    }
                }
                "slow-io" => {
                    known(&["ms"])?;
                    Fault::SlowIo {
                        ms: get_u64(&kv, "ms", 25)?,
                    }
                }
                "bitflip" => {
                    known(&["count", "seed"])?;
                    Fault::BitFlip {
                        count: get_usize(&kv, "count", 1)?,
                        seed: get_u64(&kv, "seed", 0x5EED)?,
                    }
                }
                "file-truncate" => {
                    known(&["bytes"])?;
                    Fault::FileTruncate {
                        bytes: get_usize(&kv, "bytes", 16)?,
                    }
                }
                "file-corrupt" => {
                    known(&["count", "seed"])?;
                    Fault::FileCorrupt {
                        count: get_usize(&kv, "count", 1)?,
                        seed: get_u64(&kv, "seed", 0x5EED)?,
                    }
                }
                "conn-drop" => {
                    known(&["job"])?;
                    Fault::ConnDrop {
                        job: kv
                            .get("job")
                            .map(|v| v.parse().map_err(|_| bad("job", v)))
                            .transpose()?,
                    }
                }
                "journal-corrupt" => {
                    known(&["count", "seed", "job", "rec"])?;
                    Fault::JournalCorrupt {
                        count: get_usize(&kv, "count", 1)?,
                        seed: get_u64(&kv, "seed", 0x5EED)?,
                        job: kv
                            .get("job")
                            .map(|v| v.parse().map_err(|_| bad("job", v)))
                            .transpose()?,
                        rec: kv
                            .get("rec")
                            .map(|v| match v.as_str() {
                                "pending" => Ok(ckpt::RecordKind::Pending),
                                "done" => Ok(ckpt::RecordKind::Done),
                                _ => Err(bad("rec", v)),
                            })
                            .transpose()?,
                    }
                }
                other => {
                    return Err(FaultParseError::new(
                        part,
                        FaultParseErrorKind::UnknownClass(other.to_string()),
                    ))
                }
            };
            faults.push(fault);
        }
        if faults.is_empty() {
            return Err(FaultParseError::new(spec, FaultParseErrorKind::EmptyPlan));
        }
        Ok(FaultPlan {
            faults,
            spec: spec.to_string(),
        })
    }
}

/// The armed plan's original spec string, for reports.
pub fn armed_spec() -> Option<String> {
    with_plan(|p| p.spec.clone())
}

/// Serializes tests that install fault plans. The plan set by [`set_plan`]
/// is process-global, so a test that arms one — or that must observe a
/// quiescent plan while exercising a fault-sensitive code path — takes this
/// lock first to keep concurrently running tests from seeing its faults.
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Marks the current thread as processing work item `item` until the guard
/// drops. Item-filtered fault predicates ([`grad_fault`], [`maybe_panic`])
/// match against this scope.
pub struct ItemScope {
    prev: Option<usize>,
}

impl ItemScope {
    /// Enters item `item` on this thread.
    pub fn enter(item: usize) -> ItemScope {
        let prev = CURRENT_ITEM.with(|c| c.replace(Some(item)));
        ItemScope { prev }
    }
}

impl Drop for ItemScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_ITEM.with(|c| c.set(prev));
    }
}

/// The work item the current thread is inside, if any.
pub fn current_item() -> Option<usize> {
    CURRENT_ITEM.with(|c| c.get())
}

fn item_matches(filter: Option<usize>) -> bool {
    match filter {
        None => true,
        Some(want) => current_item() == Some(want),
    }
}

/// Poison value for an attack-gradient fault at `step` (1-based), if one is
/// armed for the current item. `fresh` is false on divergence-guard retries
/// of the same step: transient faults fire only on the fresh evaluation (so
/// one retry recovers), sticky faults fire every time (so the guard budget
/// is deterministically exhausted).
pub fn grad_fault(step: usize, fresh: bool) -> Option<f32> {
    if !armed() {
        return None;
    }
    with_plan(|plan| {
        for f in &plan.faults {
            if let Fault::GradPoison {
                nan,
                step: s,
                item,
                sticky,
            } = f
            {
                if *s == step && item_matches(*item) && (fresh || *sticky) {
                    diva_trace::counter!(
                        if *nan {
                            "fault.injected.grad_nan"
                        } else {
                            "fault.injected.grad_inf"
                        },
                        1
                    );
                    diva_trace::event!(
                        1,
                        "fault.injected",
                        class = if *nan { "grad-nan" } else { "grad-inf" },
                        step = step,
                        item = current_item().map(|i| i as u64).unwrap_or(u64::MAX),
                    );
                    return Some(if *nan { f32::NAN } else { f32::INFINITY });
                }
            }
        }
        None
    })
    .flatten()
}

/// Panics if a `worker-panic` fault is armed for `item`. Call from inside
/// the per-item closure of a catching fan-out.
pub fn maybe_panic(item: usize) {
    if !armed() {
        return;
    }
    let fire = with_plan(|plan| {
        plan.faults
            .iter()
            .any(|f| matches!(f, Fault::WorkerPanic { item: i } if *i == item))
    })
    .unwrap_or(false);
    if fire {
        diva_trace::counter!("fault.injected.worker_panic", 1);
        diva_trace::event!(1, "fault.injected", class = "worker-panic", item = item);
        panic!("injected worker panic on item {item}");
    }
}

/// Duration to stall the worker processing `item`, if a `worker-stall`
/// fault is armed for it. The *caller* executes the stall (diva-core's
/// fan-out runs it as a cooperative token-polling sleep) so this crate
/// stays dependency-free; the supervisor's watchdog is what ends an
/// over-deadline stall early.
pub fn stall_duration(item: usize) -> Option<std::time::Duration> {
    if !armed() {
        return None;
    }
    with_plan(|plan| {
        for f in &plan.faults {
            if let Fault::WorkerStall { item: filter, ms } = f {
                if filter.is_none_or(|want| want == item) {
                    diva_trace::counter!("fault.injected.worker_stall", 1);
                    diva_trace::event!(
                        1,
                        "fault.injected",
                        class = "worker-stall",
                        item = item,
                        ms = *ms,
                    );
                    return Some(std::time::Duration::from_millis(*ms));
                }
            }
        }
        None
    })
    .flatten()
}

/// Delay to apply to one checkpoint read or write, if a `slow-io` fault is
/// armed. The checkpoint layer ([`ckpt`]) sleeps for it before touching
/// the filesystem; nothing is corrupted, only delayed.
pub fn slow_io_delay() -> Option<std::time::Duration> {
    if !armed() {
        return None;
    }
    with_plan(|plan| {
        for f in &plan.faults {
            if let Fault::SlowIo { ms } = f {
                diva_trace::counter!("fault.injected.slow_io", 1);
                diva_trace::event!(1, "fault.injected", class = "slow-io", ms = *ms);
                return Some(std::time::Duration::from_millis(*ms));
            }
        }
        None
    })
    .flatten()
}

/// Seeded bit positions to flip in a store of `total_bits` bits, if a
/// `bitflip` fault is armed. Positions are deterministic in `(seed,
/// total_bits)` and deduplicated.
pub fn bit_flips(total_bits: u64) -> Option<Vec<u64>> {
    if !armed() || total_bits == 0 {
        return None;
    }
    with_plan(|plan| {
        for f in &plan.faults {
            if let Fault::BitFlip { count, seed } = f {
                let positions = seeded_positions(*seed, *count, total_bits);
                diva_trace::counter!("fault.injected.bitflip", positions.len() as u64);
                diva_trace::event!(
                    1,
                    "fault.injected",
                    class = "bitflip",
                    bits = positions.len(),
                    total_bits = total_bits,
                );
                return Some(positions);
            }
        }
        None
    })
    .flatten()
}

/// Applies any armed file fault to `bytes` (truncation, then bit flips),
/// returning whether a fault fired. Persistence layers call this on the
/// final serialized image immediately before the atomic write, so checksum
/// validation on the read side must reject the result.
pub fn corrupt_file_bytes(bytes: &mut Vec<u8>) -> bool {
    if !armed() {
        return false;
    }
    with_plan(|plan| {
        let mut fired = false;
        for f in &plan.faults {
            match f {
                Fault::FileTruncate { bytes: drop } => {
                    let keep = bytes.len().saturating_sub(*drop);
                    bytes.truncate(keep);
                    fired = true;
                    diva_trace::counter!("fault.injected.file_truncate", 1);
                    diva_trace::event!(
                        1,
                        "fault.injected",
                        class = "file-truncate",
                        dropped = *drop,
                        kept = keep,
                    );
                }
                Fault::FileCorrupt { count, seed } => {
                    let total_bits = bytes.len() as u64 * 8;
                    for pos in seeded_positions(*seed, *count, total_bits) {
                        bytes[(pos / 8) as usize] ^= 1 << (pos % 8);
                    }
                    fired = true;
                    diva_trace::counter!("fault.injected.file_corrupt", 1);
                    diva_trace::event!(1, "fault.injected", class = "file-corrupt", bits = *count,);
                }
                _ => {}
            }
        }
        fired
    })
    .unwrap_or(false)
}

/// True when an armed `conn-drop` fault matches job `job`: the server's
/// connection handler shuts the client socket down right after admission,
/// so the job completes and journals but the reply write fails. Latency/
/// visibility only — the job's bytes are unchanged.
pub fn conn_drop(job: u64) -> bool {
    if !armed() {
        return false;
    }
    with_plan(|plan| {
        for f in &plan.faults {
            if let Fault::ConnDrop { job: filter } = f {
                if filter.is_none_or(|want| want == job) {
                    diva_trace::counter!("fault.injected.conn_drop", 1);
                    diva_trace::event!(1, "fault.injected", class = "conn-drop", job = job);
                    return true;
                }
            }
        }
        false
    })
    .unwrap_or(false)
}

/// `(count, seed)` for an armed `journal-corrupt` fault matching a journal
/// record for job `job` of kind `kind`. The journal write path
/// ([`ckpt::write_journal_record`]) applies the flips *after* sealing the
/// footer, so the read side must reject the record — the crash-safety
/// property under test.
pub fn journal_corrupt_bits(job: u64, kind: ckpt::RecordKind) -> Option<(usize, u64)> {
    if !armed() {
        return None;
    }
    with_plan(|plan| {
        for f in &plan.faults {
            if let Fault::JournalCorrupt {
                count,
                seed,
                job: job_filter,
                rec,
            } = f
            {
                if job_filter.is_none_or(|want| want == job) && rec.is_none_or(|want| want == kind)
                {
                    diva_trace::counter!("fault.injected.journal_corrupt", 1);
                    diva_trace::event!(
                        1,
                        "fault.injected",
                        class = "journal-corrupt",
                        job = job,
                        bits = *count,
                    );
                    return Some((*count, *seed));
                }
            }
        }
        None
    })
    .flatten()
}

/// `count` distinct positions in `[0, total)` from a splitmix-style stream.
pub(crate) fn seeded_positions(seed: u64, count: usize, total: u64) -> Vec<u64> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0;
    while out.len() < count && attempts < count * 16 + 64 {
        attempts += 1;
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let pos = z % total;
        if !out.contains(&pos) {
            out.push(pos);
        }
    }
    out
}

/// FNV-1a 64-bit checksum, the integrity primitive shared by the checkpoint
/// footer ([`ckpt`]), model-file envelopes, and engine weight checksums.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The plan store is process-global; serialize plan-touching tests.
    fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parse_accepts_every_class_and_rejects_garbage() {
        let plan = FaultPlan::parse(
            "grad-nan:step=3,item=2,sticky=1; grad-inf; worker-panic:item=5; \
             bitflip:count=4,seed=9; file-truncate:bytes=32; file-corrupt:count=2",
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 6);
        assert_eq!(
            plan.faults[0],
            Fault::GradPoison {
                nan: true,
                step: 3,
                item: Some(2),
                sticky: true
            }
        );
        assert_eq!(
            plan.faults[1],
            Fault::GradPoison {
                nan: false,
                step: 1,
                item: None,
                sticky: false
            }
        );
        assert_eq!(plan.faults[2], Fault::WorkerPanic { item: 5 });
        assert_eq!(plan.faults[3], Fault::BitFlip { count: 4, seed: 9 });
        assert_eq!(plan.faults[4], Fault::FileTruncate { bytes: 32 });

        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("meteor-strike").is_err());
        assert!(FaultPlan::parse("grad-nan:step=x").is_err());
        assert!(FaultPlan::parse("grad-nan:bogus=1").is_err());
        assert!(FaultPlan::parse("grad-nan:step").is_err());
    }

    #[test]
    fn parse_accepts_stall_and_slow_io_classes() {
        let plan =
            FaultPlan::parse("worker-stall:item=3,ms=500; worker-stall; slow-io:ms=40").unwrap();
        assert_eq!(
            plan.faults[0],
            Fault::WorkerStall {
                item: Some(3),
                ms: 500
            }
        );
        assert_eq!(
            plan.faults[1],
            Fault::WorkerStall {
                item: None,
                ms: 10_000
            },
            "item defaults to every item, ms to 10s"
        );
        assert_eq!(plan.faults[2], Fault::SlowIo { ms: 40 });
        assert!(FaultPlan::parse("worker-stall:ms=abc").is_err());
        assert!(
            FaultPlan::parse("slow-io:item=1").is_err(),
            "slow-io has no item key"
        );
    }

    #[test]
    fn parse_errors_carry_the_offending_clause() {
        let e = FaultPlan::parse("grad-nan:step=2; meteor-strike:x=1").unwrap_err();
        assert_eq!(e.clause, "meteor-strike:x=1");
        assert_eq!(
            e.kind,
            FaultParseErrorKind::UnknownClass("meteor-strike".to_string())
        );
        assert!(e.to_string().contains("meteor-strike:x=1"));

        let e = FaultPlan::parse("grad-nan:step=x").unwrap_err();
        assert_eq!(e.clause, "grad-nan:step=x");
        assert_eq!(
            e.kind,
            FaultParseErrorKind::BadValue {
                key: "step".to_string(),
                value: "x".to_string()
            }
        );

        let e = FaultPlan::parse("worker-panic:bogus=1").unwrap_err();
        assert_eq!(e.kind, FaultParseErrorKind::UnknownKey("bogus".to_string()));
        assert_eq!(e.clause, "worker-panic:bogus=1");

        let e = FaultPlan::parse("grad-nan:step").unwrap_err();
        assert_eq!(e.kind, FaultParseErrorKind::NotKeyValue("step".to_string()));

        let e = FaultPlan::parse("  ;  ").unwrap_err();
        assert_eq!(e.kind, FaultParseErrorKind::EmptyPlan);
    }

    #[test]
    fn parse_accepts_serve_fault_classes() {
        let plan = FaultPlan::parse(
            "conn-drop:job=9; conn-drop; journal-corrupt:count=3,seed=7,job=4,rec=done; \
             journal-corrupt",
        )
        .unwrap();
        assert_eq!(plan.faults[0], Fault::ConnDrop { job: Some(9) });
        assert_eq!(plan.faults[1], Fault::ConnDrop { job: None });
        assert_eq!(
            plan.faults[2],
            Fault::JournalCorrupt {
                count: 3,
                seed: 7,
                job: Some(4),
                rec: Some(ckpt::RecordKind::Done),
            }
        );
        assert_eq!(
            plan.faults[3],
            Fault::JournalCorrupt {
                count: 1,
                seed: 0x5EED,
                job: None,
                rec: None,
            },
            "defaults: one bit, every job, both record kinds"
        );
        assert!(FaultPlan::parse("conn-drop:item=1").is_err());
        assert!(FaultPlan::parse("journal-corrupt:rec=maybe").is_err());
    }

    #[test]
    fn conn_drop_honours_job_filter() {
        let _g = lock_tests();
        set_plan(Some(FaultPlan::parse("conn-drop:job=3").unwrap()));
        assert!(conn_drop(3));
        assert!(!conn_drop(4), "wrong job");
        set_plan(Some(FaultPlan::parse("conn-drop").unwrap()));
        assert!(conn_drop(99), "no filter matches every job");
        set_plan(None);
        assert!(!conn_drop(3), "disarmed");
    }

    #[test]
    fn journal_corrupt_bits_honours_job_and_kind_filters() {
        let _g = lock_tests();
        set_plan(Some(
            FaultPlan::parse("journal-corrupt:count=2,seed=5,job=1,rec=pending").unwrap(),
        ));
        assert_eq!(
            journal_corrupt_bits(1, ckpt::RecordKind::Pending),
            Some((2, 5))
        );
        assert_eq!(journal_corrupt_bits(1, ckpt::RecordKind::Done), None);
        assert_eq!(journal_corrupt_bits(2, ckpt::RecordKind::Pending), None);
        set_plan(Some(FaultPlan::parse("journal-corrupt:count=2").unwrap()));
        assert_eq!(
            journal_corrupt_bits(7, ckpt::RecordKind::Done),
            Some((2, 0x5EED)),
            "unfiltered fault hits every record"
        );
        set_plan(None);
        assert_eq!(journal_corrupt_bits(1, ckpt::RecordKind::Pending), None);
    }

    #[test]
    fn stall_duration_honours_item_filter() {
        let _g = lock_tests();
        set_plan(Some(
            FaultPlan::parse("worker-stall:item=2,ms=123").unwrap(),
        ));
        assert_eq!(
            stall_duration(2),
            Some(std::time::Duration::from_millis(123))
        );
        assert_eq!(stall_duration(1), None, "wrong item");
        set_plan(Some(FaultPlan::parse("worker-stall:ms=9").unwrap()));
        assert_eq!(stall_duration(7), Some(std::time::Duration::from_millis(9)));
        set_plan(None);
        assert_eq!(stall_duration(2), None, "disarmed");
    }

    #[test]
    fn slow_io_delay_fires_only_when_armed() {
        let _g = lock_tests();
        set_plan(None);
        assert_eq!(slow_io_delay(), None);
        set_plan(Some(FaultPlan::parse("slow-io:ms=11").unwrap()));
        assert_eq!(slow_io_delay(), Some(std::time::Duration::from_millis(11)));
        set_plan(None);
    }

    #[test]
    fn disarmed_predicates_are_inert() {
        let _g = lock_tests();
        set_plan(None);
        assert!(!armed());
        assert_eq!(grad_fault(1, true), None);
        maybe_panic(0); // must not panic
        assert_eq!(bit_flips(1024), None);
        let mut bytes = vec![1, 2, 3];
        assert!(!corrupt_file_bytes(&mut bytes));
        assert_eq!(bytes, vec![1, 2, 3]);
    }

    #[test]
    fn grad_fault_honours_step_item_and_stickiness() {
        let _g = lock_tests();
        set_plan(Some(FaultPlan::parse("grad-nan:step=2,item=1").unwrap()));
        {
            let _scope = ItemScope::enter(1);
            assert_eq!(grad_fault(1, true), None, "wrong step");
            let v = grad_fault(2, true).expect("fires on the fresh eval");
            assert!(v.is_nan());
            assert_eq!(grad_fault(2, false), None, "transient: retry recovers");
        }
        {
            let _scope = ItemScope::enter(0);
            assert_eq!(grad_fault(2, true), None, "wrong item");
        }
        set_plan(Some(FaultPlan::parse("grad-inf:step=2,sticky=1").unwrap()));
        let _scope = ItemScope::enter(7);
        assert_eq!(grad_fault(2, false), Some(f32::INFINITY), "sticky re-fires");
        set_plan(None);
    }

    #[test]
    fn item_scope_nests_and_restores() {
        assert_eq!(current_item(), None);
        let outer = ItemScope::enter(4);
        assert_eq!(current_item(), Some(4));
        {
            let _inner = ItemScope::enter(9);
            assert_eq!(current_item(), Some(9));
        }
        assert_eq!(current_item(), Some(4));
        drop(outer);
        assert_eq!(current_item(), None);
    }

    #[test]
    fn worker_panic_fires_only_on_its_item() {
        let _g = lock_tests();
        set_plan(Some(FaultPlan::parse("worker-panic:item=3").unwrap()));
        maybe_panic(2);
        let caught = std::panic::catch_unwind(|| maybe_panic(3));
        assert!(caught.is_err());
        set_plan(None);
    }

    #[test]
    fn bit_positions_are_deterministic_distinct_and_in_range() {
        let _g = lock_tests();
        set_plan(Some(FaultPlan::parse("bitflip:count=8,seed=3").unwrap()));
        let a = bit_flips(1000).unwrap();
        let b = bit_flips(1000).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "positions must be distinct");
        assert!(a.iter().all(|&p| p < 1000));
        set_plan(None);
    }

    #[test]
    fn file_faults_mutate_bytes() {
        let _g = lock_tests();
        set_plan(Some(FaultPlan::parse("file-truncate:bytes=4").unwrap()));
        let mut bytes = (0u8..32).collect::<Vec<_>>();
        assert!(corrupt_file_bytes(&mut bytes));
        assert_eq!(bytes.len(), 28);

        set_plan(Some(FaultPlan::parse("file-corrupt:count=3").unwrap()));
        let clean = (0u8..32).collect::<Vec<_>>();
        let mut corrupted = clean.clone();
        assert!(corrupt_file_bytes(&mut corrupted));
        assert_eq!(corrupted.len(), clean.len());
        assert_ne!(corrupted, clean);
        set_plan(None);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
