//! Checkpoint files with a length+checksum footer and atomic write-rename.
//!
//! Format: `payload bytes` followed by a fixed 24-byte footer —
//! `b"DIVACKP1"` (magic + version), payload length as `u64` LE, and the
//! FNV-1a 64 checksum of the payload as `u64` LE. The footer makes
//! truncation (length mismatch) and corruption (checksum mismatch)
//! detectable without parsing the payload, and the tmp-sibling + rename
//! write means a crash mid-write leaves either the old file or no file,
//! never a half-written one.
//!
//! Armed file faults ([`crate::corrupt_file_bytes`]) are applied to the
//! complete on-disk image (payload + footer) just before the write, so a
//! faulted save produces exactly the corrupt artifact the read side must
//! reject.

use std::path::Path;

/// Footer magic + format version.
pub const MAGIC: &[u8; 8] = b"DIVACKP1";

/// Total footer size in bytes.
pub const FOOTER_LEN: usize = 24;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structurally invalid checkpoint (bad magic, truncated, checksum
    /// mismatch); the message says which check failed.
    Format(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::Format(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            CkptError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// Writes `payload` to `path` with the integrity footer, atomically: the
/// bytes land in a tmp sibling first and are renamed into place. Armed file
/// faults corrupt the on-disk image (that is the point of injecting them);
/// the fault fires on the *file*, not on the caller's payload.
///
/// # Errors
///
/// Returns [`CkptError::Io`] on filesystem failures.
pub fn write_atomic(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), CkptError> {
    let path = path.as_ref();
    maybe_slow_io();
    let mut image = seal(payload);
    crate::corrupt_file_bytes(&mut image);
    write_image(path, &image)
}

/// Appends the integrity footer to `payload`, producing the on-disk image.
fn seal(payload: &[u8]) -> Vec<u8> {
    let mut image = Vec::with_capacity(payload.len() + FOOTER_LEN);
    image.extend_from_slice(payload);
    image.extend_from_slice(MAGIC);
    image.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    image.extend_from_slice(&crate::fnv1a64(payload).to_le_bytes());
    image
}

/// The durable write: tmp sibling, fsync the file, rename into place, fsync
/// the parent directory. Without the directory sync the rename itself can
/// vanish on power loss — the data blocks survive but the directory entry
/// was never made durable. Every error path removes the tmp sibling so a
/// failed write leaves no stray `.tmp` files behind.
fn write_image(path: &Path, image: &[u8]) -> Result<(), CkptError> {
    use std::io::Write as _;
    let tmp = tmp_sibling(path);
    let cleanup = |e: std::io::Error| -> CkptError {
        let _ = std::fs::remove_file(&tmp);
        e.into()
    };
    let mut file = std::fs::File::create(&tmp).map_err(CkptError::Io)?;
    file.write_all(image).map_err(cleanup)?;
    file.sync_all().map_err(cleanup)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(cleanup)?;
    sync_parent_dir(path);
    Ok(())
}

/// Fsyncs `path`'s parent directory so the rename that put `path` in place
/// is durable. Best effort: a filesystem that cannot open or sync a
/// directory (some platforms, some mounts) does not fail the write that
/// already succeeded.
fn sync_parent_dir(path: &Path) {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if let Ok(dir) = std::fs::File::open(parent) {
        let _ = dir.sync_all();
    }
}

/// Reads a checkpoint written by [`write_atomic`], returning the verified
/// payload.
///
/// # Errors
///
/// Returns [`CkptError::Io`] when the file cannot be read and
/// [`CkptError::Format`] when the footer is missing, the magic or length
/// does not match, or the checksum disagrees with the payload.
pub fn read_verified(path: impl AsRef<Path>) -> Result<Vec<u8>, CkptError> {
    maybe_slow_io();
    let mut image = std::fs::read(path.as_ref())?;
    if image.len() < FOOTER_LEN {
        return Err(CkptError::Format(format!(
            "{} bytes is too short for the {FOOTER_LEN}-byte footer",
            image.len()
        )));
    }
    let footer_at = image.len() - FOOTER_LEN;
    let (magic, rest) = image[footer_at..].split_at(8);
    if magic != MAGIC {
        return Err(CkptError::Format("bad magic / unsupported version".into()));
    }
    let len = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")) as usize;
    let crc = u64::from_le_bytes(rest[8..].try_into().expect("8 bytes"));
    if len != footer_at {
        return Err(CkptError::Format(format!(
            "length mismatch: footer says {len}, file holds {footer_at}"
        )));
    }
    image.truncate(footer_at);
    let got = crate::fnv1a64(&image);
    if got != crc {
        return Err(CkptError::Format(format!(
            "checksum mismatch: footer {crc:#018x}, payload {got:#018x}"
        )));
    }
    Ok(image)
}

/// Armed `slow-io` faults delay every checkpoint read/write by the planned
/// amount — latency injection for the supervision layer's chaos tests.
fn maybe_slow_io() {
    if let Some(d) = crate::slow_io_delay() {
        std::thread::sleep(d);
    }
}

/// Per-item incremental checkpoints for a fan-out: one small file per work
/// item under a store directory, each payload prefixed with the store's
/// fingerprint and sealed with the standard footer. A cancelled or killed
/// run resumes at *item* granularity — completed items load, everything
/// else recomputes — and a fingerprint or integrity mismatch silently
/// recomputes rather than resurrecting stale bytes.
///
/// All operations are best-effort: a store that cannot write never fails
/// the run, it only loses resumability (and says so in trace events).
#[derive(Debug, Clone)]
pub struct ItemStore {
    dir: std::path::PathBuf,
    fingerprint: u64,
}

impl ItemStore {
    /// A store rooted at `dir` for inputs identified by `fingerprint`
    /// (hash of everything that determines the items' bytes).
    pub fn new(dir: impl Into<std::path::PathBuf>, fingerprint: u64) -> ItemStore {
        ItemStore {
            dir: dir.into(),
            fingerprint,
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, item: usize) -> std::path::PathBuf {
        self.dir.join(format!("item-{item}.ckpt"))
    }

    /// Loads item `item`'s payload if a valid checkpoint with a matching
    /// fingerprint exists. Missing files are silent; corrupt or mismatched
    /// ones emit a `ckpt.item_rejected` event and return `None` so the
    /// caller recomputes.
    pub fn load(&self, item: usize) -> Option<Vec<u8>> {
        let path = self.path(item);
        match read_verified(&path) {
            Ok(image) => {
                if image.len() < 8 {
                    self.reject(item, "payload shorter than the fingerprint");
                    return None;
                }
                let (fp, payload) = image.split_at(8);
                let fp = u64::from_le_bytes(fp.try_into().expect("8 bytes"));
                if fp != self.fingerprint {
                    self.reject(item, "fingerprint mismatch (inputs changed)");
                    return None;
                }
                diva_trace::counter!("ckpt.items_loaded", 1);
                Some(payload.to_vec())
            }
            Err(CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => {
                self.reject(item, &e.to_string());
                None
            }
        }
    }

    /// Stores item `item`'s payload (fingerprint-prefixed, atomically
    /// written). Best effort: failures emit a `ckpt.item_write_failed`
    /// event and are otherwise ignored.
    pub fn store(&self, item: usize, payload: &[u8]) {
        let _ = std::fs::create_dir_all(&self.dir);
        let mut image = Vec::with_capacity(8 + payload.len());
        image.extend_from_slice(&self.fingerprint.to_le_bytes());
        image.extend_from_slice(payload);
        match write_atomic(self.path(item), &image) {
            Ok(()) => diva_trace::counter!("ckpt.items_written", 1),
            Err(e) => {
                diva_trace::event!(
                    1,
                    "ckpt.item_write_failed",
                    item = item,
                    error = e.to_string(),
                );
            }
        }
    }

    fn reject(&self, item: usize, why: &str) {
        diva_trace::counter!("ckpt.item_rejected", 1);
        diva_trace::event!(
            1,
            "ckpt.item_rejected",
            item = item,
            path = self.path(item).display().to_string(),
            reason = why.to_string(),
        );
    }
}

/// Journal record magic + format version (the record header's own magic,
/// inside the standard sealed-file envelope).
pub const JOURNAL_MAGIC: &[u8; 8] = b"DIVAJOB1";

/// Fixed journal record header size: magic, job id, kind, status, six
/// reserved zero bytes, fingerprint.
pub const JOURNAL_HEADER_LEN: usize = 32;

/// Which half of a job's write-ahead pair a record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Written *before* the job is admitted to the queue: the intent.
    Pending = 1,
    /// Written when the job reaches a terminal status: the outcome.
    Done = 2,
}

/// One write-ahead journal record: a job id, whether this is the intent
/// (`Pending`, carrying the request payload) or the outcome (`Done`,
/// carrying the status code and result payload), and the executor
/// fingerprint that seals which model set / config produced it. Encoded as
/// the payload of a standard [`write_atomic`]-style sealed file, so
/// truncation and corruption are caught by the footer before the header is
/// even parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// The job this record belongs to.
    pub job: u64,
    /// Intent or outcome.
    pub kind: RecordKind,
    /// Terminal status code for `Done` records; 0 for `Pending`.
    pub status: u8,
    /// Fingerprint of the executor (model set + config) that the payload
    /// is only valid for.
    pub fingerprint: u64,
    /// Request payload (`Pending`) or result payload (`Done`).
    pub payload: Vec<u8>,
}

impl JournalRecord {
    /// Serializes the record (header + payload), without the file footer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(JOURNAL_HEADER_LEN + self.payload.len());
        out.extend_from_slice(JOURNAL_MAGIC);
        out.extend_from_slice(&self.job.to_le_bytes());
        out.push(self.kind as u8);
        out.push(self.status);
        out.extend_from_slice(&[0u8; 6]);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a record serialized by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Format`] when the buffer is shorter than the
    /// header, the magic is wrong, or the kind byte is unknown.
    pub fn decode(bytes: &[u8]) -> Result<JournalRecord, CkptError> {
        if bytes.len() < JOURNAL_HEADER_LEN {
            return Err(CkptError::Format(format!(
                "{} bytes is too short for the {JOURNAL_HEADER_LEN}-byte journal header",
                bytes.len()
            )));
        }
        if &bytes[..8] != JOURNAL_MAGIC {
            return Err(CkptError::Format(
                "bad journal magic / unsupported version".into(),
            ));
        }
        let job = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let kind = match bytes[16] {
            1 => RecordKind::Pending,
            2 => RecordKind::Done,
            other => {
                return Err(CkptError::Format(format!(
                    "unknown journal record kind {other}"
                )))
            }
        };
        let status = bytes[17];
        let fingerprint = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
        Ok(JournalRecord {
            job,
            kind,
            status,
            fingerprint,
            payload: bytes[JOURNAL_HEADER_LEN..].to_vec(),
        })
    }
}

/// Writes a journal record to `path` with the same durability contract as
/// [`write_atomic`]. Armed file faults apply as usual, and an armed
/// `journal-corrupt` fault matching this record's job and kind flips bits
/// *after* the footer is sealed — producing exactly the corrupt-but-renamed
/// artifact that replay must detect and reject.
///
/// # Errors
///
/// Returns [`CkptError::Io`] on filesystem failures.
pub fn write_journal_record(
    path: impl AsRef<Path>,
    record: &JournalRecord,
) -> Result<(), CkptError> {
    let path = path.as_ref();
    maybe_slow_io();
    let mut image = seal(&record.encode());
    crate::corrupt_file_bytes(&mut image);
    if let Some((count, seed)) = crate::journal_corrupt_bits(record.job, record.kind) {
        let total_bits = image.len() as u64 * 8;
        if total_bits > 0 {
            for pos in crate::seeded_positions(seed, count, total_bits) {
                image[(pos / 8) as usize] ^= 1 << (pos % 8);
            }
        }
    }
    write_image(path, &image)
}

/// Reads and parses a journal record written by [`write_journal_record`].
///
/// # Errors
///
/// Returns [`CkptError::Io`] when the file cannot be read and
/// [`CkptError::Format`] when the footer or the record header is invalid.
pub fn read_journal_record(path: impl AsRef<Path>) -> Result<JournalRecord, CkptError> {
    let payload = read_verified(path)?;
    JournalRecord::decode(&payload)
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "ckpt".into());
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("diva_fault_ckpt_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_and_leaves_no_tmp_file() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.ckpt");
        let payload = b"the quick brown fox".to_vec();
        write_atomic(&path, &payload).unwrap();
        assert_eq!(read_verified(&path).unwrap(), payload);
        assert!(!tmp_sibling(&path).exists(), "tmp sibling must be renamed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_truncation_corruption_and_bad_magic() {
        let dir = tmp_dir("detect");
        let path = dir.join("b.ckpt");
        let payload = vec![7u8; 256];
        write_atomic(&path, &payload).unwrap();

        // Truncation: length check fires.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Flipped payload byte: checksum check fires.
        let mut flipped = full.clone();
        flipped[10] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Wrong version in the magic: magic check fires.
        let mut wrong = full.clone();
        let at = wrong.len() - FOOTER_LEN + 7;
        wrong[at] = b'9';
        std::fs::write(&path, &wrong).unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Too short for any footer.
        std::fs::write(&path, b"tiny").unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Missing file is Io, not Format.
        assert!(matches!(
            read_verified(dir.join("missing.ckpt")),
            Err(CkptError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_writes_leave_no_tmp_sibling() {
        let dir = tmp_dir("no_stray_tmp");

        // Rename failure: the destination is a non-empty directory, so the
        // rename step errors after the tmp file was written and synced.
        let blocked = dir.join("blocked.ckpt");
        std::fs::create_dir_all(blocked.join("occupant")).unwrap();
        let err = write_atomic(&blocked, b"payload").unwrap_err();
        assert!(matches!(err, CkptError::Io(_)));
        assert!(
            !tmp_sibling(&blocked).exists(),
            "rename failure must remove the tmp sibling"
        );

        // Create failure: the parent directory does not exist, so nothing
        // is ever written and nothing must be left behind.
        let orphan = dir.join("does-not-exist").join("c.ckpt");
        assert!(matches!(
            write_atomic(&orphan, b"payload"),
            Err(CkptError::Io(_))
        ));
        assert!(!tmp_sibling(&orphan).exists());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_record_round_trips_and_rejects_bad_headers() {
        let dir = tmp_dir("journal_roundtrip");
        let path = dir.join("job-7.ckpt");
        let rec = JournalRecord {
            job: 7,
            kind: RecordKind::Done,
            status: 2,
            fingerprint: 0xDEAD_BEEF,
            payload: b"adv bytes".to_vec(),
        };
        write_journal_record(&path, &rec).unwrap();
        assert_eq!(read_journal_record(&path).unwrap(), rec);
        assert!(!tmp_sibling(&path).exists());

        // Decode-level rejections: short buffer, wrong magic, bad kind.
        assert!(matches!(
            JournalRecord::decode(&[0u8; 8]),
            Err(CkptError::Format(_))
        ));
        let mut bytes = rec.encode();
        bytes[0] = b'X';
        assert!(matches!(
            JournalRecord::decode(&bytes),
            Err(CkptError::Format(_))
        ));
        let mut bytes = rec.encode();
        bytes[16] = 9;
        assert!(matches!(
            JournalRecord::decode(&bytes),
            Err(CkptError::Format(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_corrupt_fault_produces_a_rejected_record() {
        let _g = crate::test_lock();
        let dir = tmp_dir("journal_fault");
        let pending = JournalRecord {
            job: 4,
            kind: RecordKind::Pending,
            status: 0,
            fingerprint: 1,
            payload: b"request".to_vec(),
        };
        let done = JournalRecord {
            job: 4,
            kind: RecordKind::Done,
            status: 0,
            fingerprint: 1,
            payload: b"result".to_vec(),
        };
        crate::set_plan(Some(
            crate::FaultPlan::parse("journal-corrupt:count=3,seed=11,job=4,rec=done").unwrap(),
        ));
        // The fault is scoped to job 4's done record: its pending record and
        // other jobs' records stay intact.
        let p_path = dir.join("p.ckpt");
        let d_path = dir.join("d.ckpt");
        write_journal_record(&p_path, &pending).unwrap();
        write_journal_record(&d_path, &done).unwrap();
        assert_eq!(read_journal_record(&p_path).unwrap(), pending);
        assert!(
            matches!(read_journal_record(&d_path), Err(CkptError::Format(_))),
            "post-seal corruption must fail footer verification"
        );
        let other = JournalRecord { job: 5, ..done };
        write_journal_record(&d_path, &other).unwrap();
        assert_eq!(read_journal_record(&d_path).unwrap().job, 5);
        crate::set_plan(None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn item_store_round_trips_per_item_payloads() {
        let dir = tmp_dir("items_roundtrip");
        let store = ItemStore::new(dir.join("store"), 0xFEED_F00D);
        assert_eq!(store.load(3), None, "empty store is a silent miss");
        store.store(3, b"item three");
        store.store(7, b"item seven");
        assert_eq!(store.load(3).as_deref(), Some(&b"item three"[..]));
        assert_eq!(store.load(7).as_deref(), Some(&b"item seven"[..]));
        assert_eq!(store.load(4), None, "unstored items stay misses");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn item_store_rejects_mismatched_fingerprint_and_corruption() {
        let dir = tmp_dir("items_reject");
        let store = ItemStore::new(dir.join("store"), 1);
        store.store(0, b"payload");

        // Same directory, different fingerprint: inputs changed, recompute.
        let stale = ItemStore::new(dir.join("store"), 2);
        assert_eq!(stale.load(0), None);

        // Corrupt the file on disk: integrity check fires, recompute.
        let path = store.dir().join("item-0.ckpt");
        let mut image = std::fs::read(&path).unwrap();
        image[9] ^= 0x01;
        std::fs::write(&path, &image).unwrap();
        assert_eq!(store.load(0), None);
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
