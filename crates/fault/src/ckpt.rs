//! Checkpoint files with a length+checksum footer and atomic write-rename.
//!
//! Format: `payload bytes` followed by a fixed 24-byte footer —
//! `b"DIVACKP1"` (magic + version), payload length as `u64` LE, and the
//! FNV-1a 64 checksum of the payload as `u64` LE. The footer makes
//! truncation (length mismatch) and corruption (checksum mismatch)
//! detectable without parsing the payload, and the tmp-sibling + rename
//! write means a crash mid-write leaves either the old file or no file,
//! never a half-written one.
//!
//! Armed file faults ([`crate::corrupt_file_bytes`]) are applied to the
//! complete on-disk image (payload + footer) just before the write, so a
//! faulted save produces exactly the corrupt artifact the read side must
//! reject.

use std::path::Path;

/// Footer magic + format version.
pub const MAGIC: &[u8; 8] = b"DIVACKP1";

/// Total footer size in bytes.
pub const FOOTER_LEN: usize = 24;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structurally invalid checkpoint (bad magic, truncated, checksum
    /// mismatch); the message says which check failed.
    Format(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::Format(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            CkptError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// Writes `payload` to `path` with the integrity footer, atomically: the
/// bytes land in a tmp sibling first and are renamed into place. Armed file
/// faults corrupt the on-disk image (that is the point of injecting them);
/// the fault fires on the *file*, not on the caller's payload.
///
/// # Errors
///
/// Returns [`CkptError::Io`] on filesystem failures.
pub fn write_atomic(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), CkptError> {
    let path = path.as_ref();
    let mut image = Vec::with_capacity(payload.len() + FOOTER_LEN);
    image.extend_from_slice(payload);
    image.extend_from_slice(MAGIC);
    image.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    image.extend_from_slice(&crate::fnv1a64(payload).to_le_bytes());
    crate::corrupt_file_bytes(&mut image);
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, &image)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e.into())
        }
    }
}

/// Reads a checkpoint written by [`write_atomic`], returning the verified
/// payload.
///
/// # Errors
///
/// Returns [`CkptError::Io`] when the file cannot be read and
/// [`CkptError::Format`] when the footer is missing, the magic or length
/// does not match, or the checksum disagrees with the payload.
pub fn read_verified(path: impl AsRef<Path>) -> Result<Vec<u8>, CkptError> {
    let mut image = std::fs::read(path.as_ref())?;
    if image.len() < FOOTER_LEN {
        return Err(CkptError::Format(format!(
            "{} bytes is too short for the {FOOTER_LEN}-byte footer",
            image.len()
        )));
    }
    let footer_at = image.len() - FOOTER_LEN;
    let (magic, rest) = image[footer_at..].split_at(8);
    if magic != MAGIC {
        return Err(CkptError::Format("bad magic / unsupported version".into()));
    }
    let len = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")) as usize;
    let crc = u64::from_le_bytes(rest[8..].try_into().expect("8 bytes"));
    if len != footer_at {
        return Err(CkptError::Format(format!(
            "length mismatch: footer says {len}, file holds {footer_at}"
        )));
    }
    image.truncate(footer_at);
    let got = crate::fnv1a64(&image);
    if got != crc {
        return Err(CkptError::Format(format!(
            "checksum mismatch: footer {crc:#018x}, payload {got:#018x}"
        )));
    }
    Ok(image)
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "ckpt".into());
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("diva_fault_ckpt_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_and_leaves_no_tmp_file() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.ckpt");
        let payload = b"the quick brown fox".to_vec();
        write_atomic(&path, &payload).unwrap();
        assert_eq!(read_verified(&path).unwrap(), payload);
        assert!(!tmp_sibling(&path).exists(), "tmp sibling must be renamed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_truncation_corruption_and_bad_magic() {
        let dir = tmp_dir("detect");
        let path = dir.join("b.ckpt");
        let payload = vec![7u8; 256];
        write_atomic(&path, &payload).unwrap();

        // Truncation: length check fires.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Flipped payload byte: checksum check fires.
        let mut flipped = full.clone();
        flipped[10] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Wrong version in the magic: magic check fires.
        let mut wrong = full.clone();
        let at = wrong.len() - FOOTER_LEN + 7;
        wrong[at] = b'9';
        std::fs::write(&path, &wrong).unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Too short for any footer.
        std::fs::write(&path, b"tiny").unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Missing file is Io, not Format.
        assert!(matches!(
            read_verified(dir.join("missing.ckpt")),
            Err(CkptError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
