//! Checkpoint files with a length+checksum footer and atomic write-rename.
//!
//! Format: `payload bytes` followed by a fixed 24-byte footer —
//! `b"DIVACKP1"` (magic + version), payload length as `u64` LE, and the
//! FNV-1a 64 checksum of the payload as `u64` LE. The footer makes
//! truncation (length mismatch) and corruption (checksum mismatch)
//! detectable without parsing the payload, and the tmp-sibling + rename
//! write means a crash mid-write leaves either the old file or no file,
//! never a half-written one.
//!
//! Armed file faults ([`crate::corrupt_file_bytes`]) are applied to the
//! complete on-disk image (payload + footer) just before the write, so a
//! faulted save produces exactly the corrupt artifact the read side must
//! reject.

use std::path::Path;

/// Footer magic + format version.
pub const MAGIC: &[u8; 8] = b"DIVACKP1";

/// Total footer size in bytes.
pub const FOOTER_LEN: usize = 24;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structurally invalid checkpoint (bad magic, truncated, checksum
    /// mismatch); the message says which check failed.
    Format(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::Format(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            CkptError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// Writes `payload` to `path` with the integrity footer, atomically: the
/// bytes land in a tmp sibling first and are renamed into place. Armed file
/// faults corrupt the on-disk image (that is the point of injecting them);
/// the fault fires on the *file*, not on the caller's payload.
///
/// # Errors
///
/// Returns [`CkptError::Io`] on filesystem failures.
pub fn write_atomic(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), CkptError> {
    let path = path.as_ref();
    maybe_slow_io();
    let mut image = Vec::with_capacity(payload.len() + FOOTER_LEN);
    image.extend_from_slice(payload);
    image.extend_from_slice(MAGIC);
    image.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    image.extend_from_slice(&crate::fnv1a64(payload).to_le_bytes());
    crate::corrupt_file_bytes(&mut image);
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, &image)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e.into())
        }
    }
}

/// Reads a checkpoint written by [`write_atomic`], returning the verified
/// payload.
///
/// # Errors
///
/// Returns [`CkptError::Io`] when the file cannot be read and
/// [`CkptError::Format`] when the footer is missing, the magic or length
/// does not match, or the checksum disagrees with the payload.
pub fn read_verified(path: impl AsRef<Path>) -> Result<Vec<u8>, CkptError> {
    maybe_slow_io();
    let mut image = std::fs::read(path.as_ref())?;
    if image.len() < FOOTER_LEN {
        return Err(CkptError::Format(format!(
            "{} bytes is too short for the {FOOTER_LEN}-byte footer",
            image.len()
        )));
    }
    let footer_at = image.len() - FOOTER_LEN;
    let (magic, rest) = image[footer_at..].split_at(8);
    if magic != MAGIC {
        return Err(CkptError::Format("bad magic / unsupported version".into()));
    }
    let len = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")) as usize;
    let crc = u64::from_le_bytes(rest[8..].try_into().expect("8 bytes"));
    if len != footer_at {
        return Err(CkptError::Format(format!(
            "length mismatch: footer says {len}, file holds {footer_at}"
        )));
    }
    image.truncate(footer_at);
    let got = crate::fnv1a64(&image);
    if got != crc {
        return Err(CkptError::Format(format!(
            "checksum mismatch: footer {crc:#018x}, payload {got:#018x}"
        )));
    }
    Ok(image)
}

/// Armed `slow-io` faults delay every checkpoint read/write by the planned
/// amount — latency injection for the supervision layer's chaos tests.
fn maybe_slow_io() {
    if let Some(d) = crate::slow_io_delay() {
        std::thread::sleep(d);
    }
}

/// Per-item incremental checkpoints for a fan-out: one small file per work
/// item under a store directory, each payload prefixed with the store's
/// fingerprint and sealed with the standard footer. A cancelled or killed
/// run resumes at *item* granularity — completed items load, everything
/// else recomputes — and a fingerprint or integrity mismatch silently
/// recomputes rather than resurrecting stale bytes.
///
/// All operations are best-effort: a store that cannot write never fails
/// the run, it only loses resumability (and says so in trace events).
#[derive(Debug, Clone)]
pub struct ItemStore {
    dir: std::path::PathBuf,
    fingerprint: u64,
}

impl ItemStore {
    /// A store rooted at `dir` for inputs identified by `fingerprint`
    /// (hash of everything that determines the items' bytes).
    pub fn new(dir: impl Into<std::path::PathBuf>, fingerprint: u64) -> ItemStore {
        ItemStore {
            dir: dir.into(),
            fingerprint,
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, item: usize) -> std::path::PathBuf {
        self.dir.join(format!("item-{item}.ckpt"))
    }

    /// Loads item `item`'s payload if a valid checkpoint with a matching
    /// fingerprint exists. Missing files are silent; corrupt or mismatched
    /// ones emit a `ckpt.item_rejected` event and return `None` so the
    /// caller recomputes.
    pub fn load(&self, item: usize) -> Option<Vec<u8>> {
        let path = self.path(item);
        match read_verified(&path) {
            Ok(image) => {
                if image.len() < 8 {
                    self.reject(item, "payload shorter than the fingerprint");
                    return None;
                }
                let (fp, payload) = image.split_at(8);
                let fp = u64::from_le_bytes(fp.try_into().expect("8 bytes"));
                if fp != self.fingerprint {
                    self.reject(item, "fingerprint mismatch (inputs changed)");
                    return None;
                }
                diva_trace::counter!("ckpt.items_loaded", 1);
                Some(payload.to_vec())
            }
            Err(CkptError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => {
                self.reject(item, &e.to_string());
                None
            }
        }
    }

    /// Stores item `item`'s payload (fingerprint-prefixed, atomically
    /// written). Best effort: failures emit a `ckpt.item_write_failed`
    /// event and are otherwise ignored.
    pub fn store(&self, item: usize, payload: &[u8]) {
        let _ = std::fs::create_dir_all(&self.dir);
        let mut image = Vec::with_capacity(8 + payload.len());
        image.extend_from_slice(&self.fingerprint.to_le_bytes());
        image.extend_from_slice(payload);
        match write_atomic(self.path(item), &image) {
            Ok(()) => diva_trace::counter!("ckpt.items_written", 1),
            Err(e) => {
                diva_trace::event!(
                    1,
                    "ckpt.item_write_failed",
                    item = item,
                    error = e.to_string(),
                );
            }
        }
    }

    fn reject(&self, item: usize, why: &str) {
        diva_trace::counter!("ckpt.item_rejected", 1);
        diva_trace::event!(
            1,
            "ckpt.item_rejected",
            item = item,
            path = self.path(item).display().to_string(),
            reason = why.to_string(),
        );
    }
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "ckpt".into());
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("diva_fault_ckpt_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_and_leaves_no_tmp_file() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.ckpt");
        let payload = b"the quick brown fox".to_vec();
        write_atomic(&path, &payload).unwrap();
        assert_eq!(read_verified(&path).unwrap(), payload);
        assert!(!tmp_sibling(&path).exists(), "tmp sibling must be renamed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_truncation_corruption_and_bad_magic() {
        let dir = tmp_dir("detect");
        let path = dir.join("b.ckpt");
        let payload = vec![7u8; 256];
        write_atomic(&path, &payload).unwrap();

        // Truncation: length check fires.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Flipped payload byte: checksum check fires.
        let mut flipped = full.clone();
        flipped[10] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Wrong version in the magic: magic check fires.
        let mut wrong = full.clone();
        let at = wrong.len() - FOOTER_LEN + 7;
        wrong[at] = b'9';
        std::fs::write(&path, &wrong).unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Too short for any footer.
        std::fs::write(&path, b"tiny").unwrap();
        assert!(matches!(read_verified(&path), Err(CkptError::Format(_))));

        // Missing file is Io, not Format.
        assert!(matches!(
            read_verified(dir.join("missing.ckpt")),
            Err(CkptError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn item_store_round_trips_per_item_payloads() {
        let dir = tmp_dir("items_roundtrip");
        let store = ItemStore::new(dir.join("store"), 0xFEED_F00D);
        assert_eq!(store.load(3), None, "empty store is a silent miss");
        store.store(3, b"item three");
        store.store(7, b"item seven");
        assert_eq!(store.load(3).as_deref(), Some(&b"item three"[..]));
        assert_eq!(store.load(7).as_deref(), Some(&b"item seven"[..]));
        assert_eq!(store.load(4), None, "unstored items stay misses");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn item_store_rejects_mismatched_fingerprint_and_corruption() {
        let dir = tmp_dir("items_reject");
        let store = ItemStore::new(dir.join("store"), 1);
        store.store(0, b"payload");

        // Same directory, different fingerprint: inputs changed, recompute.
        let stale = ItemStore::new(dir.join("store"), 2);
        assert_eq!(stale.load(0), None);

        // Corrupt the file on disk: integrity check fires, recompute.
        let path = store.dir().join("item-0.ckpt");
        let mut image = std::fs::read(&path).unwrap();
        image[9] ^= 0x01;
        std::fs::write(&path, &image).unwrap();
        assert_eq!(store.load(0), None);
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
