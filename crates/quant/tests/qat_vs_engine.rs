//! Differential test: QAT fake-quant simulation vs. the integer engine.
//!
//! The paper's attack transfers because the fake-quant network the attacker
//! differentiates through is a faithful simulation of the int8 engine the
//! victim deploys. This file pins that faithfulness down as a contract:
//!
//! 1. **Argmax agreement** ≥ 99% pooled across all architecture families
//!    and several weight draws.
//! 2. **Logit agreement** within requantization error: the engine rounds at
//!    every layer boundary (≤ ½ LSB each), so end-to-end logits may differ
//!    from the float simulation by a few *output* quanta — never more.
//! 3. **Golden vector**: the engine's dequantized logits for one fixed
//!    weight draw are checked against constants embedded below, so a change
//!    in rounding mode, requant multiplier, or observer placement shows up
//!    as a diff in review rather than a silent drift.
//!
//! All weights and images come from a tiny in-file LCG, *not* from `rand`,
//! so every value — including the golden vector — is identical on any
//! platform and toolchain.

use diva_models::{Architecture, ModelCfg};
use diva_nn::Infer;
use diva_quant::{Int8Engine, QatNetwork, QuantCfg};
use diva_tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

/// Deterministic uniform values in [-1, 1): a 32-bit LCG (Numerical Recipes
/// constants), independent of the `rand` crate.
struct Lcg(u32);

impl Lcg {
    fn next_unit(&mut self) -> f32 {
        self.0 = self.0.wrapping_mul(1664525).wrapping_add(1013904223);
        // Top 24 bits → [0, 1) exactly representable in f32, then shift.
        (self.0 >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
    }
}

/// Overwrites every parameter with LCG values scaled fan-in style
/// (`1/sqrt(fan_in)` for weight tensors, small constants for 1-D biases),
/// erasing whatever `rand`-dependent init `Architecture::build` produced.
fn lcg_reinit(net: &mut diva_nn::Network, seed: u32) {
    let mut lcg = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
    for p in net.params_mut().iter_mut() {
        let dims = p.value.dims().to_vec();
        let scale = if dims.len() >= 2 {
            let fan_in = (p.value.len() / dims[0]).max(1);
            1.0 / (fan_in as f32).sqrt()
        } else {
            0.1
        };
        for v in p.value.data_mut() {
            *v = lcg.next_unit() * scale;
        }
    }
}

/// `n` images in [0, 1) from the LCG, shaped `[n, c, h, w]`.
fn lcg_images(seed: u32, n: usize, dims: &[usize]) -> Tensor {
    let mut lcg = Lcg(seed.wrapping_mul(40503).wrapping_add(7));
    let per: usize = dims.iter().product();
    let mut full = vec![0.0f32; n * per];
    for v in &mut full {
        *v = lcg.next_unit() * 0.5 + 0.5;
    }
    let mut shape = vec![n];
    shape.extend_from_slice(dims);
    Tensor::from_vec(full, &shape)
}

/// Builds an arch with LCG weights, calibrates QAT on `images`, and lowers
/// to the integer engine.
fn build_pair(arch: Architecture, seed: u32, images: &Tensor) -> (QatNetwork, Int8Engine) {
    // `build` wants an RNG for its init, but every value it writes is
    // overwritten by `lcg_reinit`, so the draw below never reaches the test.
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = arch.build(&ModelCfg::tiny(4), &mut rng);
    lcg_reinit(&mut net, seed);
    let mut qat = QatNetwork::new(net, QuantCfg::default());
    qat.calibrate(images);
    let engine = Int8Engine::from_qat(&qat);
    (qat, engine)
}

#[test]
fn argmax_agreement_at_least_99_percent() {
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut worst: Option<(Architecture, u32, usize, usize)> = None;
    for arch in Architecture::ALL {
        for seed in 0..4u32 {
            let images = lcg_images(seed * 31 + arch as u32, 16, &[3, 8, 8]);
            let (qat, engine) = build_pair(arch, seed, &images);
            let a = qat
                .predict(&images)
                .iter()
                .zip(engine.predict(&images))
                .filter(|(p, q)| **p == *q)
                .count();
            if a < 16 {
                let prev = worst.map(|(_, _, a, _)| a).unwrap_or(usize::MAX);
                if a < prev {
                    worst = Some((arch, seed, a, 16));
                }
            }
            agree += a;
            total += 16;
        }
    }
    assert!(
        agree * 100 >= total * 99,
        "fake-quant vs engine argmax agreement {agree}/{total} < 99% (worst case: {worst:?})"
    );
}

#[test]
fn logits_within_requantization_error() {
    // Each layer's requant rounds to the nearest step (≤ ½ LSB); the tiny
    // models are ≤ 8 quantized ops deep, so end-to-end drift beyond 6
    // output quanta means the engine is *not* computing the same network.
    for arch in Architecture::ALL {
        for seed in 0..4u32 {
            let images = lcg_images(seed * 31 + arch as u32 + 100, 8, &[3, 8, 8]);
            let (qat, engine) = build_pair(arch, seed, &images);
            let out_scale = engine.qparams().last().expect("output qparams").scale;
            let diff = qat.logits(&images).sub(&engine.logits(&images)).abs().max();
            assert!(
                diff <= 6.0 * out_scale,
                "{arch} seed {seed}: logits differ by {diff} (= {} output quanta, scale {out_scale})",
                diff / out_scale
            );
        }
    }
}

/// Engine logits for `Architecture::ResNet`, LCG seed 2022, two images —
/// regenerate by running this test and copying the values from the failure
/// message if an *intentional* quantization change lands.
const GOLDEN_LOGITS: [[f32; 4]; 2] = [
    [-0.127339, -0.065359846, -0.046202652, 0.15100378],
    [-0.12057765, -0.052964013, -0.032679923, 0.16001894],
];

#[test]
fn golden_vector_fixed_seed() {
    let images = lcg_images(2022, 2, &[3, 8, 8]);
    let (_, engine) = build_pair(Architecture::ResNet, 2022, &images);
    let logits = engine.logits(&images);
    let mut actual = [[0.0f32; 4]; 2];
    for (i, row) in actual.iter_mut().enumerate() {
        row.copy_from_slice(logits.row(i).data());
    }
    assert_eq!(
        actual, GOLDEN_LOGITS,
        "engine logits drifted from the golden vector; if the quantization \
         change is intentional, update GOLDEN_LOGITS to the left-hand values"
    );
}

/// Per-node `(kind, requants, saturated)` captured from the **pre-fusion**
/// engine (separate per-element requant pass) on the `golden_vector` fixture
/// — ResNet, LCG seed 2022, two images. The fused GEMM epilogue must
/// reproduce these totals and the logits above exactly; any drift means the
/// fusion changed observable arithmetic, not just its schedule.
const GOLDEN_SAT_RESNET: [(&str, u64, u64); 32] = [
    ("input", 0, 0),
    ("conv2d", 768, 1),
    ("relu", 768, 1),
    ("conv2d", 768, 0),
    ("relu", 768, 0),
    ("conv2d", 768, 1),
    ("add", 768, 1),
    ("relu", 768, 0),
    ("conv2d", 768, 0),
    ("relu", 768, 0),
    ("conv2d", 768, 0),
    ("add", 768, 1),
    ("relu", 768, 0),
    ("conv2d", 384, 0),
    ("relu", 384, 0),
    ("conv2d", 384, 0),
    ("conv2d", 384, 0),
    ("add", 384, 0),
    ("relu", 384, 0),
    ("conv2d", 384, 0),
    ("relu", 384, 0),
    ("conv2d", 384, 0),
    ("add", 384, 0),
    ("relu", 384, 0),
    ("conv2d", 144, 0),
    ("relu", 144, 0),
    ("conv2d", 144, 0),
    ("conv2d", 144, 0),
    ("add", 144, 0),
    ("relu", 144, 0),
    ("gap", 36, 1),
    ("dense", 8, 1),
];

/// Same capture for MobileNet (depthwise path), LCG seed 77, two images.
const GOLDEN_SAT_MOBILENET: [(&str, u64, u64); 25] = [
    ("input", 0, 0),
    ("conv2d", 768, 0),
    ("relu", 768, 1),
    ("dwconv2d", 768, 0),
    ("relu", 768, 0),
    ("conv2d", 1536, 0),
    ("relu", 1536, 0),
    ("dwconv2d", 384, 0),
    ("relu", 384, 0),
    ("conv2d", 384, 0),
    ("relu", 384, 0),
    ("dwconv2d", 384, 0),
    ("relu", 384, 0),
    ("conv2d", 576, 0),
    ("relu", 576, 0),
    ("dwconv2d", 144, 0),
    ("relu", 144, 0),
    ("conv2d", 192, 0),
    ("relu", 192, 0),
    ("dwconv2d", 192, 0),
    ("relu", 192, 0),
    ("conv2d", 192, 0),
    ("relu", 192, 0),
    ("gap", 48, 0),
    ("dense", 8, 2),
];

/// Pre-fusion engine logits for the MobileNet saturation fixture (both
/// images quantize identically at this seed).
const GOLDEN_LOGITS_MOBILENET: [f32; 4] = [0.060304, -0.084657535, -0.08755677, -0.03479077];

fn assert_sat_matches(
    arch: Architecture,
    seed: u32,
    golden: &[(&str, u64, u64)],
) -> (Int8Engine, Tensor) {
    let images = lcg_images(seed, 2, &[3, 8, 8]);
    let (_, engine) = build_pair(arch, seed, &images);
    let stats = engine.saturation_stats(&images);
    assert_eq!(stats.len(), golden.len(), "{arch}: node count changed");
    for (idx, (got, want)) in stats.iter().zip(golden).enumerate() {
        assert_eq!(
            (got.kind, got.requants, got.saturated),
            *want,
            "{arch} node {idx}: fused-epilogue saturation differs from the \
             pre-fusion engine capture"
        );
    }
    (engine, images)
}

#[test]
fn fused_epilogue_saturation_matches_prefusion_resnet() {
    let (engine, images) = assert_sat_matches(Architecture::ResNet, 2022, &GOLDEN_SAT_RESNET);
    // Same fixture as `golden_vector_fixed_seed`: logits must stay pinned
    // too, so counts and values are checked on the same run.
    let logits = engine.logits(&images);
    for (i, want) in GOLDEN_LOGITS.iter().enumerate() {
        assert_eq!(logits.row(i).data(), want);
    }
}

#[test]
fn fused_epilogue_saturation_matches_prefusion_mobilenet() {
    let (engine, images) = assert_sat_matches(Architecture::MobileNet, 77, &GOLDEN_SAT_MOBILENET);
    let logits = engine.logits(&images);
    for i in 0..2 {
        assert_eq!(logits.row(i).data(), &GOLDEN_LOGITS_MOBILENET);
    }
}
