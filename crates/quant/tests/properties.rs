//! Property-based tests for the quantization substrate: the invariants in
//! DESIGN.md §5 (round-trip error bounds, saturation monotonicity,
//! fixed-point/float agreement) over randomized inputs.

use diva_quant::fixedpoint::FixedMultiplier;
use diva_quant::qparams::{fake_weight_quant, weight_qparams, WeightGranularity};
use diva_quant::QuantParams;
use diva_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fake_quant_error_bounded_by_half_scale(
        min in -10.0f32..0.0,
        width in 0.1f32..20.0,
        x in -30.0f32..30.0,
        bits in 2u8..=8,
    ) {
        let qp = QuantParams::from_min_max(min, min + width, bits);
        let (lo, hi) = qp.real_range();
        let y = qp.fake(x);
        if x >= lo && x <= hi {
            prop_assert!((y - x).abs() <= qp.scale / 2.0 + 1e-5);
        } else {
            // Saturation: result is the nearest representable endpoint.
            let clamped = x.clamp(lo, hi);
            prop_assert!((y - clamped).abs() <= qp.scale / 2.0 + 1e-5);
        }
    }

    #[test]
    fn fake_quant_is_idempotent_and_monotone(
        a in -5.0f32..5.0,
        b in -5.0f32..5.0,
        bits in 2u8..=8,
    ) {
        let qp = QuantParams::from_min_max(-4.0, 4.0, bits);
        // Idempotent: quantizing a grid point returns it.
        prop_assert!((qp.fake(qp.fake(a)) - qp.fake(a)).abs() < 1e-6);
        // Monotone: order is preserved (weakly).
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(qp.fake(lo) <= qp.fake(hi) + 1e-6);
    }

    #[test]
    fn quantize_tensor_round_trip(
        data in proptest::collection::vec(-3.0f32..3.0, 1..64),
    ) {
        let t = Tensor::from_vec(data.clone(), &[data.len()]);
        let qp = QuantParams::from_min_max(-3.0, 3.0, 8);
        let q = qp.quantize_tensor(&t);
        let back = qp.dequantize_tensor(&q, &[data.len()]);
        prop_assert!(back.allclose(&t, qp.scale / 2.0 + 1e-5));
    }

    #[test]
    fn fixed_multiplier_tracks_float_within_one(
        m in 1e-6f64..3.9,
        x in -2_000_000i32..2_000_000,
    ) {
        let fm = FixedMultiplier::from_real(m).unwrap();
        // Guard the left-shift overflow domain like the engine does.
        prop_assume!((x as f64 * m).abs() < i32::MAX as f64 / 2.0);
        if fm.exponent > 0 {
            prop_assume!((x as i64) << fm.exponent <= i32::MAX as i64);
            prop_assume!((x as i64) << fm.exponent >= i32::MIN as i64);
        }
        let want = (x as f64 * m).round() as i64;
        let got = fm.apply(x) as i64;
        prop_assert!((got - want).abs() <= 1, "m={m} x={x}: {got} vs {want}");
    }

    #[test]
    fn per_channel_never_coarser_than_per_tensor(
        rows in 1usize..6,
        cols in 1usize..12,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let w = Tensor::from_vec(data, &[rows, cols]);
        let pc = weight_qparams(&w, 8, WeightGranularity::PerChannel);
        let pt = weight_qparams(&w, 8, WeightGranularity::PerTensor);
        for (a, b) in pc.iter().zip(&pt) {
            prop_assert!(a.scale <= b.scale + 1e-9, "per-channel coarser than per-tensor");
        }
        // Per-element error is bounded by the (finer) per-channel half-step.
        let fq = fake_weight_quant(&w, 8, WeightGranularity::PerChannel);
        for r in 0..rows {
            let half = pc[r].scale / 2.0 + 1e-6;
            for c in 0..cols {
                let e = (fq.data()[r * cols + c] - w.data()[r * cols + c]).abs();
                prop_assert!(e <= half, "row {r}: err {e} > half-step {half}");
            }
        }
    }
}
