//! Per-op integration tests of the int8 engine against the fake-quant
//! reference on purpose-built graphs, isolating each engine kernel
//! (maxpool, concat, add, GAP, depthwise, dense-after-flatten).

use diva_nn::graph::GraphBuilder;
use diva_nn::{Infer, Network};
use diva_quant::{Int8Engine, QatNetwork, QuantCfg};
use diva_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
    let per: usize = dims.iter().product();
    let samples: Vec<Tensor> = (0..n)
        .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.0..1.0)).collect(), dims))
        .collect();
    Tensor::stack(&samples)
}

/// Builds, calibrates and converts `net`, then checks engine logits track
/// the fake-quant reference within a few output LSBs on fresh inputs.
fn assert_engine_tracks(net: Network, rng: &mut StdRng, tol_lsb: f32) {
    let [c, h, w] = net.graph().input_shape();
    let calib = rand_images(rng, 32, &[c, h, w]);
    let mut qat = QatNetwork::new(net, QuantCfg::default());
    qat.calibrate(&calib);
    let engine = Int8Engine::from_qat(&qat);
    let x = rand_images(rng, 8, &[c, h, w]);
    let lq = qat.logits(&x);
    let le = engine.logits(&x);
    let scale = engine.qparams().last().unwrap().scale;
    let diff = lq.sub(&le).abs().max();
    assert!(
        diff <= tol_lsb * scale,
        "engine diverges from fake-quant by {diff} ({} LSB)",
        diff / scale
    );
}

#[test]
fn maxpool_flatten_dense_path() {
    let mut rng = StdRng::seed_from_u64(100);
    let mut b = GraphBuilder::new([2, 8, 8], &mut rng);
    let x = b.input();
    let c = b.conv(x, 4, 3, 1, 1);
    let r = b.relu(c);
    let p = b.max_pool(r, 2, 2);
    let f = b.flatten(p);
    let d = b.dense(f, 5);
    let net = b.finish(d, None);
    assert_engine_tracks(net, &mut rng, 3.0);
}

#[test]
fn concat_path() {
    let mut rng = StdRng::seed_from_u64(101);
    let mut b = GraphBuilder::new([2, 6, 6], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 3, 3, 1, 1);
    let r1 = b.relu(c1);
    let cat = b.concat(&[x, r1]);
    let c2 = b.conv(cat, 4, 1, 1, 0);
    let g = b.global_avg_pool(c2);
    let d = b.dense(g, 3);
    let net = b.finish(d, None);
    assert_engine_tracks(net, &mut rng, 3.0);
}

#[test]
fn residual_add_path() {
    let mut rng = StdRng::seed_from_u64(102);
    let mut b = GraphBuilder::new([3, 6, 6], &mut rng);
    let x = b.input();
    let c1 = b.conv(x, 3, 3, 1, 1);
    let a = b.add(c1, x);
    let r = b.relu(a);
    let g = b.global_avg_pool(r);
    let d = b.dense(g, 3);
    let net = b.finish(d, None);
    assert_engine_tracks(net, &mut rng, 3.0);
}

#[test]
fn depthwise_path() {
    let mut rng = StdRng::seed_from_u64(103);
    let mut b = GraphBuilder::new([4, 6, 6], &mut rng);
    let x = b.input();
    let dw = b.dwconv(x, 3, 1, 1);
    let r = b.relu(dw);
    let pw = b.conv(r, 6, 1, 1, 0);
    let g = b.global_avg_pool(pw);
    let d = b.dense(g, 3);
    let net = b.finish(d, None);
    assert_engine_tracks(net, &mut rng, 3.0);
}

#[test]
fn engine_maxpool_preserves_input_grid() {
    // MaxPool must not requantize: its output qparams equal its input's.
    let mut rng = StdRng::seed_from_u64(104);
    let mut b = GraphBuilder::new([1, 8, 8], &mut rng);
    let x = b.input();
    let c = b.conv(x, 2, 3, 1, 1);
    let p = b.max_pool(c, 2, 2);
    let g = b.global_avg_pool(p);
    let d = b.dense(g, 2);
    let net = b.finish(d, None);
    let calib = rand_images(&mut rng, 16, &[1, 8, 8]);
    let mut qat = QatNetwork::new(net, QuantCfg::default());
    qat.calibrate(&calib);
    let engine = Int8Engine::from_qat(&qat);
    let qps = engine.qparams();
    // Node order: input(0) conv(1) maxpool(2) gap(3) dense(4).
    assert_eq!(qps[2], qps[1], "maxpool must inherit its input's qparams");
}

#[test]
fn lower_bit_engines_still_track_their_qat_reference() {
    // At int4 the grid is coarse, but engine and fake-quant share it, so
    // they must still agree tightly *with each other*.
    let mut rng = StdRng::seed_from_u64(105);
    let mut b = GraphBuilder::new([2, 6, 6], &mut rng);
    let x = b.input();
    let c = b.conv(x, 4, 3, 1, 1);
    let r = b.relu(c);
    let g = b.global_avg_pool(r);
    let d = b.dense(g, 3);
    let net = b.finish(d, None);
    let calib = rand_images(&mut rng, 32, &[2, 6, 6]);
    let mut qat = QatNetwork::new(net, QuantCfg::with_bits(4));
    qat.calibrate(&calib);
    let engine = Int8Engine::from_qat(&qat);
    let xs = rand_images(&mut rng, 8, &[2, 6, 6]);
    let diff = qat.logits(&xs).sub(&engine.logits(&xs)).abs().max();
    let scale = engine.qparams().last().unwrap().scale;
    assert!(diff <= 2.0 * scale, "int4 engine diverges by {diff}");
}
