//! Fault-plan test: a `diva-fault` weight bitflip must invalidate the
//! packed-panel weight cache.
//!
//! The pack cache (`diva_tensor::packcache`) keys panels by a fingerprint
//! of the weight **bytes**, so there is no invalidation call for the engine
//! to forget: flipping a single bit changes the key and the next forward
//! pass re-packs from the corrupted weights. If that ever regressed — say
//! the key stopped covering the bytes — a bitflipped layer would silently
//! keep using the stale clean panels, and fault-injection campaign results
//! would diverge from the weights actually deployed. This test pins the
//! contract: after a `bitflip` plan corrupts an engine, its warm-cache
//! logits are byte-identical to a cold-cache (fully re-packed) run, and the
//! pass provably missed the cache.

use diva_fault::FaultPlan;
use diva_models::{Architecture, ModelCfg};
use diva_nn::Infer;
use diva_quant::{Int8Engine, QatNetwork, QuantCfg};
use diva_tensor::{packcache, Tensor};
use rand::{rngs::StdRng, SeedableRng};

/// Deterministic uniform values in [-1, 1): 32-bit LCG, independent of
/// `rand` (same generator family as the QAT golden-vector suite).
struct Lcg(u32);

impl Lcg {
    fn next_unit(&mut self) -> f32 {
        self.0 = self.0.wrapping_mul(1664525).wrapping_add(1013904223);
        (self.0 >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
    }
}

fn lcg_reinit(net: &mut diva_nn::Network, seed: u32) {
    let mut lcg = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
    for p in net.params_mut().iter_mut() {
        let dims = p.value.dims().to_vec();
        let scale = if dims.len() >= 2 {
            let fan_in = (p.value.len() / dims[0]).max(1);
            1.0 / (fan_in as f32).sqrt()
        } else {
            0.1
        };
        for v in p.value.data_mut() {
            *v = lcg.next_unit() * scale;
        }
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn bitflipped_engine_repacks_and_matches_cold_cache() {
    // The fault plan is process-global; hold the fault test lock so no
    // parallel test observes (or clobbers) the armed plan.
    let _guard = diva_fault::test_lock();
    diva_fault::set_plan(None);

    // 16×16 images keep the first conv's GEMM (co × oh·ow × ci·kh·kw) well
    // past the blocked-path cutoff, so the engine actually reads packed
    // panels rather than the small-shape fallback.
    let mut lcg = Lcg(0xF11);
    let images = {
        let dims = [8usize, 3, 16, 16];
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| lcg.next_unit() * 0.5 + 0.5).collect(), &dims)
    };
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = Architecture::ResNet.build(&ModelCfg::standard(4), &mut rng);
    lcg_reinit(&mut net, 0x5eed);
    let mut qat = QatNetwork::new(net, QuantCfg::default());
    qat.calibrate(&images);

    // Clean engine: warm the pack cache and sanity-check hot == cold.
    let clean = Int8Engine::from_qat(&qat);
    assert!(clean.integrity_ok());
    let clean_cold = clean.logits(&images);
    let clean_hot = clean.logits(&images);
    assert_eq!(
        bits(&clean_cold),
        bits(&clean_hot),
        "clean engine: hot cache diverged from cold"
    );

    // Corrupt a second engine from the same QAT network. Flips are injected
    // at conversion time, after the integrity checksum is taken.
    diva_fault::set_plan(Some(
        FaultPlan::parse("bitflip:count=64,seed=3").expect("valid plan"),
    ));
    let flipped = Int8Engine::from_qat(&qat);
    diva_fault::set_plan(None);
    assert!(
        !flipped.integrity_ok(),
        "bitflip plan did not corrupt the engine — test is vacuous"
    );

    // The cache still holds the *clean* panels. The flipped weights hash to
    // different keys, so this pass must miss and re-pack...
    let before = packcache::stats();
    let flipped_warm = flipped.logits(&images);
    let after = packcache::stats();
    assert!(
        after.misses > before.misses,
        "flipped engine hit the warm cache everywhere — stale clean panels \
         would have been used for a corrupted layer"
    );

    // ...and produce exactly what a fully cold cache produces from the
    // corrupted weights. (Equality here is the proof that no stale clean
    // panel leaked into the warm run.)
    packcache::clear();
    let flipped_cold = flipped.logits(&images);
    assert_eq!(
        bits(&flipped_warm),
        bits(&flipped_cold),
        "warm-cache logits of the bitflipped engine diverged from a full \
         re-pack — a stale panel survived the weight mutation"
    );
}
