//! Quantization-aware training: fake-quant execution with straight-through
//! gradients, the Rust analogue of `tfmot.quantization.keras.quantize_model`
//! followed by QAT fine-tuning (§5.1 of the paper).
//!
//! A [`QatNetwork`] wraps a fp32 [`Network`] with per-node activation
//! observers. Its forward pass fake-quantizes weights (per-channel symmetric)
//! and activations (per-tensor affine), so its function is exactly the one
//! the deployed int8 engine computes (up to ±1 LSB rounding), while staying
//! differentiable — which is why the paper, like us, attacks through QAT
//! gradients ("Since Tflite supports only inference and does not expose the
//! gradients, we use QAT's gradients in constructing the DIVA attacks").

use diva_nn::exec::{Execution, Hooks};
use diva_nn::graph::{NodeId, Op, ParamId};
use diva_nn::train::{gather, gather_labels, shuffled_batches, EpochStats, TrainCfg};
use diva_nn::{losses, Infer, Network};
use diva_tensor::Tensor;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::observer::MinMaxObserver;
use crate::qparams::{fake_weight_quant, QuantParams, WeightGranularity};

/// Quantization configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantCfg {
    /// Bit width of weights and activations (8 = the paper's int8 setting).
    pub bits: u8,
    /// EMA momentum of activation observers during QAT.
    pub ema_momentum: f32,
    /// Weight-quantization granularity.
    pub weight_granularity: WeightGranularity,
}

impl Default for QuantCfg {
    fn default() -> Self {
        QuantCfg {
            bits: 8,
            ema_momentum: 0.05,
            weight_granularity: WeightGranularity::PerChannel,
        }
    }
}

impl QuantCfg {
    /// An int-`bits` configuration with the default EMA momentum.
    pub fn with_bits(bits: u8) -> Self {
        QuantCfg {
            bits,
            ..QuantCfg::default()
        }
    }

    /// The per-tensor weight-quantization ablation variant.
    pub fn per_tensor(self) -> Self {
        QuantCfg {
            weight_granularity: WeightGranularity::PerTensor,
            ..self
        }
    }
}

/// True for ops whose output is quantization-transparent: they permute or
/// select already-quantized values, so they share their input's grid and
/// need no observer of their own.
fn is_transparent(op: &Op) -> bool {
    matches!(op, Op::MaxPool2d { .. } | Op::Flatten)
}

/// A quantization-aware network: fp32 master weights + activation observers.
///
/// Lifecycle: [`QatNetwork::new`] → [`QatNetwork::calibrate`] →
/// [`QatNetwork::train_qat`] (optional, repeatable) → use as a frozen model
/// (`Infer`, [`QatNetwork::input_grad`]) or convert to the int8 engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QatNetwork {
    net: Network,
    cfg: QuantCfg,
    observers: Vec<Option<MinMaxObserver>>,
}

impl QatNetwork {
    /// Wraps `net` for quantization-aware execution. Observers start empty;
    /// call [`QatNetwork::calibrate`] before inference.
    pub fn new(net: Network, cfg: QuantCfg) -> Self {
        let observers = net
            .graph()
            .nodes()
            .iter()
            .map(|n| {
                if is_transparent(&n.op) {
                    None
                } else {
                    Some(MinMaxObserver::union())
                }
            })
            .collect();
        QatNetwork {
            net,
            cfg,
            observers,
        }
    }

    /// Builds a frozen QAT network from explicit per-node ranges, as the
    /// attacker does after extracting scales/zero-points from a deployed
    /// model (§4.3). `ranges[i]` must be `Some` exactly for non-transparent
    /// nodes.
    pub fn from_frozen_ranges(net: Network, ranges: &[Option<(f32, f32)>], cfg: QuantCfg) -> Self {
        assert_eq!(ranges.len(), net.graph().len(), "one range per node");
        let observers = net
            .graph()
            .nodes()
            .iter()
            .zip(ranges)
            .map(|(n, r)| match (is_transparent(&n.op), r) {
                (true, None) => None,
                (false, Some((min, max))) => {
                    let mut o = MinMaxObserver::union();
                    o.update(&Tensor::from_vec(vec![*min, *max], &[2]));
                    Some(o)
                }
                (t, r) => panic!(
                    "range presence mismatch at node (transparent={t}, given={})",
                    r.is_some()
                ),
            })
            .collect();
        QatNetwork {
            net,
            cfg,
            observers,
        }
    }

    /// The wrapped network (graph + fp32 master weights).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the wrapped network (used by robust training).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Consumes the wrapper, returning the fp32 network.
    pub fn into_network(self) -> Network {
        self.net
    }

    /// Quantization configuration.
    pub fn cfg(&self) -> QuantCfg {
        self.cfg
    }

    /// Runs calibration: observes activation ranges over `images` without
    /// yet fake-quantizing downstream, then switches observers to EMA mode.
    pub fn calibrate(&mut self, images: &Tensor) {
        let n = images.dims()[0];
        let bs = 64;
        let mut i = 0;
        while i < n {
            let hi = (i + bs).min(n);
            let idx: Vec<usize> = (i..hi).collect();
            let x = gather(images, &idx);
            let mut hooks = ObserveHooks {
                observers: &mut self.observers,
            };
            let _ = self.net.forward_with(&x, &mut hooks);
            i = hi;
        }
        for o in self.observers.iter_mut().flatten() {
            o.set_momentum(self.cfg.ema_momentum);
        }
    }

    /// Whether calibration has run.
    pub fn is_calibrated(&self) -> bool {
        self.observers.iter().flatten().all(|o| o.is_initialized())
    }

    /// Resolved activation quantization parameters per node. Transparent
    /// nodes inherit their input's parameters.
    ///
    /// # Panics
    ///
    /// Panics if the network is not calibrated.
    pub fn act_qparams(&self) -> Vec<QuantParams> {
        assert!(self.is_calibrated(), "act_qparams before calibration");
        let graph = self.net.graph();
        let mut out: Vec<QuantParams> = Vec::with_capacity(graph.len());
        for (i, node) in graph.nodes().iter().enumerate() {
            let qp = match &self.observers[i] {
                Some(o) => {
                    let (min, max) = o.range();
                    QuantParams::from_min_max(min, max, self.cfg.bits)
                }
                None => out[node.inputs[0].0],
            };
            out.push(qp);
        }
        out
    }

    /// Quantization-aware training: fake-quant forward (with observer EMA
    /// updates), straight-through backward, SGD on the fp32 master weights.
    ///
    /// # Panics
    ///
    /// Panics if the network is not calibrated.
    pub fn train_qat(
        &mut self,
        images: &Tensor,
        labels: &[usize],
        cfg: &TrainCfg,
        rng: &mut StdRng,
    ) -> Vec<EpochStats> {
        assert!(self.is_calibrated(), "train_qat before calibration");
        let n = images.dims()[0];
        assert_eq!(labels.len(), n, "labels/images mismatch");
        let mut opt = diva_nn::optim::Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
        let mut stats = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut loss_sum = 0.0;
            let mut correct = 0usize;
            for batch in shuffled_batches(n, cfg.batch_size, rng) {
                let x = gather(images, &batch);
                let y = gather_labels(labels, &batch);
                let cfg = self.cfg;
                let exec = {
                    let mut hooks = QatTrainHooks {
                        observers: &mut self.observers,
                        cfg,
                    };
                    self.net.forward_with(&x, &mut hooks)
                };
                let logits = exec.output(self.net.graph()).clone();
                let (loss, dlogits) = losses::cross_entropy(&logits, &y);
                loss_sum += loss * batch.len() as f32;
                correct += (0..batch.len())
                    .filter(|&i| logits.row(i).argmax() == Some(y[i]))
                    .count();
                let frozen = FrozenHooks {
                    observers: &self.observers,
                    cfg,
                };
                self.net.backward_with(&exec, &dlogits, &frozen);
                opt.step(self.net.params_mut());
            }
            stats.push(EpochStats {
                loss: loss_sum / n as f32,
                accuracy: correct as f32 / n as f32,
            });
        }
        stats
    }

    /// Frozen fake-quant forward pass (no observer updates): the function the
    /// attack differentiates.
    ///
    /// # Panics
    ///
    /// Panics if the network is not calibrated.
    pub fn forward(&self, x: &Tensor) -> Execution {
        assert!(self.is_calibrated(), "forward before calibration");
        let mut hooks = FrozenHooks {
            observers: &self.observers,
            cfg: self.cfg,
        };
        self.net.forward_with(x, &mut hooks)
    }

    /// Gradient of a scalar objective w.r.t. the input, through the frozen
    /// fake-quant function with straight-through estimators.
    pub fn input_grad(&self, exec: &Execution, d_output: &Tensor) -> Tensor {
        let hooks = FrozenHooks {
            observers: &self.observers,
            cfg: self.cfg,
        };
        let mut scratch = self.net.params().clone();
        diva_nn::exec::backward(self.net.graph(), &mut scratch, exec, d_output, &hooks)
    }

    /// Penultimate-layer features under the frozen fake-quant function.
    pub fn features(&self, x: &Tensor) -> Option<Tensor> {
        let node = self.net.graph().feature()?;
        let exec = self.forward(x);
        Some(exec.activation(node).clone())
    }
}

impl Infer for QatNetwork {
    fn logits(&self, x: &Tensor) -> Tensor {
        let exec = self.forward(x);
        exec.output(self.net.graph()).clone()
    }

    fn num_classes(&self) -> usize {
        self.net.graph().num_classes()
    }
}

/// Shared helper: fake-quantize a weight parameter (rank ≥ 2); biases
/// (rank 1) pass through, as in TFLite (biases are int32-quantized at
/// conversion with no precision loss that QAT would need to model).
fn fake_weight(cfg: QuantCfg, _id: ParamId, w: Tensor) -> Tensor {
    if w.shape().rank() >= 2 {
        fake_weight_quant(&w, cfg.bits, cfg.weight_granularity)
    } else {
        w
    }
}

/// Calibration hooks: update observers, pass activations through unchanged.
struct ObserveHooks<'a> {
    observers: &'a mut Vec<Option<MinMaxObserver>>,
}

impl Hooks for ObserveHooks<'_> {
    fn output(&mut self, node: NodeId, _op: &Op, y: Tensor) -> Tensor {
        if let Some(o) = &mut self.observers[node.0] {
            o.update(&y);
        }
        y
    }
}

/// QAT training hooks: EMA-update observers, then fake-quantize.
struct QatTrainHooks<'a> {
    observers: &'a mut Vec<Option<MinMaxObserver>>,
    cfg: QuantCfg,
}

impl Hooks for QatTrainHooks<'_> {
    const ACTIVE: bool = true;

    fn weight(&self, id: ParamId, w: Tensor) -> Tensor {
        fake_weight(self.cfg, id, w)
    }

    fn output(&mut self, node: NodeId, _op: &Op, y: Tensor) -> Tensor {
        match &mut self.observers[node.0] {
            Some(o) => {
                o.update(&y);
                let (min, max) = o.range();
                QuantParams::from_min_max(min, max, self.cfg.bits).fake_tensor(&y)
            }
            None => y,
        }
    }

    fn output_grad(&self, node: NodeId, raw: &Tensor, dy: Tensor) -> Tensor {
        ste_grad(&self.observers[node.0], self.cfg.bits, raw, dy)
    }
}

/// Frozen inference/attack hooks: fake-quantize with stored ranges.
struct FrozenHooks<'a> {
    observers: &'a [Option<MinMaxObserver>],
    cfg: QuantCfg,
}

impl Hooks for FrozenHooks<'_> {
    const ACTIVE: bool = true;

    fn weight(&self, id: ParamId, w: Tensor) -> Tensor {
        fake_weight(self.cfg, id, w)
    }

    fn output(&mut self, node: NodeId, _op: &Op, y: Tensor) -> Tensor {
        match &self.observers[node.0] {
            Some(o) => {
                let (min, max) = o.range();
                QuantParams::from_min_max(min, max, self.cfg.bits).fake_tensor(&y)
            }
            None => y,
        }
    }

    fn output_grad(&self, node: NodeId, raw: &Tensor, dy: Tensor) -> Tensor {
        ste_grad(&self.observers[node.0], self.cfg.bits, raw, dy)
    }
}

/// Straight-through estimator: gradients flow where the raw activation fell
/// inside the representable range, and are cut where it saturated.
fn ste_grad(obs: &Option<MinMaxObserver>, bits: u8, raw: &Tensor, dy: Tensor) -> Tensor {
    match obs {
        Some(o) => {
            let (min, max) = o.range();
            let qp = QuantParams::from_min_max(min, max, bits);
            let (lo, hi) = qp.real_range();
            dy.zip(raw, |g, x| if (lo..=hi).contains(&x) { g } else { 0.0 })
        }
        None => dy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_models::{mini_resnet, ModelCfg};
    use diva_nn::graph::GraphBuilder;
    use rand::{Rng, SeedableRng};

    fn tiny_net(rng: &mut StdRng) -> Network {
        let mut b = GraphBuilder::new([1, 4, 4], rng);
        let x = b.input();
        let c = b.conv(x, 3, 3, 1, 1);
        let r = b.relu(c);
        let g = b.global_avg_pool(r);
        let d = b.dense(g, 3);
        b.finish(d, Some(g))
    }

    fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
        let per: usize = dims.iter().product();
        let samples: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.0..1.0)).collect(), dims))
            .collect();
        Tensor::stack(&samples)
    }

    #[test]
    fn calibration_initialises_all_observers() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = tiny_net(&mut rng);
        let mut q = QatNetwork::new(net, QuantCfg::default());
        assert!(!q.is_calibrated());
        let images = rand_images(&mut rng, 8, &[1, 4, 4]);
        q.calibrate(&images);
        assert!(q.is_calibrated());
        let qps = q.act_qparams();
        assert_eq!(qps.len(), q.network().graph().len());
    }

    #[test]
    fn fake_quant_output_close_to_fp32_at_8_bits() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = tiny_net(&mut rng);
        let images = rand_images(&mut rng, 16, &[1, 4, 4]);
        let mut q = QatNetwork::new(net.clone(), QuantCfg::default());
        q.calibrate(&images);
        let x = gather(&images, &[0, 1]);
        let fq = q.logits(&x);
        let fp = net.logits(&x);
        // int8 fake-quant should track fp32 closely but not exactly.
        assert!(fq.allclose(&fp, 0.2), "{:?} vs {:?}", fq.data(), fp.data());
        assert!(!fq.allclose(&fp, 1e-7), "quantization had no effect at all");
    }

    #[test]
    fn lower_bits_diverge_more() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = tiny_net(&mut rng);
        let images = rand_images(&mut rng, 16, &[1, 4, 4]);
        let x = gather(&images, &[0, 1, 2, 3]);
        let fp = net.logits(&x);
        let err = |bits: u8| {
            let mut q = QatNetwork::new(net.clone(), QuantCfg::with_bits(bits));
            q.calibrate(&images);
            q.logits(&x).sub(&fp).abs().mean()
        };
        assert!(err(4) > err(8));
    }

    #[test]
    fn qat_training_improves_quantized_accuracy() {
        let mut rng = StdRng::seed_from_u64(3);
        // Separable two-class data.
        let n = 64;
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { 0.25 } else { 0.75 };
            images.push(Tensor::from_vec(
                (0..16)
                    .map(|_| (base + rng.gen_range(-0.15..0.15f32)).clamp(0.0, 1.0))
                    .collect(),
                &[1, 4, 4],
            ));
            labels.push(class);
        }
        let images = Tensor::stack(&images);
        let net = tiny_net(&mut rng);
        let mut q = QatNetwork::new(net, QuantCfg::default());
        q.calibrate(&images);
        let before = diva_nn::train::evaluate(&q, &images, &labels);
        let cfg = TrainCfg {
            epochs: 15,
            batch_size: 16,
            lr: 0.3,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        q.train_qat(&images, &labels, &cfg, &mut rng);
        let after = diva_nn::train::evaluate(&q, &images, &labels);
        assert!(
            after > before.max(0.9) - 1e-6,
            "QAT did not learn: before {before}, after {after}"
        );
    }

    #[test]
    fn input_grad_is_nonzero_and_shaped() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = mini_resnet(&ModelCfg::tiny(4), &mut rng);
        let images = rand_images(&mut rng, 8, &[3, 8, 8]);
        let mut q = QatNetwork::new(net, QuantCfg::default());
        q.calibrate(&images);
        let x = gather(&images, &[0]);
        let exec = q.forward(&x);
        let logits = exec.output(q.network().graph()).clone();
        let (_, dlogits) = losses::cross_entropy(&logits, &[0]);
        let gx = q.input_grad(&exec, &dlogits);
        assert_eq!(gx.dims(), x.dims());
        assert!(gx.norm_inf() > 0.0, "STE killed the whole gradient");
    }

    #[test]
    fn frozen_ranges_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = tiny_net(&mut rng);
        let images = rand_images(&mut rng, 8, &[1, 4, 4]);
        let mut q = QatNetwork::new(net.clone(), QuantCfg::default());
        q.calibrate(&images);
        // Re-create from extracted ranges; logits must match exactly.
        let ranges: Vec<Option<(f32, f32)>> = q
            .observers
            .iter()
            .map(|o| o.as_ref().map(|o| o.range()))
            .collect();
        let q2 = QatNetwork::from_frozen_ranges(net, &ranges, QuantCfg::default());
        let x = gather(&images, &[0, 3]);
        assert!(q.logits(&x).allclose(&q2.logits(&x), 1e-6));
    }

    #[test]
    fn transparent_nodes_have_no_observer() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut b = GraphBuilder::new([1, 8, 8], &mut rng);
        let x = b.input();
        let c = b.conv(x, 2, 3, 1, 1);
        let p = b.max_pool(c, 2, 2);
        let f = b.flatten(p);
        let d = b.dense(f, 2);
        let net = b.finish(d, None);
        let q = QatNetwork::new(net, QuantCfg::default());
        // input, conv, dense have observers; maxpool, flatten do not.
        let have: Vec<bool> = q.observers.iter().map(|o| o.is_some()).collect();
        assert_eq!(have, vec![true, true, false, false, true]);
    }
}
