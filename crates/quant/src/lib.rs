//! `diva-quant` — the quantization substrate of the DIVA reproduction.
//!
//! This crate rebuilds, in pure Rust, the model-adaptation pipeline the paper
//! runs on TensorFlow (`tfmot.quantize_model` → QAT → TFLite conversion →
//! int8 edge deployment):
//!
//! 1. [`qparams`] — affine/symmetric quantization parameters, fake-quant,
//!    per-channel weight quantization;
//! 2. [`observer`] — activation-range observers (union for calibration,
//!    EMA for QAT);
//! 3. [`qat`] — the [`qat::QatNetwork`]: fake-quant execution with
//!    straight-through gradients; this is the *differentiable* adapted model
//!    that DIVA attacks;
//! 4. [`engine`] — the [`engine::Int8Engine`]: integer-only inference with
//!    fixed-point requantization; this is the *deployed* adapted model that
//!    runs "on the edge";
//! 5. [`extract`] — recovery of a differentiable QAT model from a deployed
//!    engine (the attacker's §4.3 step);
//! 6. [`fixedpoint`] — gemmlowp/TFLite-style Q31 requantization arithmetic.
//!
//! The reproduction's central object of study — the *divergence* between a
//! model and its quantized adaptation — lives in the gap between a
//! [`diva_nn::Network`] and the [`qat::QatNetwork`]/[`engine::Int8Engine`]
//! built from it.

pub mod engine;
pub mod extract;
pub mod fixedpoint;
pub mod observer;
pub mod qat;
pub mod qparams;

pub use engine::{Int8Engine, QTensor, RequantMode, SatStats};
pub use extract::extract_qat;
pub use observer::MinMaxObserver;
pub use qat::{QatNetwork, QuantCfg};
pub use qparams::QuantParams;

/// End-to-end adaptation pipeline: calibrate on `calib` images, run QAT
/// fine-tuning, and return the adapted (QAT) model.
///
/// This mirrors the paper's §5.1 model-generation recipe: "first applying
/// TensorFlow Model Optimization tfmot's `quantize_model` on the original
/// models using int8 quantization. We then apply QAT to these models on our
/// training dataset."
pub fn quantize_model(
    net: diva_nn::Network,
    calib: &diva_tensor::Tensor,
    train_images: &diva_tensor::Tensor,
    train_labels: &[usize],
    qat_cfg: QuantCfg,
    train_cfg: &diva_nn::train::TrainCfg,
    rng: &mut rand::rngs::StdRng,
) -> QatNetwork {
    let mut q = QatNetwork::new(net, qat_cfg);
    q.calibrate(calib);
    q.train_qat(train_images, train_labels, train_cfg, rng);
    q
}
