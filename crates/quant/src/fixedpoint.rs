//! Integer fixed-point requantization arithmetic, following the
//! gemmlowp/TFLite reference kernels: a real multiplier is encoded as a Q31
//! mantissa plus a power-of-two exponent, and applied with
//! saturating-rounding-doubling-high-multiply + rounding right shift.
//!
//! This is what makes the engine *integer-only* at inference time — the
//! property that distinguishes a deployed edge model from its fake-quant
//! training-time simulation.

use serde::{Deserialize, Serialize};

/// A positive real multiplier `M` encoded as `mantissa / 2^31 * 2^exponent`
/// with `mantissa` in `[2^30, 2^31)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedMultiplier {
    /// Q31 mantissa in `[2^30, 2^31)` (or 0 for a zero multiplier).
    pub mantissa: i32,
    /// Power-of-two exponent.
    pub exponent: i32,
}

/// A requantization multiplier that cannot be encoded: negative, NaN, or
/// infinite. Surfaces when a scale read from a tampered model file is
/// garbage — a recoverable load error, not an abort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BadMultiplier(pub f64);

impl std::fmt::Display for BadMultiplier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad requantization multiplier {}: must be finite and non-negative",
            self.0
        )
    }
}

impl std::error::Error for BadMultiplier {}

impl FixedMultiplier {
    /// Encodes a real multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`BadMultiplier`] if `m` is negative, NaN or infinite.
    pub fn from_real(m: f64) -> Result<Self, BadMultiplier> {
        if !(m.is_finite() && m >= 0.0) {
            return Err(BadMultiplier(m));
        }
        if m == 0.0 {
            return Ok(FixedMultiplier {
                mantissa: 0,
                exponent: 0,
            });
        }
        // m = m0 * 2^exp with m0 in [0.5, 1)
        let exp = m.log2().floor() as i32 + 1;
        let m0 = m / (2.0f64).powi(exp);
        let mut mantissa = (m0 * (1i64 << 31) as f64).round() as i64;
        let mut exponent = exp;
        if mantissa == 1i64 << 31 {
            mantissa >>= 1;
            exponent += 1;
        }
        debug_assert!((1i64 << 30..1i64 << 31).contains(&mantissa));
        Ok(FixedMultiplier {
            mantissa: mantissa as i32,
            exponent,
        })
    }

    /// Whether the encoded fields are in the canonical range `from_real`
    /// produces: zero, or a Q31 mantissa in `[2^30, 2^31)`. Engine
    /// validation uses this to reject tampered model files whose multiplier
    /// fields were edited directly.
    pub fn is_canonical(self) -> bool {
        (self.mantissa == 0 && self.exponent == 0)
            || (1i32 << 30..=i32::MAX).contains(&self.mantissa)
    }

    /// The real value this multiplier encodes.
    pub fn to_real(self) -> f64 {
        self.mantissa as f64 / (1i64 << 31) as f64 * (2.0f64).powi(self.exponent)
    }

    /// Applies the multiplier to an i32 accumulator with round-to-nearest,
    /// the TFLite `MultiplyByQuantizedMultiplier` operation.
    pub fn apply(self, x: i32) -> i32 {
        if self.mantissa == 0 {
            return 0;
        }
        let left_shift = self.exponent.max(0);
        let right_shift = (-self.exponent).max(0);
        let shifted = (x as i64) << left_shift;
        debug_assert!(
            shifted >= i32::MIN as i64 && shifted <= i32::MAX as i64,
            "requantization overflow: {x} << {left_shift}"
        );
        let v = saturating_rounding_doubling_high_mul(shifted as i32, self.mantissa);
        rounding_divide_by_pot(v, right_shift)
    }
}

/// `round(a * b / 2^31)` with saturation, gemmlowp's SRDHM.
pub fn saturating_rounding_doubling_high_mul(a: i32, b: i32) -> i32 {
    if a == i32::MIN && b == i32::MIN {
        return i32::MAX; // the single overflow case
    }
    let ab = a as i64 * b as i64;
    let nudge: i64 = if ab >= 0 { 1 << 30 } else { 1 - (1 << 30) };
    // NB: truncating division, not an arithmetic shift — gemmlowp rounds
    // negative halves toward zero here.
    ((ab + nudge) / (1i64 << 31)) as i32
}

/// `round(x / 2^exponent)` with round-half-away-from-zero ties like TFLite.
pub fn rounding_divide_by_pot(x: i32, exponent: i32) -> i32 {
    debug_assert!((0..=31).contains(&exponent));
    if exponent == 0 {
        return x;
    }
    let mask = (1i64 << exponent) - 1;
    let remainder = (x as i64) & mask;
    let threshold = (mask >> 1) + i64::from(x < 0);
    ((x as i64 >> exponent) + i64::from(remainder > threshold)) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_common_multipliers_accurately() {
        for &m in &[1.0f64, 0.5, 0.001234, 0.999999, 2.5, 1e-6, 3.99] {
            let fm = FixedMultiplier::from_real(m).unwrap();
            let rel = (fm.to_real() - m).abs() / m;
            assert!(rel < 1e-8, "m={m} encoded as {} (rel {rel})", fm.to_real());
        }
    }

    #[test]
    fn zero_multiplier() {
        let fm = FixedMultiplier::from_real(0.0).unwrap();
        assert_eq!(fm.apply(12345), 0);
        assert_eq!(fm.to_real(), 0.0);
    }

    #[test]
    fn apply_matches_float_reference() {
        for &m in &[0.0073, 0.5, 1.0, 1.7, 0.25] {
            let fm = FixedMultiplier::from_real(m).unwrap();
            for &x in &[0i32, 1, -1, 100, -100, 32767, -32768, 1_000_000, -999_999] {
                let want = (x as f64 * m).round() as i32;
                let got = fm.apply(x);
                assert!(
                    (got - want).abs() <= 1,
                    "m={m} x={x}: fixed {got} vs float {want}"
                );
            }
        }
    }

    #[test]
    fn srdhm_basics() {
        // a*b/2^31 for b = 2^30 is a/2.
        assert_eq!(saturating_rounding_doubling_high_mul(4, 1 << 30), 2);
        assert_eq!(saturating_rounding_doubling_high_mul(-4, 1 << 30), -2);
        // Rounds to nearest: 3/2 -> 2 (half away from zero).
        assert_eq!(saturating_rounding_doubling_high_mul(3, 1 << 30), 2);
        assert_eq!(
            saturating_rounding_doubling_high_mul(i32::MIN, i32::MIN),
            i32::MAX
        );
    }

    #[test]
    fn rounding_divide_rounds_to_nearest() {
        assert_eq!(rounding_divide_by_pot(5, 1), 3); // 2.5 -> 3 (away from 0)
        assert_eq!(rounding_divide_by_pot(-5, 1), -3);
        assert_eq!(rounding_divide_by_pot(4, 2), 1);
        assert_eq!(rounding_divide_by_pot(6, 2), 2); // 1.5 -> 2
        assert_eq!(rounding_divide_by_pot(7, 0), 7);
    }

    #[test]
    fn bad_multipliers_are_errors_not_panics() {
        for m in [-0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = FixedMultiplier::from_real(m).unwrap_err();
            assert!(err.to_string().contains("multiplier"), "msg: {err}");
        }
    }

    #[test]
    fn canonical_range_check() {
        assert!(FixedMultiplier::from_real(0.0).unwrap().is_canonical());
        assert!(FixedMultiplier::from_real(0.37).unwrap().is_canonical());
        let bad = FixedMultiplier {
            mantissa: 123, // below 2^30: not a canonical Q31 mantissa
            exponent: 0,
        };
        assert!(!bad.is_canonical());
    }
}
