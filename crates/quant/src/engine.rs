//! The int8 inference engine: the "deployed edge model".
//!
//! [`Int8Engine::from_qat`] converts a calibrated [`QatNetwork`] into a pure
//! integer program, the analogue of the paper's TFLite conversion step
//! ("Finally, we convert the QAT model to a real adapted int8 model with
//! Tflite in order to evaluate it on a resource-constrained device"). All
//! heavy ops run on `i8` data with `i32` accumulators and fixed-point
//! requantization ([`crate::fixedpoint`]); no f32 appears between the input
//! quantization and the final logit dequantization.
//!
//! The engine exposes no gradients — exactly the constraint that forces the
//! attacker to differentiate through the QAT model instead (§6).

use diva_nn::graph::{NodeShape, Op};
use diva_nn::{Infer, Network};
use diva_tensor::conv::Conv2dCfg;
use diva_tensor::gemm::{self, EpilogueI32, Layout};
use diva_tensor::packcache;
use diva_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::fixedpoint::FixedMultiplier;
use crate::qat::QatNetwork;
use crate::qparams::{weight_qparams, QuantParams};

/// How accumulators are scaled back to the output grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequantMode {
    /// Integer-only Q31 fixed-point (TFLite reference behaviour; default).
    FixedPoint,
    /// Double-precision float scaling (ablation baseline).
    Float,
}

/// A quantized activation buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QTensor {
    /// Row-major quantized values.
    pub data: Vec<i8>,
    /// Dimension sizes (batched, NCHW or `[n, f]`).
    pub dims: Vec<usize>,
}

/// A requantizing multiplier kept in both encodings so either
/// [`RequantMode`] can execute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Mult {
    fixed: FixedMultiplier,
    real: f64,
}

impl Mult {
    fn new(real: f64) -> Self {
        Mult {
            // Scales computed from a calibrated QAT network are finite and
            // non-negative by construction; only file loads can carry
            // garbage, and those go through `Int8Engine::validate`.
            fixed: FixedMultiplier::from_real(real)
                .expect("engine scales are finite and non-negative"),
            real,
        }
    }

    #[inline]
    fn apply(&self, x: i32, mode: RequantMode) -> i32 {
        match mode {
            RequantMode::FixedPoint => self.fixed.apply(x),
            RequantMode::Float => (x as f64 * self.real).round() as i32,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum EngineOp {
    Input,
    Conv2d {
        w: Vec<i8>,
        w_dims: [usize; 4],
        bias: Vec<i32>,
        mult: Vec<Mult>,
        #[serde(with = "cfg_serde")]
        cfg: Conv2dCfg,
    },
    DwConv2d {
        w: Vec<i8>,
        w_dims: [usize; 3],
        bias: Vec<i32>,
        mult: Vec<Mult>,
        #[serde(with = "cfg_serde")]
        cfg: Conv2dCfg,
    },
    Dense {
        w: Vec<i8>,
        w_dims: [usize; 2],
        bias: Vec<i32>,
        mult: Vec<Mult>,
    },
    Relu {
        mult: Mult,
    },
    Add {
        /// Input multipliers after the precision left-shift (TFLite style).
        ma: Mult,
        mb: Mult,
        /// Output multiplier folding the left-shift back out.
        mout: Mult,
    },
    Concat {
        mults: Vec<Mult>,
    },
    MaxPool2d {
        k: usize,
        stride: usize,
    },
    Gap {
        mult: Mult,
    },
    Flatten,
}

impl EngineOp {
    /// Short kind label used in trace counter names.
    fn kind(&self) -> &'static str {
        match self {
            EngineOp::Input => "input",
            EngineOp::Conv2d { .. } => "conv2d",
            EngineOp::DwConv2d { .. } => "dwconv2d",
            EngineOp::Dense { .. } => "dense",
            EngineOp::Relu { .. } => "relu",
            EngineOp::Add { .. } => "add",
            EngineOp::Concat { .. } => "concat",
            EngineOp::MaxPool2d { .. } => "maxpool2d",
            EngineOp::Gap { .. } => "gap",
            EngineOp::Flatten => "flatten",
        }
    }
}

/// Static span names per op kind (level-2 per-op timing).
fn op_span_name(op: &EngineOp) -> &'static str {
    match op {
        EngineOp::Input => "quant.op.input",
        EngineOp::Conv2d { .. } => "quant.op.conv2d",
        EngineOp::DwConv2d { .. } => "quant.op.dwconv2d",
        EngineOp::Dense { .. } => "quant.op.dense",
        EngineOp::Relu { .. } => "quant.op.relu",
        EngineOp::Add { .. } => "quant.op.add",
        EngineOp::Concat { .. } => "quant.op.concat",
        EngineOp::MaxPool2d { .. } => "quant.op.maxpool2d",
        EngineOp::Gap { .. } => "quant.op.gap",
        EngineOp::Flatten => "quant.op.flatten",
    }
}

mod cfg_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    #[derive(Serialize, Deserialize)]
    struct Repr {
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    }

    pub fn serialize<S: Serializer>(cfg: &Conv2dCfg, s: S) -> Result<S::Ok, S::Error> {
        Repr {
            kh: cfg.kh,
            kw: cfg.kw,
            stride: cfg.stride,
            pad: cfg.pad,
        }
        .serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Conv2dCfg, D::Error> {
        let r = Repr::deserialize(d)?;
        Ok(Conv2dCfg {
            kh: r.kh,
            kw: r.kw,
            stride: r.stride,
            pad: r.pad,
        })
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EngineNode {
    op: EngineOp,
    inputs: Vec<usize>,
    /// Output quantization parameters.
    qp: QuantParams,
    /// Per-sample output shape.
    shape: NodeShape,
    /// Per-sample input quantization parameters (first input), kept for
    /// weight extraction.
    in_qp: QuantParams,
}

/// Precision left-shift used by the quantized add (TFLite uses 20).
const ADD_LEFT_SHIFT: u32 = 20;

/// The integer-only deployed model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Int8Engine {
    nodes: Vec<EngineNode>,
    output: usize,
    feature: Option<usize>,
    input_shape: [usize; 3],
    num_classes: usize,
    mode: RequantMode,
    /// FNV-1a 64 over all node weight bytes in node order, taken at
    /// conversion time. [`Int8Engine::integrity_ok`] recomputes it to catch
    /// in-memory weight corruption (e.g. injected bit flips).
    checksum: u64,
}

impl Int8Engine {
    /// Converts a calibrated QAT network into an integer engine.
    ///
    /// # Panics
    ///
    /// Panics if the QAT network is uncalibrated or uses more than 8 bits.
    pub fn from_qat(qat: &QatNetwork) -> Self {
        Self::from_qat_with_mode(qat, RequantMode::FixedPoint)
    }

    /// Conversion with an explicit requantization mode (for the ablation).
    pub fn from_qat_with_mode(qat: &QatNetwork, mode: RequantMode) -> Self {
        assert!(qat.cfg().bits <= 8, "engine stores i8: bits must be <= 8");
        let net: &Network = qat.network();
        let graph = net.graph();
        let act_qps = qat.act_qparams();
        let bits = qat.cfg().bits;
        let gran = qat.cfg().weight_granularity;
        let mut nodes = Vec::with_capacity(graph.len());
        for (idx, node) in graph.nodes().iter().enumerate() {
            let out_qp = act_qps[idx];
            let in_qp = node.inputs.first().map(|i| act_qps[i.0]).unwrap_or(out_qp);
            let op = match &node.op {
                Op::Input => EngineOp::Input,
                Op::Conv2d { w, b, cfg } => {
                    let wt = net.params().effective(*w);
                    let bias = net.params().effective(*b);
                    let wqps = weight_qparams(&wt, bits, gran);
                    let co = wt.dims()[0];
                    let per = wt.len() / co;
                    let mut wq = Vec::with_capacity(wt.len());
                    for (c, qp) in wqps.iter().enumerate() {
                        wq.extend(
                            wt.data()[c * per..(c + 1) * per]
                                .iter()
                                .map(|&v| qp.quantize(v) as i8),
                        );
                    }
                    let bias_q: Vec<i32> = (0..co)
                        .map(|c| {
                            (bias.data()[c] as f64 / (in_qp.scale as f64 * wqps[c].scale as f64))
                                .round() as i32
                        })
                        .collect();
                    let mult: Vec<Mult> = (0..co)
                        .map(|c| {
                            Mult::new(
                                in_qp.scale as f64 * wqps[c].scale as f64 / out_qp.scale as f64,
                            )
                        })
                        .collect();
                    EngineOp::Conv2d {
                        w: wq,
                        w_dims: [wt.dims()[0], wt.dims()[1], wt.dims()[2], wt.dims()[3]],
                        bias: bias_q,
                        mult,
                        cfg: *cfg,
                    }
                }
                Op::DwConv2d { w, b, cfg } => {
                    let wt = net.params().effective(*w);
                    let bias = net.params().effective(*b);
                    let wqps = weight_qparams(&wt, bits, gran);
                    let c = wt.dims()[0];
                    let per = wt.len() / c;
                    let mut wq = Vec::with_capacity(wt.len());
                    for (ci, qp) in wqps.iter().enumerate() {
                        wq.extend(
                            wt.data()[ci * per..(ci + 1) * per]
                                .iter()
                                .map(|&v| qp.quantize(v) as i8),
                        );
                    }
                    let bias_q: Vec<i32> = (0..c)
                        .map(|ci| {
                            (bias.data()[ci] as f64 / (in_qp.scale as f64 * wqps[ci].scale as f64))
                                .round() as i32
                        })
                        .collect();
                    let mult: Vec<Mult> = (0..c)
                        .map(|ci| {
                            Mult::new(
                                in_qp.scale as f64 * wqps[ci].scale as f64 / out_qp.scale as f64,
                            )
                        })
                        .collect();
                    EngineOp::DwConv2d {
                        w: wq,
                        w_dims: [wt.dims()[0], wt.dims()[1], wt.dims()[2]],
                        bias: bias_q,
                        mult,
                        cfg: *cfg,
                    }
                }
                Op::Dense { w, b } => {
                    let wt = net.params().effective(*w);
                    let bias = net.params().effective(*b);
                    let wqps = weight_qparams(&wt, bits, gran);
                    let rows = wt.dims()[0];
                    let cols = wt.dims()[1];
                    let mut wq = Vec::with_capacity(wt.len());
                    for (r, qp) in wqps.iter().enumerate() {
                        wq.extend(
                            wt.data()[r * cols..(r + 1) * cols]
                                .iter()
                                .map(|&v| qp.quantize(v) as i8),
                        );
                    }
                    let bias_q: Vec<i32> = (0..rows)
                        .map(|r| {
                            (bias.data()[r] as f64 / (in_qp.scale as f64 * wqps[r].scale as f64))
                                .round() as i32
                        })
                        .collect();
                    let mult: Vec<Mult> = (0..rows)
                        .map(|r| {
                            Mult::new(
                                in_qp.scale as f64 * wqps[r].scale as f64 / out_qp.scale as f64,
                            )
                        })
                        .collect();
                    EngineOp::Dense {
                        w: wq,
                        w_dims: [rows, cols],
                        bias: bias_q,
                        mult,
                    }
                }
                Op::Relu => EngineOp::Relu {
                    mult: Mult::new(in_qp.scale as f64 / out_qp.scale as f64),
                },
                Op::Add => {
                    // TFLite's high-precision add: shift both inputs left by
                    // ADD_LEFT_SHIFT bits, scale each relative to twice the
                    // larger input scale, add, then requantize once. Keeping
                    // ~2^20 fractional precision in the intermediate keeps
                    // residual towers from accumulating per-add rounding.
                    let qa = act_qps[node.inputs[0].0];
                    let qb = act_qps[node.inputs[1].0];
                    let twice_max = 2.0 * (qa.scale as f64).max(qb.scale as f64);
                    EngineOp::Add {
                        ma: Mult::new(qa.scale as f64 / twice_max),
                        mb: Mult::new(qb.scale as f64 / twice_max),
                        mout: Mult::new(
                            twice_max / ((1i64 << ADD_LEFT_SHIFT) as f64 * out_qp.scale as f64),
                        ),
                    }
                }
                Op::Concat => EngineOp::Concat {
                    mults: node
                        .inputs
                        .iter()
                        .map(|i| Mult::new(act_qps[i.0].scale as f64 / out_qp.scale as f64))
                        .collect(),
                },
                Op::MaxPool2d { k, stride } => EngineOp::MaxPool2d {
                    k: *k,
                    stride: *stride,
                },
                Op::GlobalAvgPool => {
                    let in_shape = graph.node(node.inputs[0]).shape;
                    let NodeShape::Chw([_, h, w]) = in_shape else {
                        panic!("GAP input must be spatial")
                    };
                    let area = (h * w) as f64;
                    EngineOp::Gap {
                        mult: Mult::new(in_qp.scale as f64 / (area * out_qp.scale as f64)),
                    }
                }
                Op::Flatten => EngineOp::Flatten,
            };
            nodes.push(EngineNode {
                op,
                inputs: node.inputs.iter().map(|i| i.0).collect(),
                qp: out_qp,
                shape: node.shape,
                in_qp,
            });
        }
        let mut engine = Int8Engine {
            nodes,
            output: graph.output().0,
            feature: graph.feature().map(|f| f.0),
            input_shape: graph.input_shape(),
            num_classes: graph.num_classes(),
            mode,
            checksum: 0,
        };
        engine.checksum = engine.weight_checksum();
        // Armed bit-flip faults land here, after the checksum is taken, so
        // the corruption is detectable by `integrity_ok`.
        engine.inject_weight_faults();
        engine
    }

    /// FNV-1a 64 over all node weight bytes in node order.
    fn weight_checksum(&self) -> u64 {
        let mut bytes = Vec::new();
        for node in &self.nodes {
            match &node.op {
                EngineOp::Conv2d { w, .. }
                | EngineOp::DwConv2d { w, .. }
                | EngineOp::Dense { w, .. } => bytes.extend(w.iter().map(|&v| v as u8)),
                _ => {}
            }
        }
        diva_fault::fnv1a64(&bytes)
    }

    /// Flips seeded bits in the stored weights when a `bitflip` fault is
    /// armed (see `diva-fault`). No-op otherwise.
    fn inject_weight_faults(&mut self) {
        if !diva_fault::armed() {
            return;
        }
        let total_bytes: u64 = self
            .nodes
            .iter()
            .map(|n| match &n.op {
                EngineOp::Conv2d { w, .. }
                | EngineOp::DwConv2d { w, .. }
                | EngineOp::Dense { w, .. } => w.len() as u64,
                _ => 0,
            })
            .sum();
        let Some(positions) = diva_fault::bit_flips(total_bytes * 8) else {
            return;
        };
        for pos in positions {
            let mut off = (pos / 8) as usize;
            let bit = (pos % 8) as u8;
            for node in &mut self.nodes {
                let w = match &mut node.op {
                    EngineOp::Conv2d { w, .. }
                    | EngineOp::DwConv2d { w, .. }
                    | EngineOp::Dense { w, .. } => w,
                    _ => continue,
                };
                if off < w.len() {
                    w[off] = (w[off] as u8 ^ (1 << bit)) as i8;
                    break;
                }
                off -= w.len();
            }
        }
    }

    /// Whether the stored weights still match the conversion-time checksum.
    pub fn integrity_ok(&self) -> bool {
        self.weight_checksum() == self.checksum
    }

    /// Structural validation of a (possibly untrusted) engine: every
    /// requantization multiplier must be finite, non-negative, and in the
    /// canonical Q31 encoding, and the weight checksum must match. Run on
    /// every [`Int8Engine::load`] so a tampered model file is a recoverable
    /// error, not a wrong answer or a panic.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first failed check.
    pub fn validate(&self) -> Result<(), String> {
        for (idx, node) in self.nodes.iter().enumerate() {
            let mut mults: Vec<&Mult> = Vec::new();
            match &node.op {
                EngineOp::Conv2d { mult, .. }
                | EngineOp::DwConv2d { mult, .. }
                | EngineOp::Dense { mult, .. } => mults.extend(mult.iter()),
                EngineOp::Relu { mult } | EngineOp::Gap { mult } => mults.push(mult),
                EngineOp::Add { ma, mb, mout } => mults.extend([ma, mb, mout]),
                EngineOp::Concat { mults: ms } => mults.extend(ms.iter()),
                EngineOp::Input | EngineOp::MaxPool2d { .. } | EngineOp::Flatten => {}
            }
            for m in mults {
                if !(m.real.is_finite() && m.real >= 0.0) {
                    return Err(format!(
                        "node {idx}: requantization multiplier {} is not finite/non-negative",
                        m.real
                    ));
                }
                if !m.fixed.is_canonical() {
                    return Err(format!(
                        "node {idx}: fixed-point mantissa {} out of canonical range",
                        m.fixed.mantissa
                    ));
                }
            }
        }
        if !self.integrity_ok() {
            return Err(format!(
                "weight checksum mismatch: stored {:016x}, recomputed {:016x}",
                self.checksum,
                self.weight_checksum()
            ));
        }
        Ok(())
    }

    /// Per-sample input shape.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// Requantization mode in use.
    pub fn mode(&self) -> RequantMode {
        self.mode
    }

    /// Returns a copy running in the given requantization mode.
    pub fn with_mode(&self, mode: RequantMode) -> Self {
        let mut e = self.clone();
        e.mode = mode;
        e
    }

    /// Runs integer inference, returning all quantized node activations.
    pub fn run(&self, x: &Tensor) -> Vec<QTensor> {
        self.run_collect(x, None)
    }

    /// Runs the whole batch serially and returns the per-node saturation
    /// statistics alongside nothing else — the observable contract of the
    /// fused requantization epilogue. Counting is forced on regardless of
    /// trace level, so goldens pinned on these numbers are reproducible in
    /// any environment.
    pub fn saturation_stats(&self, x: &Tensor) -> Vec<SatStats> {
        let mut stats = Vec::with_capacity(self.nodes.len());
        self.run_collect(x, Some(&mut stats));
        stats
    }

    /// Shared body of [`Int8Engine::run`] / [`Int8Engine::saturation_stats`]:
    /// when `stats` is given, saturation counting is forced on and one
    /// [`SatStats`] entry is pushed per node in execution order.
    fn run_collect(&self, x: &Tensor, mut stats: Option<&mut Vec<SatStats>>) -> Vec<QTensor> {
        assert_eq!(
            x.dims()[1..],
            self.input_shape,
            "input {:?} does not match engine input {:?}",
            x.dims(),
            self.input_shape
        );
        let n = x.dims()[0];
        let mode = self.mode;
        let _run_span = diva_trace::span(1, "quant.engine.run");
        let trace_sat = diva_trace::enabled(1);
        let track_sat = trace_sat || stats.is_some();
        if trace_sat {
            diva_trace::counter!("quant.engine.samples", n);
        }
        let mut acts: Vec<QTensor> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let out_dims = node.shape.batched(n);
            let qp = node.qp;
            let kind = node.op.kind();
            let _op_span = diva_trace::span(2, op_span_name(&node.op));
            let mut sat = Saturation::new(track_sat);
            let out = match &node.op {
                EngineOp::Input => QTensor {
                    data: qp.quantize_tensor(x),
                    dims: out_dims,
                },
                EngineOp::Conv2d {
                    w,
                    w_dims,
                    bias,
                    mult,
                    cfg,
                } => {
                    let xin = &acts[node.inputs[0]];
                    conv_int(
                        xin, node.in_qp, w, *w_dims, bias, mult, *cfg, qp, out_dims, mode, &mut sat,
                    )
                }
                EngineOp::DwConv2d {
                    w,
                    w_dims,
                    bias,
                    mult,
                    cfg,
                } => {
                    let xin = &acts[node.inputs[0]];
                    dwconv_int(
                        xin, node.in_qp, w, *w_dims, bias, mult, *cfg, qp, out_dims, mode, &mut sat,
                    )
                }
                EngineOp::Dense {
                    w,
                    w_dims,
                    bias,
                    mult,
                } => {
                    let xin = &acts[node.inputs[0]];
                    dense_int(
                        xin, node.in_qp, w, *w_dims, bias, mult, qp, out_dims, mode, &mut sat,
                    )
                }
                EngineOp::Relu { mult } => {
                    let xin = &acts[node.inputs[0]];
                    let zp_in = node.in_qp.zero_point;
                    let data = xin
                        .data
                        .iter()
                        .map(|&v| {
                            let pos = (v as i32 - zp_in).max(0);
                            sat.clamp(qp, qp.zero_point + mult.apply(pos, mode))
                        })
                        .collect();
                    QTensor {
                        data,
                        dims: out_dims,
                    }
                }
                EngineOp::Add { ma, mb, mout } => {
                    let a = &acts[node.inputs[0]];
                    let b = &acts[node.inputs[1]];
                    let zp_a = self.nodes[node.inputs[0]].qp.zero_point;
                    let zp_b = self.nodes[node.inputs[1]].qp.zero_point;
                    let data = a
                        .data
                        .iter()
                        .zip(&b.data)
                        .map(|(&av, &bv)| {
                            let sa = ma.apply((av as i32 - zp_a) << ADD_LEFT_SHIFT, mode);
                            let sb = mb.apply((bv as i32 - zp_b) << ADD_LEFT_SHIFT, mode);
                            let s = mout.apply(sa + sb, mode);
                            sat.clamp(qp, qp.zero_point + s)
                        })
                        .collect();
                    QTensor {
                        data,
                        dims: out_dims,
                    }
                }
                EngineOp::Concat { mults } => {
                    let mut data = vec![0i8; out_dims.iter().product()];
                    let (c_total, h, w) = (out_dims[1], out_dims[2], out_dims[3]);
                    let plane = h * w;
                    let mut c_off = 0;
                    for (ii, &inp) in node.inputs.iter().enumerate() {
                        let xin = &acts[inp];
                        let zp_in = self.nodes[inp].qp.zero_point;
                        let ci = xin.dims[1];
                        let m = &mults[ii];
                        for ni in 0..n {
                            for cc in 0..ci {
                                for p in 0..plane {
                                    let src = (ni * ci + cc) * plane + p;
                                    let dst = (ni * c_total + c_off + cc) * plane + p;
                                    let v = xin.data[src] as i32 - zp_in;
                                    data[dst] = sat.clamp(qp, qp.zero_point + m.apply(v, mode));
                                }
                            }
                        }
                        c_off += ci;
                    }
                    QTensor {
                        data,
                        dims: out_dims,
                    }
                }
                EngineOp::MaxPool2d { k, stride } => {
                    let xin = &acts[node.inputs[0]];
                    let (c, h, w) = (xin.dims[1], xin.dims[2], xin.dims[3]);
                    let (oh, ow) = (out_dims[2], out_dims[3]);
                    let mut data = vec![0i8; out_dims.iter().product()];
                    for ni in 0..n {
                        for ci in 0..c {
                            let base = (ni * c + ci) * h * w;
                            let obase = (ni * c + ci) * oh * ow;
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let mut best = i8::MIN;
                                    for ky in 0..*k {
                                        for kx in 0..*k {
                                            let v = xin.data[base
                                                + (oy * stride + ky) * w
                                                + (ox * stride + kx)];
                                            best = best.max(v);
                                        }
                                    }
                                    data[obase + oy * ow + ox] = best;
                                }
                            }
                        }
                    }
                    QTensor {
                        data,
                        dims: out_dims,
                    }
                }
                EngineOp::Gap { mult } => {
                    let xin = &acts[node.inputs[0]];
                    let (c, h, w) = (xin.dims[1], xin.dims[2], xin.dims[3]);
                    let zp_in = node.in_qp.zero_point;
                    let mut data = vec![0i8; n * c];
                    for ni in 0..n {
                        for ci in 0..c {
                            let base = (ni * c + ci) * h * w;
                            let acc: i32 = xin.data[base..base + h * w]
                                .iter()
                                .map(|&v| v as i32 - zp_in)
                                .sum();
                            data[ni * c + ci] =
                                sat.clamp(qp, qp.zero_point + mult.apply(acc, mode));
                        }
                    }
                    QTensor {
                        data,
                        dims: out_dims,
                    }
                }
                EngineOp::Flatten => {
                    let xin = &acts[node.inputs[0]];
                    QTensor {
                        data: xin.data.clone(),
                        dims: out_dims,
                    }
                }
            };
            if let Some(collected) = stats.as_deref_mut() {
                collected.push(SatStats {
                    kind,
                    requants: sat.requants,
                    saturated: sat.saturated,
                });
            }
            sat.flush(kind, trace_sat);
            debug_assert_eq!(out.data.len(), out.dims.iter().product::<usize>());
            acts.push(out);
        }
        acts
    }

    /// Dequantized activation of node `idx` from a [`Int8Engine::run`] result.
    fn dequant_node(&self, acts: &[QTensor], idx: usize) -> Tensor {
        let q = &acts[idx];
        self.nodes[idx].qp.dequantize_tensor(&q.data, &q.dims)
    }

    /// Dequantized penultimate features, if the graph designated them.
    pub fn features(&self, x: &Tensor) -> Option<Tensor> {
        let f = self.feature?;
        let acts = self.run(x);
        Some(self.dequant_node(&acts, f))
    }

    /// Summary of quantization parameters per node (what an attacker reads
    /// out of a deployed model file: §4.3 "extracting the zero points,
    /// scales and weights for each layer").
    pub fn qparams(&self) -> Vec<QuantParams> {
        self.nodes.iter().map(|nd| nd.qp).collect()
    }

    /// Approximate serialized model size in bytes (weights + biases only),
    /// used to report the compression the paper attributes to adaptation.
    pub fn weight_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|nd| match &nd.op {
                EngineOp::Conv2d { w, bias, .. }
                | EngineOp::DwConv2d { w, bias, .. }
                | EngineOp::Dense { w, bias, .. } => w.len() + 4 * bias.len(),
                _ => 0,
            })
            .sum()
    }
}

/// A node's quantized weights: `(wq, w_dims, bias_q, real multipliers)`.
pub(crate) type NodeWeights<'a> = (&'a [i8], Vec<usize>, &'a [i32], Vec<f64>);

impl Int8Engine {
    /// Number of engine nodes (crate-internal, used by extraction).
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Index of the output node (crate-internal, used by extraction).
    pub(crate) fn output_index(&self) -> usize {
        self.output
    }

    /// `(output, input)` quantization parameters of node `idx`.
    pub(crate) fn node_qparams(&self, idx: usize) -> (QuantParams, QuantParams) {
        (self.nodes[idx].qp, self.nodes[idx].in_qp)
    }

    /// Quantized weights of node `idx`, if it has any.
    pub(crate) fn node_weights(&self, idx: usize) -> Option<NodeWeights<'_>> {
        match &self.nodes[idx].op {
            EngineOp::Conv2d {
                w,
                w_dims,
                bias,
                mult,
                ..
            } => Some((
                w,
                w_dims.to_vec(),
                bias,
                mult.iter().map(|m| m.real).collect(),
            )),
            EngineOp::DwConv2d {
                w,
                w_dims,
                bias,
                mult,
                ..
            } => Some((
                w,
                w_dims.to_vec(),
                bias,
                mult.iter().map(|m| m.real).collect(),
            )),
            EngineOp::Dense {
                w,
                w_dims,
                bias,
                mult,
            } => Some((
                w,
                w_dims.to_vec(),
                bias,
                mult.iter().map(|m| m.real).collect(),
            )),
            _ => None,
        }
    }
}

impl Int8Engine {
    /// Writes the deployed model to a checksummed model file — what the
    /// operator pushes to devices and the attacker later pulls off one
    /// (§4.3). Uses the shared versioned envelope (`diva_nn::persist`), so
    /// the write is atomic and the load side can reject truncation or bit
    /// rot.
    ///
    /// # Errors
    ///
    /// Returns [`diva_nn::persist::PersistError::Io`] on filesystem errors.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), diva_nn::persist::PersistError> {
        let json = serde_json::to_string(self).map_err(diva_nn::persist::PersistError::from)?;
        diva_nn::persist::save_versioned(path, "int8-engine", &json)
    }

    /// Reads a deployed model file back and validates it
    /// ([`Int8Engine::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`diva_nn::persist::PersistError::Format`] for malformed,
    /// truncated, corrupted, or structurally invalid files and
    /// [`diva_nn::persist::PersistError::Io`] on filesystem errors.
    pub fn load(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Int8Engine, diva_nn::persist::PersistError> {
        let json = diva_nn::persist::load_versioned(path, "int8-engine")?;
        let engine: Int8Engine =
            serde_json::from_str(&json).map_err(diva_nn::persist::PersistError::from)?;
        engine
            .validate()
            .map_err(diva_nn::persist::PersistError::Format)?;
        Ok(engine)
    }
}

/// Batch-chunk size for parallel engine inference. Fixed (independent of
/// the worker count): integer inference is strictly per-sample, so a
/// chunked run is bitwise identical to a whole-batch run — chunking is
/// purely a scheduling decision (DESIGN.md §7).
const ENGINE_CHUNK: usize = 16;

impl Infer for Int8Engine {
    fn logits(&self, x: &Tensor) -> Tensor {
        let n = x.dims()[0];
        // Supervision checkpoint: a stopped item skips the inference
        // entirely. Zero logits are fine — the item is already marked
        // TimedOut/Cancelled, so its outputs are never scored.
        if diva_par::supervise::interrupted().is_some() {
            return Tensor::zeros(&[n, self.num_classes]);
        }
        // Small batches, serial configs, and calls already inside a diva-par
        // worker (e.g. a per-image attack trajectory watching this engine)
        // skip the fan-out; the result is the same either way.
        if n <= ENGINE_CHUNK || diva_par::jobs() <= 1 || diva_par::in_worker() {
            let acts = self.run(x);
            return self.dequant_node(&acts, self.output);
        }
        let chunks = diva_par::fixed_chunks(n, ENGINE_CHUNK);
        // Worker threads don't inherit the supervision scope; forward it as
        // a sendable snapshot so long batch inferences still stop per chunk.
        let probe = diva_par::supervise::snapshot();
        let parts = diva_par::par_map_indexed(chunks.len(), |c| {
            let (lo, hi) = chunks[c];
            if probe.as_ref().is_some_and(|p| p.stop_due().is_some()) {
                return Tensor::zeros(&[hi - lo, self.num_classes]);
            }
            let samples: Vec<Tensor> = (lo..hi).map(|i| x.index_batch(i)).collect();
            let xc = Tensor::stack(&samples);
            let acts = self.run(&xc);
            self.dequant_node(&acts, self.output)
        });
        let classes = self.num_classes;
        let mut data = Vec::with_capacity(n * classes);
        for part in &parts {
            data.extend_from_slice(part.data());
        }
        Tensor::from_vec(data, &[n, classes])
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[inline]
fn clamp_q(qp: QuantParams, v: i32) -> i8 {
    v.clamp(qp.qmin, qp.qmax) as i8
}

/// Tracks requantization volume and accumulator saturation for one engine
/// op, flushing to trace counters once at op end — the hot loops touch only
/// two local integers, never the global recorder.
struct Saturation {
    track: bool,
    requants: u64,
    saturated: u64,
}

impl Saturation {
    fn new(track: bool) -> Self {
        Saturation {
            track,
            requants: 0,
            saturated: 0,
        }
    }

    /// Clamps a requantized accumulator to the output grid, counting the
    /// requant and whether it saturated (value outside `[qmin, qmax]`).
    #[inline]
    fn clamp(&mut self, qp: QuantParams, v: i32) -> i8 {
        if self.track {
            self.requants += 1;
            self.saturated += u64::from(v < qp.qmin || v > qp.qmax);
        }
        clamp_q(qp, v)
    }

    /// Emits the totals as trace counters. `trace` distinguishes "counting
    /// because the recorder is on" from "counting because a stats collector
    /// asked": only the former may touch the recorder.
    fn flush(self, kind: &'static str, trace: bool) {
        if trace && self.track && self.requants > 0 {
            diva_trace::counter_add(&format!("quant.requant.{kind}"), self.requants);
            diva_trace::counter_add(&format!("quant.saturate.{kind}"), self.saturated);
        }
    }
}

/// Per-node saturation totals from [`Int8Engine::saturation_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatStats {
    /// Engine op kind label (`"conv2d"`, `"relu"`, ...).
    pub kind: &'static str,
    /// Requantizations performed (one per produced output element for
    /// requantizing ops; 0 for input/flatten/maxpool).
    pub requants: u64,
    /// How many of those requantizations clamped (left `[qmin, qmax]`).
    pub saturated: u64,
}

/// The fused conv/dwconv requantization epilogue: maps finished `i32` GEMM
/// accumulators of output-channel row `i` straight to clamped `i8` output
/// pixels — bias add, per-channel multiplier, zero-point shift, clamp, and
/// saturation counting happen while the accumulator row is still hot, in
/// place of the old separate per-element pass.
struct RequantRows<'a> {
    bias: &'a [i32],
    mult: &'a [Mult],
    mode: RequantMode,
    qp: QuantParams,
    sat: &'a mut Saturation,
    /// Offset of the current image (or image×channel) slab in `out`.
    base: usize,
    /// Output row length (`oh*ow`).
    n: usize,
}

impl EpilogueI32 for RequantRows<'_> {
    #[inline]
    fn row(&mut self, i: usize, j0: usize, acc: &[i32], out: &mut [i8]) {
        let qp = self.qp;
        let m = self.mult[i];
        let b = self.bias[i];
        let dst = &mut out[self.base + i * self.n + j0..][..acc.len()];
        for (o, &a) in dst.iter_mut().zip(acc) {
            // Bias joins here instead of seeding the accumulator: integer
            // addition commutes, so the result is identical to the
            // pre-fusion engine bit for bit.
            *o = self
                .sat
                .clamp(qp, qp.zero_point + m.apply(a + b, self.mode));
        }
    }
}

/// Dense sibling of [`RequantRows`]: GEMM rows are output features and GEMM
/// columns are batch samples, so the writeback transposes into the `[n,
/// rows]` activation layout.
struct RequantDense<'a> {
    bias: &'a [i32],
    mult: &'a [Mult],
    mode: RequantMode,
    qp: QuantParams,
    sat: &'a mut Saturation,
    /// Output features per sample (the stride between samples in `out`).
    rows: usize,
}

impl EpilogueI32 for RequantDense<'_> {
    #[inline]
    fn row(&mut self, i: usize, j0: usize, acc: &[i32], out: &mut [i8]) {
        let qp = self.qp;
        let m = self.mult[i];
        let b = self.bias[i];
        for (jj, &a) in acc.iter().enumerate() {
            out[(j0 + jj) * self.rows + i] = self
                .sat
                .clamp(qp, qp.zero_point + m.apply(a + b, self.mode));
        }
    }
}

thread_local! {
    /// Reusable im2col destination, one per thread: `Vec::resize` never
    /// shrinks capacity, so the buffer grows to the largest conv seen on
    /// its thread and steady-state inference allocates nothing. Taken (not
    /// borrowed) for the duration of a conv so reentrancy cannot panic.
    static COLS_SCRATCH: std::cell::Cell<Option<Vec<i8>>> =
        const { std::cell::Cell::new(None) };
}

fn with_cols_scratch<R>(f: impl FnOnce(&mut Vec<i8>) -> R) -> R {
    let mut cols = COLS_SCRATCH.with(|slot| slot.take()).unwrap_or_default();
    let r = f(&mut cols);
    COLS_SCRATCH.with(|slot| slot.set(Some(cols)));
    r
}

/// Quantized im2col into `[c*kh*kw, oh*ow]` (GEMM `B`, row-major): row `r`
/// holds one kernel tap across all output pixels. Padding taps keep
/// `pad_val` (the input zero point), so after the GEMM core subtracts the
/// zero point they contribute exactly 0 — the same as the old skip-the-tap
/// loops.
#[allow(clippy::too_many_arguments)]
fn im2col_q(
    x: &[i8],
    c: usize,
    h: usize,
    w: usize,
    cfg: Conv2dCfg,
    oh: usize,
    ow: usize,
    pad_val: i8,
    out: &mut Vec<i8>,
) {
    let ohow = oh * ow;
    out.clear();
    out.resize(c * cfg.kh * cfg.kw * ohow, pad_val);
    let mut r = 0;
    for ci in 0..c {
        let base = ci * h * w;
        for ky in 0..cfg.kh {
            for kx in 0..cfg.kw {
                let dst = &mut out[r * ohow..(r + 1) * ohow];
                for oy in 0..oh {
                    let iy = oy * cfg.stride + ky;
                    if iy < cfg.pad || iy - cfg.pad >= h {
                        continue;
                    }
                    let xrow = base + (iy - cfg.pad) * w;
                    let drow = &mut dst[oy * ow..(oy + 1) * ow];
                    for (ox, d) in drow.iter_mut().enumerate() {
                        let ix = ox * cfg.stride + kx;
                        if ix < cfg.pad || ix - cfg.pad >= w {
                            continue;
                        }
                        *d = x[xrow + ix - cfg.pad];
                    }
                }
                r += 1;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_int(
    xin: &QTensor,
    in_qp: QuantParams,
    w: &[i8],
    w_dims: [usize; 4],
    bias: &[i32],
    mult: &[Mult],
    cfg: Conv2dCfg,
    qp: QuantParams,
    out_dims: Vec<usize>,
    mode: RequantMode,
    sat: &mut Saturation,
) -> QTensor {
    let (n, ci, h, wid) = (xin.dims[0], xin.dims[1], xin.dims[2], xin.dims[3]);
    let [co, wci, kh, kw] = w_dims;
    debug_assert_eq!(ci, wci);
    let (oh, ow) = (out_dims[2], out_dims[3]);
    let (ohow, k) = (oh * ow, ci * kh * kw);
    let zp_in = in_qp.zero_point;
    let mut data = vec![0i8; out_dims.iter().product()];
    // Weights are fixed across the pass (and, for attacks, across thousands
    // of passes) — fetch their i16-widened panels from the pack cache; a
    // diva-fault bitflip or a reload changes the bytes and misses cleanly.
    let pre = gemm::blocked_path(co, ohow, k).then(|| packcache::pack_i16_a(w, co, k));
    // One i8 GEMM per image: W [co, k] · cols [k, oh*ow], requantized by
    // the fused epilogue straight into the image's NCHW slab.
    with_cols_scratch(|cols| {
        for ni in 0..n {
            let img = &xin.data[ni * ci * h * wid..(ni + 1) * ci * h * wid];
            im2col_q(img, ci, h, wid, cfg, oh, ow, zp_in as i8, cols);
            let mut epi = RequantRows {
                bias,
                mult,
                mode,
                qp,
                sat: &mut *sat,
                base: ni * co * ohow,
                n: ohow,
            };
            gemm::gemm_i8_pre(
                co,
                ohow,
                k,
                w,
                pre.as_ref().map(|p| p.as_a()),
                cols,
                Layout::RowMajor,
                zp_in,
                &mut data,
                &mut epi,
            );
        }
    });
    QTensor {
        data,
        dims: out_dims,
    }
}

#[allow(clippy::too_many_arguments)]
fn dwconv_int(
    xin: &QTensor,
    in_qp: QuantParams,
    w: &[i8],
    w_dims: [usize; 3],
    bias: &[i32],
    mult: &[Mult],
    cfg: Conv2dCfg,
    qp: QuantParams,
    out_dims: Vec<usize>,
    mode: RequantMode,
    sat: &mut Saturation,
) -> QTensor {
    let (n, c, h, wid) = (xin.dims[0], xin.dims[1], xin.dims[2], xin.dims[3]);
    let [wc, kh, kw] = w_dims;
    debug_assert_eq!(c, wc);
    let (oh, ow) = (out_dims[2], out_dims[3]);
    let (ohow, khkw) = (oh * ow, kh * kw);
    let zp_in = in_qp.zero_point;
    let mut data = vec![0i8; out_dims.iter().product()];
    // Depthwise weights pack as one 1×(kh*kw) GEMM `A` per channel, all in
    // a single cache entry fetched once per call.
    let pre = gemm::blocked_path(1, ohow, khkw).then(|| packcache::pack_i16_dw(w, c, khkw));
    // Depthwise = one 1×(kh*kw) GEMM per (image, channel) plane, sharing
    // the conv epilogue with single-element bias/mult slices.
    with_cols_scratch(|cols| {
        for ni in 0..n {
            for ci in 0..c {
                let plane = &xin.data[(ni * c + ci) * h * wid..(ni * c + ci + 1) * h * wid];
                im2col_q(plane, 1, h, wid, cfg, oh, ow, zp_in as i8, cols);
                let mut epi = RequantRows {
                    bias: &bias[ci..ci + 1],
                    mult: &mult[ci..ci + 1],
                    mode,
                    qp,
                    sat: &mut *sat,
                    base: (ni * c + ci) * ohow,
                    n: ohow,
                };
                gemm::gemm_i8_pre(
                    1,
                    ohow,
                    khkw,
                    &w[ci * khkw..(ci + 1) * khkw],
                    pre.as_ref().map(|p| p.dw_channel(ci)),
                    cols,
                    Layout::RowMajor,
                    zp_in,
                    &mut data,
                    &mut epi,
                );
            }
        }
    });
    QTensor {
        data,
        dims: out_dims,
    }
}

#[allow(clippy::too_many_arguments)]
fn dense_int(
    xin: &QTensor,
    in_qp: QuantParams,
    w: &[i8],
    w_dims: [usize; 2],
    bias: &[i32],
    mult: &[Mult],
    qp: QuantParams,
    out_dims: Vec<usize>,
    mode: RequantMode,
    sat: &mut Saturation,
) -> QTensor {
    let n = xin.dims[0];
    let [rows, cols] = w_dims;
    let zp_in = in_qp.zero_point;
    let mut data = vec![0i8; n * rows];
    // W [rows, cols] · X^T [cols, n]: activations stored [n, cols] are the
    // transposed GEMM B; the epilogue transposes back on writeback. The
    // weight panels (GEMM A) come from the pack cache on the blocked path.
    let pre = gemm::blocked_path(rows, n, cols).then(|| packcache::pack_i16_a(w, rows, cols));
    let mut epi = RequantDense {
        bias,
        mult,
        mode,
        qp,
        sat,
        rows,
    };
    gemm::gemm_i8_pre(
        rows,
        n,
        cols,
        w,
        pre.as_ref().map(|p| p.as_a()),
        &xin.data,
        Layout::Transposed,
        zp_in,
        &mut data,
        &mut epi,
    );
    QTensor {
        data,
        dims: out_dims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qat::QuantCfg;
    use diva_models::{Architecture, ModelCfg};
    use diva_nn::train::gather;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
        let per: usize = dims.iter().product();
        let samples: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.0..1.0)).collect(), dims))
            .collect();
        Tensor::stack(&samples)
    }

    fn qat_model(arch: Architecture, rng: &mut StdRng, images: &Tensor) -> QatNetwork {
        let net = arch.build(&ModelCfg::tiny(4), rng);
        let mut q = QatNetwork::new(net, QuantCfg::default());
        q.calibrate(images);
        q
    }

    #[test]
    fn engine_tracks_fakequant_logits_all_families() {
        let mut rng = StdRng::seed_from_u64(10);
        let images = rand_images(&mut rng, 24, &[3, 8, 8]);
        for arch in Architecture::ALL {
            let q = qat_model(arch, &mut rng, &images);
            let engine = Int8Engine::from_qat(&q);
            let x = gather(&images, &(0..8).collect::<Vec<_>>());
            let lq = q.logits(&x);
            let le = engine.logits(&x);
            let max_scale = engine.qparams().last().unwrap().scale;
            let diff = lq.sub(&le).abs().max();
            assert!(
                diff <= 4.0 * max_scale,
                "{arch}: fake-quant vs engine logits differ by {diff} (scale {max_scale})"
            );
            // Predictions should almost always agree.
            let agree = q
                .predict(&x)
                .iter()
                .zip(engine.predict(&x))
                .filter(|(a, b)| **a == *b)
                .count();
            assert!(agree >= 7, "{arch}: only {agree}/8 predictions agree");
        }
    }

    #[test]
    fn fixed_point_tracks_float_requant() {
        // Per-op agreement within 1 LSB is covered in `fixedpoint`; at the
        // network level early ±1 LSB differences propagate, so assert the
        // end-to-end effect stays small: identical predictions and logits
        // within a few output steps.
        let mut rng = StdRng::seed_from_u64(11);
        let images = rand_images(&mut rng, 16, &[3, 8, 8]);
        let q = qat_model(Architecture::ResNet, &mut rng, &images);
        let fx = Int8Engine::from_qat_with_mode(&q, RequantMode::FixedPoint);
        let fl = fx.with_mode(RequantMode::Float);
        let x = gather(&images, &(0..8).collect::<Vec<_>>());
        let scale = fx.qparams().last().unwrap().scale;
        let diff = fx.logits(&x).sub(&fl.logits(&x)).abs().max();
        assert!(diff <= 4.0 * scale, "fixed vs float logits diff {diff}");
        assert_eq!(fx.predict(&x), fl.predict(&x));
    }

    #[test]
    fn engine_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(12);
        let images = rand_images(&mut rng, 8, &[3, 8, 8]);
        let q = qat_model(Architecture::MobileNet, &mut rng, &images);
        let engine = Int8Engine::from_qat(&q);
        let x = gather(&images, &[0, 1]);
        assert_eq!(engine.logits(&x), engine.logits(&x));
    }

    #[test]
    fn weight_bytes_reflect_compression() {
        let mut rng = StdRng::seed_from_u64(13);
        let images = rand_images(&mut rng, 8, &[3, 8, 8]);
        let q = qat_model(Architecture::ResNet, &mut rng, &images);
        let engine = Int8Engine::from_qat(&q);
        let fp32_bytes = 4 * q.network().params().num_scalars();
        let int8_bytes = engine.weight_bytes();
        // ~4x compression on weights (biases stay 32-bit).
        assert!(int8_bytes * 3 < fp32_bytes, "{int8_bytes} vs {fp32_bytes}");
    }

    #[test]
    fn engine_model_file_round_trips() {
        let mut rng = StdRng::seed_from_u64(16);
        let images = rand_images(&mut rng, 8, &[3, 8, 8]);
        let q = qat_model(Architecture::ResNet, &mut rng, &images);
        let engine = Int8Engine::from_qat(&q);
        let dir = std::env::temp_dir().join("diva_engine_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edge_model.json");
        engine.save(&path).unwrap();
        let back = Int8Engine::load(&path).unwrap();
        let x = gather(&images, &[0, 1]);
        assert_eq!(engine.logits(&x), back.logits(&x));
        std::fs::remove_file(&path).ok();
    }

    /// Sets the first `mantissa` field found anywhere in the JSON tree.
    fn set_first_mantissa(v: &mut serde_json::Value, to: i64) -> bool {
        match v {
            serde_json::Value::Object(m) => {
                if let Some(x) = m.get_mut("mantissa") {
                    *x = serde_json::json!(to);
                    return true;
                }
                m.values_mut().any(|c| set_first_mantissa(c, to))
            }
            serde_json::Value::Array(a) => a.iter_mut().any(|c| set_first_mantissa(c, to)),
            _ => false,
        }
    }

    /// Sets the first `real` multiplier field found anywhere in the tree.
    fn set_first_real(v: &mut serde_json::Value, to: f64) -> bool {
        match v {
            serde_json::Value::Object(m) => {
                if let Some(x) = m.get_mut("real") {
                    *x = serde_json::json!(to);
                    return true;
                }
                m.values_mut().any(|c| set_first_real(c, to))
            }
            serde_json::Value::Array(a) => a.iter_mut().any(|c| set_first_real(c, to)),
            _ => false,
        }
    }

    #[test]
    fn tampered_weight_fails_validation_and_load() {
        let mut rng = StdRng::seed_from_u64(17);
        let images = rand_images(&mut rng, 8, &[3, 8, 8]);
        let q = qat_model(Architecture::ResNet, &mut rng, &images);
        let engine = Int8Engine::from_qat(&q);
        assert!(engine.integrity_ok());
        assert!(engine.validate().is_ok());

        // Flip one weight value in the serialized form, keeping everything
        // else (including the stored checksum) intact.
        let mut v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&engine).unwrap()).unwrap();
        let mut hit = false;
        for node in v["nodes"].as_array_mut().unwrap() {
            let Some(op) = node["op"].as_object_mut() else {
                continue; // unit variants (Input, Flatten) serialize as strings
            };
            for body in op.values_mut() {
                if let Some(w) = body.get_mut("w").and_then(|w| w.as_array_mut()) {
                    let cur = w[0].as_i64().unwrap();
                    w[0] = serde_json::json!(if cur == 5 { 6 } else { 5 });
                    hit = true;
                    break;
                }
            }
            if hit {
                break;
            }
        }
        assert!(hit, "no weight array found to tamper with");
        let tampered: Int8Engine = serde_json::from_str(&v.to_string()).unwrap();
        assert!(!tampered.integrity_ok());
        let err = tampered.validate().unwrap_err();
        assert!(err.contains("checksum"), "msg: {err}");

        // The same tampering inside a validly sealed envelope must be
        // rejected by load, not executed.
        let dir = std::env::temp_dir().join("diva_engine_tamper_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edge_model.json");
        diva_nn::persist::save_versioned(&path, "int8-engine", &v.to_string()).unwrap();
        match Int8Engine::load(&path) {
            Err(diva_nn::persist::PersistError::Format(m)) => {
                assert!(m.contains("checksum"), "msg: {m}")
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_multiplier_fails_validation() {
        let mut rng = StdRng::seed_from_u64(18);
        let images = rand_images(&mut rng, 8, &[3, 8, 8]);
        let q = qat_model(Architecture::ResNet, &mut rng, &images);
        let engine = Int8Engine::from_qat(&q);
        let json = serde_json::to_string(&engine).unwrap();

        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(set_first_mantissa(&mut v, 123));
        let bad: Int8Engine = serde_json::from_str(&v.to_string()).unwrap();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("mantissa"), "msg: {err}");

        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(set_first_real(&mut v, -1.0));
        let bad: Int8Engine = serde_json::from_str(&v.to_string()).unwrap();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("multiplier"), "msg: {err}");
    }

    #[test]
    fn corrupt_engine_file_is_format_error_not_panic() {
        let mut rng = StdRng::seed_from_u64(19);
        let images = rand_images(&mut rng, 8, &[3, 8, 8]);
        let q = qat_model(Architecture::ResNet, &mut rng, &images);
        let engine = Int8Engine::from_qat(&q);
        let dir = std::env::temp_dir().join("diva_engine_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edge_model.json");
        engine.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Truncation.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            Int8Engine::load(&path),
            Err(diva_nn::persist::PersistError::Format(_))
        ));

        // A flipped payload byte.
        let mut flipped = full.clone();
        let at = flipped.len() - 10;
        flipped[at] ^= 0x04;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            Int8Engine::load(&path),
            Err(diva_nn::persist::PersistError::Format(_))
        ));

        // Wrong payload kind under a valid envelope.
        diva_nn::persist::save_versioned(&path, "network", "{}").unwrap();
        assert!(matches!(
            Int8Engine::load(&path),
            Err(diva_nn::persist::PersistError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_serde_round_trips() {
        let mut rng = StdRng::seed_from_u64(14);
        let images = rand_images(&mut rng, 8, &[3, 8, 8]);
        let q = qat_model(Architecture::DenseNet, &mut rng, &images);
        let engine = Int8Engine::from_qat(&q);
        let json = serde_json::to_string(&engine).unwrap();
        let back: Int8Engine = serde_json::from_str(&json).unwrap();
        let x = gather(&images, &[0]);
        assert_eq!(engine.logits(&x), back.logits(&x));
    }

    #[test]
    #[should_panic(expected = "does not match engine input")]
    fn wrong_input_shape_panics() {
        let mut rng = StdRng::seed_from_u64(15);
        let images = rand_images(&mut rng, 8, &[3, 8, 8]);
        let q = qat_model(Architecture::ResNet, &mut rng, &images);
        let engine = Int8Engine::from_qat(&q);
        let _ = engine.logits(&Tensor::zeros(&[1, 1, 8, 8]));
    }
}
