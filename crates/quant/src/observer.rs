//! Activation-range observers for calibration and quantization-aware
//! training.

use serde::{Deserialize, Serialize};

use diva_tensor::Tensor;

/// Tracks the running `[min, max]` range of an activation tensor.
///
/// During calibration the observer takes the running union of batch ranges;
/// during QAT it switches to an exponential moving average (the TF/tfmot
/// `MovingAverageQuantize` behaviour), which lets ranges adapt as weights
/// move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinMaxObserver {
    min: f32,
    max: f32,
    /// EMA momentum; 0 means pure running min/max union.
    momentum: f32,
    initialized: bool,
}

impl MinMaxObserver {
    /// A union-mode observer (calibration).
    pub fn union() -> Self {
        MinMaxObserver {
            min: 0.0,
            max: 0.0,
            momentum: 0.0,
            initialized: false,
        }
    }

    /// An EMA-mode observer with the given momentum (QAT); `momentum` is the
    /// weight of the *new* batch (tfmot uses ~0.01–0.1).
    pub fn ema(momentum: f32) -> Self {
        MinMaxObserver {
            min: 0.0,
            max: 0.0,
            momentum,
            initialized: false,
        }
    }

    /// Folds one batch's range into the running range.
    pub fn update(&mut self, t: &Tensor) {
        if t.is_empty() {
            return;
        }
        let bmin = t.min();
        let bmax = t.max();
        if !self.initialized {
            self.min = bmin;
            self.max = bmax;
            self.initialized = true;
        } else if self.momentum == 0.0 {
            self.min = self.min.min(bmin);
            self.max = self.max.max(bmax);
        } else {
            let a = self.momentum;
            self.min = (1.0 - a) * self.min + a * bmin;
            self.max = (1.0 - a) * self.max + a * bmax;
        }
    }

    /// Switches this observer to EMA mode (after calibration).
    pub fn set_momentum(&mut self, momentum: f32) {
        self.momentum = momentum;
    }

    /// Whether any batch has been observed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// The observed range, nudged to include zero.
    ///
    /// # Panics
    ///
    /// Panics if called before any update — using an uncalibrated observer is
    /// a pipeline bug.
    pub fn range(&self) -> (f32, f32) {
        assert!(self.initialized, "observer used before calibration");
        (self.min.min(0.0), self.max.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_mode_takes_running_extremes() {
        let mut o = MinMaxObserver::union();
        o.update(&Tensor::from_vec(vec![0.5, 1.0], &[2]));
        o.update(&Tensor::from_vec(vec![-2.0, 0.2], &[2]));
        assert_eq!(o.range(), (-2.0, 1.0));
    }

    #[test]
    fn ema_mode_tracks_drift() {
        let mut o = MinMaxObserver::ema(0.5);
        o.update(&Tensor::from_vec(vec![0.0, 4.0], &[2]));
        o.update(&Tensor::from_vec(vec![0.0, 0.0], &[2]));
        // max should have moved halfway toward 0.
        let (_, max) = o.range();
        assert!((max - 2.0).abs() < 1e-6);
    }

    #[test]
    fn range_includes_zero() {
        let mut o = MinMaxObserver::union();
        o.update(&Tensor::from_vec(vec![3.0, 5.0], &[2]));
        assert_eq!(o.range(), (0.0, 5.0));
        let mut o = MinMaxObserver::union();
        o.update(&Tensor::from_vec(vec![-3.0, -1.0], &[2]));
        assert_eq!(o.range(), (-3.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "before calibration")]
    fn uninitialized_range_panics() {
        let _ = MinMaxObserver::union().range();
    }

    #[test]
    fn empty_update_is_ignored() {
        let mut o = MinMaxObserver::union();
        o.update(&Tensor::zeros(&[0]));
        assert!(!o.is_initialized());
    }
}
