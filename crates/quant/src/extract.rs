//! Weight extraction: the attacker's first step in the semi-blackbox setting.
//!
//! §4.3 of the paper: "an attacker can obtain the adapted model from an edge
//! device and recover the differentiable quantization model by extracting the
//! zero points, scales and weights for each layer in the downloaded model,
//! and retain its accuracy without any fine-tuning."
//!
//! [`extract_qat`] performs exactly that recovery: it reads the integer
//! weights, per-channel scales, biases and activation ranges out of an
//! [`Int8Engine`] and rebuilds a differentiable [`QatNetwork`] whose frozen
//! fake-quant function matches the engine (up to rounding).

use diva_nn::graph::{Graph, Op};
use diva_nn::params::ParamStore;
use diva_nn::Network;
use diva_tensor::Tensor;

use crate::engine::Int8Engine;
use crate::qat::{QatNetwork, QuantCfg};
use crate::qparams::QuantParams;

/// Reconstructs a differentiable QAT network from a deployed engine.
///
/// `graph` is the architecture, which the attacker reads from the model file
/// (the engine carries the same structure; this function checks they line
/// up).
///
/// # Panics
///
/// Panics if `graph` does not structurally match the engine.
pub fn extract_qat(engine: &Int8Engine, graph: &Graph) -> QatNetwork {
    let (weights, ranges, bits) = engine.export_parameters(graph);
    let mut params = ParamStore::new();
    for t in weights {
        params.push(t);
    }
    let net = Network::new(graph.clone(), params);
    QatNetwork::from_frozen_ranges(net, &ranges, QuantCfg::with_bits(bits))
}

/// What [`Int8Engine::export_parameters`] reads out of a model file:
/// dequantized weights (graph parameter order), per-node real activation
/// ranges, and the bit width.
pub type ExportedParameters = (Vec<Tensor>, Vec<Option<(f32, f32)>>, u8);

impl Int8Engine {
    /// Exports dequantized parameters (in graph parameter order), per-node
    /// real activation ranges, and the inferred bit width.
    ///
    /// This is the "read the model file" primitive that both [`extract_qat`]
    /// and any external tooling would use.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not structurally match the engine.
    pub fn export_parameters(&self, graph: &Graph) -> ExportedParameters {
        assert_eq!(
            graph.len(),
            self.node_count(),
            "graph/engine length mismatch"
        );
        let mut weights: Vec<Tensor> = Vec::new();
        let mut ranges: Vec<Option<(f32, f32)>> = Vec::with_capacity(graph.len());
        for (idx, node) in graph.nodes().iter().enumerate() {
            let (qp, in_qp) = self.node_qparams(idx);
            ranges.push(match node.op {
                Op::MaxPool2d { .. } | Op::Flatten => None,
                _ => Some(qp.real_range()),
            });
            if let Some((wq, w_dims, bias_q, mults)) = self.node_weights(idx) {
                // s_w[c] = mult[c] * s_out / s_in  (mult = s_in*s_w/s_out)
                let per = wq.len() / w_dims[0];
                let mut w = Vec::with_capacity(wq.len());
                let mut b = Vec::with_capacity(w_dims[0]);
                for c in 0..w_dims[0] {
                    let sw = mults[c] * qp.scale as f64 / in_qp.scale as f64;
                    for &v in &wq[c * per..(c + 1) * per] {
                        w.push((v as f64 * sw) as f32);
                    }
                    b.push((bias_q[c] as f64 * in_qp.scale as f64 * sw) as f32);
                }
                weights.push(Tensor::from_vec(w, &w_dims));
                weights.push(Tensor::from_vec(b, &[w_dims[0]]));
            } else {
                assert!(
                    !node.op.has_params(),
                    "graph node {idx} ({}) has parameters but engine node has none",
                    node.op.name()
                );
            }
        }
        let out_qp = self.node_qparams(self.output_index()).0;
        let bits = infer_bits(out_qp);
        (weights, ranges, bits)
    }
}

fn infer_bits(qp: QuantParams) -> u8 {
    // qmax = 2^(bits-1) - 1
    (32 - (qp.qmax as u32).leading_zeros() + 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qat::QuantCfg;
    use diva_models::{Architecture, ModelCfg};
    use diva_nn::train::gather;
    use diva_nn::Infer;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
        let per: usize = dims.iter().product();
        let samples: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.0..1.0)).collect(), dims))
            .collect();
        Tensor::stack(&samples)
    }

    #[test]
    fn extraction_recovers_engine_behaviour() {
        let mut rng = StdRng::seed_from_u64(20);
        let images = rand_images(&mut rng, 24, &[3, 8, 8]);
        for arch in Architecture::ALL {
            let net = arch.build(&ModelCfg::tiny(4), &mut rng);
            let graph = net.graph().clone();
            let mut q = QatNetwork::new(net, QuantCfg::default());
            q.calibrate(&images);
            let engine = Int8Engine::from_qat(&q);
            let recovered = extract_qat(&engine, &graph);
            let x = gather(&images, &(0..8).collect::<Vec<_>>());
            // "retain its accuracy without any fine-tuning": predictions of
            // the recovered differentiable model match the engine.
            let agree = recovered
                .predict(&x)
                .iter()
                .zip(engine.predict(&x))
                .filter(|(a, b)| **a == *b)
                .count();
            assert!(agree >= 7, "{arch}: extraction agrees on {agree}/8 only");
            // Logits stay close; re-deriving per-channel weight grids from
            // the dequantized weights shifts them by a rounding-level amount.
            let diff = recovered.logits(&x).sub(&engine.logits(&x)).abs().max();
            assert!(diff <= 0.25, "{arch}: logits diff {diff}");
        }
    }

    #[test]
    fn inferred_bits_match() {
        assert_eq!(infer_bits(QuantParams::from_min_max(-1.0, 1.0, 8)), 8);
        assert_eq!(infer_bits(QuantParams::from_min_max(-1.0, 1.0, 4)), 4);
    }
}
