//! Affine quantization parameters and the quantize / dequantize / fake-quant
//! primitives.

use serde::{Deserialize, Serialize};

use diva_tensor::Tensor;

/// Affine quantization parameters mapping reals to a signed integer grid:
/// `q = clamp(round(x / scale) + zero_point, qmin, qmax)`.
///
/// The default experiment setting is int8 (`qmin = -128`, `qmax = 127`),
/// matching the paper's TFLite int8 deployment; narrower widths (e.g. int4)
/// are supported for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Real-value step between adjacent grid points (> 0).
    pub scale: f32,
    /// Integer the real value 0.0 maps to (exactly representable zero).
    pub zero_point: i32,
    /// Smallest representable integer.
    pub qmin: i32,
    /// Largest representable integer.
    pub qmax: i32,
}

impl QuantParams {
    /// Integer bounds of a `bits`-wide signed representation.
    pub fn signed_range(bits: u8) -> (i32, i32) {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8");
        (-(1 << (bits - 1)), (1 << (bits - 1)) - 1)
    }

    /// Derives asymmetric (affine) parameters covering `[min, max]` with a
    /// `bits`-wide signed grid.
    ///
    /// The range is nudged to include 0 so zero padding quantizes exactly,
    /// as TFLite requires.
    pub fn from_min_max(mut min: f32, mut max: f32, bits: u8) -> Self {
        let (qmin, qmax) = Self::signed_range(bits);
        min = min.min(0.0);
        max = max.max(0.0);
        if max - min < 1e-8 {
            max = min + 1e-8; // degenerate range: all-constant activations
        }
        let scale = (max - min) / (qmax - qmin) as f32;
        let zero_point = (qmin as f32 - min / scale)
            .round()
            .clamp(qmin as f32, qmax as f32) as i32;
        QuantParams {
            scale,
            zero_point,
            qmin,
            qmax,
        }
    }

    /// Derives symmetric parameters (`zero_point = 0`) for `[-amax, amax]`,
    /// as used for weights. The grid is `[-(qmax), qmax]` (no -128), the
    /// TFLite per-channel weight convention.
    pub fn symmetric(amax: f32, bits: u8) -> Self {
        let (_, qmax) = Self::signed_range(bits);
        let amax = amax.max(1e-8);
        QuantParams {
            scale: amax / qmax as f32,
            zero_point: 0,
            qmin: -qmax,
            qmax,
        }
    }

    /// Quantizes one real value to the integer grid.
    pub fn quantize(&self, x: f32) -> i32 {
        ((x / self.scale).round() as i32 + self.zero_point).clamp(self.qmin, self.qmax)
    }

    /// Dequantizes one grid integer back to a real value.
    pub fn dequantize(&self, q: i32) -> f32 {
        (q - self.zero_point) as f32 * self.scale
    }

    /// Quantize-then-dequantize of one value: the fake-quant operation.
    pub fn fake(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// Fake-quantizes a whole tensor.
    pub fn fake_tensor(&self, t: &Tensor) -> Tensor {
        t.map(|x| self.fake(x))
    }

    /// Quantizes a whole tensor to `i8` (valid when `qmax <= 127`).
    pub fn quantize_tensor(&self, t: &Tensor) -> Vec<i8> {
        debug_assert!(self.qmin >= -128 && self.qmax <= 127);
        t.data().iter().map(|&x| self.quantize(x) as i8).collect()
    }

    /// Dequantizes an `i8` buffer into a tensor of the given dims.
    pub fn dequantize_tensor(&self, q: &[i8], dims: &[usize]) -> Tensor {
        Tensor::from_vec(q.iter().map(|&v| self.dequantize(v as i32)).collect(), dims)
    }

    /// Smallest and largest representable real values.
    pub fn real_range(&self) -> (f32, f32) {
        (self.dequantize(self.qmin), self.dequantize(self.qmax))
    }
}

/// Weight-quantization granularity (per-channel is the TFLite default; the
/// per-tensor variant exists for the ablation in DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightGranularity {
    /// One scale per output channel (axis 0).
    PerChannel,
    /// A single scale for the whole tensor.
    PerTensor,
}

/// Symmetric weight quantization parameters at the given granularity:
/// returns one [`QuantParams`] per output channel (identical entries in the
/// per-tensor case, so consumers need not branch).
pub fn weight_qparams(w: &Tensor, bits: u8, gran: WeightGranularity) -> Vec<QuantParams> {
    match gran {
        WeightGranularity::PerChannel => per_channel_symmetric(w, bits),
        WeightGranularity::PerTensor => {
            let channels = w.dims()[0].max(1);
            let amax = w.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            vec![QuantParams::symmetric(amax, bits); channels]
        }
    }
}

/// Fake-quantizes a weight tensor at the given granularity.
pub fn fake_weight_quant(w: &Tensor, bits: u8, gran: WeightGranularity) -> Tensor {
    let qps = weight_qparams(w, bits, gran);
    let channels = w.dims()[0];
    let per = w.len() / channels.max(1);
    let mut out = w.clone();
    for (c, qp) in qps.iter().enumerate() {
        for v in &mut out.data_mut()[c * per..(c + 1) * per] {
            *v = qp.fake(*v);
        }
    }
    out
}

/// Per-channel symmetric weight quantization along axis 0.
///
/// Returns one [`QuantParams`] per output channel (row of a dense weight,
/// filter of a conv weight).
pub fn per_channel_symmetric(w: &Tensor, bits: u8) -> Vec<QuantParams> {
    let channels = w.dims()[0];
    let per = w.len() / channels.max(1);
    (0..channels)
        .map(|c| {
            let amax = w.data()[c * per..(c + 1) * per]
                .iter()
                .fold(0.0f32, |m, &x| m.max(x.abs()));
            QuantParams::symmetric(amax, bits)
        })
        .collect()
}

/// Fake-quantizes a weight tensor per-channel (axis 0).
pub fn fake_per_channel(w: &Tensor, bits: u8) -> Tensor {
    let qps = per_channel_symmetric(w, bits);
    let channels = w.dims()[0];
    let per = w.len() / channels.max(1);
    let mut out = w.clone();
    for (c, qp) in qps.iter().enumerate() {
        for v in &mut out.data_mut()[c * per..(c + 1) * per] {
            *v = qp.fake(*v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_for_bit_widths() {
        assert_eq!(QuantParams::signed_range(8), (-128, 127));
        assert_eq!(QuantParams::signed_range(4), (-8, 7));
        assert_eq!(QuantParams::signed_range(2), (-2, 1));
    }

    #[test]
    fn zero_is_exactly_representable() {
        for (min, max) in [(-1.0f32, 2.0), (0.5, 3.0), (-4.0, -1.0), (0.0, 0.0)] {
            let qp = QuantParams::from_min_max(min, max, 8);
            assert_eq!(qp.fake(0.0), 0.0, "range ({min},{max})");
            assert!((qp.qmin..=qp.qmax).contains(&qp.zero_point));
        }
    }

    #[test]
    fn quantize_dequantize_error_bounded_by_half_scale() {
        let qp = QuantParams::from_min_max(-1.0, 1.0, 8);
        for i in 0..200 {
            let x = -1.0 + i as f32 * 0.01;
            let err = (qp.fake(x) - x).abs();
            assert!(err <= qp.scale / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn values_outside_range_saturate() {
        let qp = QuantParams::from_min_max(-1.0, 1.0, 8);
        let (lo, hi) = qp.real_range();
        assert!((qp.fake(10.0) - hi).abs() < 1e-6);
        assert!((qp.fake(-10.0) - lo).abs() < 1e-6);
    }

    #[test]
    fn symmetric_has_zero_zero_point() {
        let qp = QuantParams::symmetric(0.5, 8);
        assert_eq!(qp.zero_point, 0);
        assert_eq!(qp.qmin, -127);
        assert_eq!(qp.qmax, 127);
        assert!((qp.fake(0.5) - 0.5).abs() < 1e-3);
        assert!((qp.fake(-0.5) + 0.5).abs() < 1e-3);
    }

    #[test]
    fn coarser_bits_coarser_grid() {
        let q8 = QuantParams::from_min_max(-1.0, 1.0, 8);
        let q4 = QuantParams::from_min_max(-1.0, 1.0, 4);
        assert!(q4.scale > q8.scale * 10.0);
        // int4 fake-quant loses more information.
        let x = 0.123f32;
        assert!((q4.fake(x) - x).abs() >= (q8.fake(x) - x).abs());
    }

    #[test]
    fn per_channel_scales_track_channel_magnitude() {
        let w = Tensor::from_vec(vec![0.1, -0.1, 2.0, -2.0], &[2, 2]);
        let qps = per_channel_symmetric(&w, 8);
        assert!(qps[1].scale > 10.0 * qps[0].scale);
        let fq = fake_per_channel(&w, 8);
        // Small channel retains precision even next to a big channel.
        assert!((fq.data()[0] - 0.1).abs() < 1e-3);
        assert!((fq.data()[2] - 2.0).abs() < 1e-1);
    }

    #[test]
    fn quantize_tensor_round_trips_within_scale() {
        let qp = QuantParams::from_min_max(-2.0, 2.0, 8);
        let t = Tensor::from_vec(vec![-1.5, 0.0, 0.7, 1.99], &[4]);
        let q = qp.quantize_tensor(&t);
        let back = qp.dequantize_tensor(&q, &[4]);
        assert!(back.allclose(&t, qp.scale / 2.0 + 1e-6));
    }

    #[test]
    fn degenerate_range_does_not_panic() {
        let qp = QuantParams::from_min_max(0.0, 0.0, 8);
        assert!(qp.scale > 0.0);
        assert_eq!(qp.fake(0.0), 0.0);
    }
}
