//! Principal component analysis via power iteration with deflation, used to
//! project penultimate-layer representations to 2-D for the Fig. 4 study.

use diva_tensor::ops::{matmul, matmul_at_b};
use diva_tensor::Tensor;

/// A fitted PCA projection.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    mean: Tensor,
    /// `[k, d]`: one principal axis per row.
    components: Tensor,
    /// Eigenvalues (explained variance) per component, descending.
    eigenvalues: Vec<f32>,
}

impl Pca {
    /// Fits `k` principal components to row-major samples `x` (`[n, d]`)
    /// using power iteration with Hotelling deflation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-2, has fewer than 2 samples, or `k`
    /// exceeds the feature dimension.
    pub fn fit(x: &Tensor, k: usize) -> Self {
        assert_eq!(x.shape().rank(), 2, "PCA expects [n, d]");
        let (n, d) = (x.dims()[0], x.dims()[1]);
        assert!(n >= 2, "PCA needs at least two samples");
        assert!(k <= d, "cannot extract {k} components from {d} dims");
        // Center.
        let mut mean = Tensor::zeros(&[d]);
        for i in 0..n {
            for j in 0..d {
                mean.data_mut()[j] += x.data()[i * d + j];
            }
        }
        mean = mean.scale(1.0 / n as f32);
        let mut centered = x.clone();
        for i in 0..n {
            for j in 0..d {
                centered.data_mut()[i * d + j] -= mean.data()[j];
            }
        }
        // Covariance (d x d), scaled by 1/(n-1).
        let mut cov = matmul_at_b(&centered, &centered).expect("covariance");
        cov = cov.scale(1.0 / (n as f32 - 1.0));

        let mut components = Tensor::zeros(&[k, d]);
        let mut eigenvalues = Vec::with_capacity(k);
        let mut work = cov;
        for comp in 0..k {
            let (v, lambda) = power_iterate(&work, 200, 1e-7, comp as u64);
            for j in 0..d {
                components.data_mut()[comp * d + j] = v.data()[j];
            }
            eigenvalues.push(lambda);
            // Deflate: work -= lambda v v^T
            for a in 0..d {
                for b in 0..d {
                    work.data_mut()[a * d + b] -= lambda * v.data()[a] * v.data()[b];
                }
            }
        }
        Pca {
            mean,
            components,
            eigenvalues,
        }
    }

    /// Projects samples `x` (`[n, d]`) onto the fitted components,
    /// returning `[n, k]` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the feature dimension disagrees with the fit.
    pub fn transform(&self, x: &Tensor) -> Tensor {
        let (n, d) = (x.dims()[0], x.dims()[1]);
        assert_eq!(d, self.mean.len(), "dimension mismatch with fit");
        let mut centered = x.clone();
        for i in 0..n {
            for j in 0..d {
                centered.data_mut()[i * d + j] -= self.mean.data()[j];
            }
        }
        // [n, d] x [k, d]^T -> [n, k]
        diva_tensor::ops::matmul_a_bt(&centered, &self.components).expect("pca transform")
    }

    /// Explained variance per component, descending.
    pub fn eigenvalues(&self) -> &[f32] {
        &self.eigenvalues
    }

    /// The principal axes, one per row (`[k, d]`).
    pub fn components(&self) -> &Tensor {
        &self.components
    }
}

/// Dominant eigenvector/eigenvalue of a symmetric matrix by power iteration.
fn power_iterate(m: &Tensor, iters: usize, tol: f32, seed: u64) -> (Tensor, f32) {
    let d = m.dims()[0];
    // Deterministic pseudo-random start that differs per component.
    let mut v = Tensor::from_vec(
        (0..d)
            .map(|i| ((i as u64 * 2654435761 + seed * 40503 + 1) % 1000) as f32 / 1000.0 - 0.5)
            .collect(),
        &[d, 1],
    );
    let norm = v.norm2().max(1e-12);
    v = v.scale(1.0 / norm);
    let mut lambda = 0.0;
    for _ in 0..iters {
        let mv = matmul(m, &v).expect("power iteration");
        let norm = mv.norm2();
        if norm < 1e-12 {
            // Zero matrix (or fully deflated): any unit vector works.
            return (v.reshape(&[d]).expect("reshape"), 0.0);
        }
        let next = mv.scale(1.0 / norm);
        let delta = next.sub(&v).norm2().min(next.add(&v).norm2());
        v = next;
        lambda = norm;
        if delta < tol {
            break;
        }
    }
    (v.reshape(&[d]).expect("reshape"), lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Samples stretched along a known direction.
    fn anisotropic_data(rng: &mut StdRng, n: usize) -> Tensor {
        // Dominant axis (1, 1, 0)/√2 with sd 5; minor axes sd 0.3.
        let mut data = Vec::with_capacity(n * 3);
        for _ in 0..n {
            let major: f32 = rng.gen_range(-5.0..5.0);
            let m1: f32 = rng.gen_range(-0.3..0.3);
            let m2: f32 = rng.gen_range(-0.3..0.3);
            let s = std::f32::consts::FRAC_1_SQRT_2;
            data.push(major * s + m1);
            data.push(major * s - m1);
            data.push(m2 + 2.0); // offset checks centering
        }
        Tensor::from_vec(data, &[n, 3])
    }

    #[test]
    fn recovers_dominant_direction() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = anisotropic_data(&mut rng, 400);
        let pca = Pca::fit(&x, 2);
        let c0 = pca.components().row(0);
        // First component ≈ ±(1,1,0)/√2.
        let s = std::f32::consts::FRAC_1_SQRT_2;
        let dot = (c0.data()[0] * s + c0.data()[1] * s).abs();
        assert!(dot > 0.98, "first PC misaligned: {:?}", c0.data());
        // Eigenvalues sorted descending and dominant is much larger.
        let ev = pca.eigenvalues();
        assert!(ev[0] > 10.0 * ev[1], "{ev:?}");
    }

    #[test]
    fn transform_centers_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = anisotropic_data(&mut rng, 200);
        let pca = Pca::fit(&x, 2);
        let proj = pca.transform(&x);
        assert_eq!(proj.dims(), &[200, 2]);
        // Projected coordinates are mean-centered.
        let mean0: f32 = (0..200).map(|i| proj.data()[i * 2]).sum::<f32>() / 200.0;
        assert!(mean0.abs() < 0.2, "mean {mean0}");
        // Variance along PC1 far exceeds PC2.
        let var = |k: usize| {
            (0..200)
                .map(|i| proj.data()[i * 2 + k].powi(2))
                .sum::<f32>()
                / 199.0
        };
        assert!(var(0) > 5.0 * var(1));
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = anisotropic_data(&mut rng, 300);
        let pca = Pca::fit(&x, 2);
        let c0 = pca.components().row(0);
        let c1 = pca.components().row(1);
        assert!((c0.norm2() - 1.0).abs() < 1e-3);
        assert!((c1.norm2() - 1.0).abs() < 1e-3);
        let dot: f32 = c0.mul(&c1).sum();
        assert!(dot.abs() < 1e-2, "components not orthogonal: {dot}");
    }

    #[test]
    fn separates_two_clusters() {
        // Two Gaussian blobs along x: PCA-1 coordinates must separate them.
        let mut rng = StdRng::seed_from_u64(4);
        let mut data = Vec::new();
        for i in 0..100 {
            let cx = if i % 2 == 0 { -3.0 } else { 3.0 };
            data.push(cx + rng.gen_range(-0.5..0.5f32));
            data.push(rng.gen_range(-0.5..0.5f32));
        }
        let x = Tensor::from_vec(data, &[100, 2]);
        let pca = Pca::fit(&x, 1);
        let proj = pca.transform(&x);
        let (mut a_mean, mut b_mean) = (0.0, 0.0);
        for i in 0..100 {
            if i % 2 == 0 {
                a_mean += proj.data()[i];
            } else {
                b_mean += proj.data()[i];
            }
        }
        assert!((a_mean / 50.0 - b_mean / 50.0).abs() > 4.0);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn single_sample_rejected() {
        let _ = Pca::fit(&Tensor::zeros(&[1, 3]), 1);
    }
}
