//! `diva-metrics` — the measurement toolkit of the evaluation (§5.1):
//! attack success criteria, confidence deltas, model instability, DSSIM
//! image similarity, and PCA for the representation study.

pub mod dssim;
pub mod pca;
pub mod success;

pub use dssim::{dssim, ssim};
pub use pca::Pca;
pub use success::{confidence_delta, instability, AttackOutcome, SuccessCounts};

#[cfg(test)]
mod tests {
    // Integration-style checks across submodules live in each submodule;
    // this module exists so `cargo test -p diva-metrics` always has a root.
    #[test]
    fn reexports_compile() {
        let _ = crate::dssim::ssim;
    }
}
