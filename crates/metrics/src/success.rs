//! Attack success accounting, following the paper's definitions exactly
//! (§5.1 "Success metrics").
//!
//! A successful *evasive* attack must simultaneously
//! (a) leave the original model's prediction correct, and
//! (b) flip the adapted model's prediction from correct to incorrect.
//!
//! *Top-1 success* uses criterion (b) on the adapted model's top-1 output;
//! *top-5 success* additionally requires the adapted model's (wrong) top-1
//! prediction not to appear in the original model's top-5.

use diva_nn::Infer;
use diva_tensor::ops::softmax_rows;
use diva_tensor::Tensor;

pub use diva_par::supervise::JobStatus;

/// Outcome of attacking one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Original model still predicts the true label on the attacked image.
    pub original_correct: bool,
    /// Adapted model predicts the true label on the attacked image.
    pub adapted_correct: bool,
    /// Adapted model's top-1 prediction appears in the original model's
    /// top-5 on the attacked image.
    pub adapted_pred_in_original_top5: bool,
    /// Earliest attack step (1-based) at which the adapted model's label
    /// diverged from its clean prediction, when per-step telemetry tracked
    /// it; `None` when untracked or when the label never flipped.
    pub first_flip_step: Option<usize>,
    /// How the attack on this sample terminated. Anything but
    /// [`JobStatus::Ok`] (divergence past the recovery budget, a worker
    /// panic, a lapsed deadline, cancellation, or quarantine after retries)
    /// counts toward `total` and its status bucket but toward no success
    /// metric.
    pub status: JobStatus,
}

impl AttackOutcome {
    /// Evaluates one attacked sample against both models.
    ///
    /// `x` is a single-sample batch `[1, c, h, w]`; `label` its true class.
    pub fn evaluate<O: Infer + ?Sized, A: Infer + ?Sized>(
        original: &O,
        adapted: &A,
        x: &Tensor,
        label: usize,
    ) -> Self {
        let lo = original.logits(x);
        let la = adapted.logits(x);
        let o_pred = lo.row(0).argmax().unwrap_or(0);
        let a_pred = la.row(0).argmax().unwrap_or(0);
        let top5 = lo.row(0).topk(5);
        AttackOutcome {
            original_correct: o_pred == label,
            adapted_correct: a_pred == label,
            adapted_pred_in_original_top5: top5.contains(&a_pred),
            first_flip_step: None,
            status: JobStatus::Ok,
        }
    }

    /// Returns a copy annotated with a first-flip step.
    pub fn with_first_flip(self, step: Option<usize>) -> Self {
        AttackOutcome {
            first_flip_step: step,
            ..self
        }
    }

    /// Returns a copy carrying the supervised fan-out's terminal status
    /// (see [`AttackOutcome::status`]).
    pub fn with_status(self, status: JobStatus) -> Self {
        AttackOutcome { status, ..self }
    }

    /// Returns a copy marked as failed (see [`AttackOutcome::status`]).
    pub fn as_failed(self) -> Self {
        self.with_status(JobStatus::Failed)
    }

    /// The paper's joint success criterion (top-1): original stays right,
    /// adapted goes wrong.
    pub fn top1_success(&self) -> bool {
        self.original_correct && !self.adapted_correct
    }

    /// The paper's top-5 criterion: top-1 success *and* the adapted model's
    /// wrong label is not even in the original model's top-5.
    pub fn top5_success(&self) -> bool {
        self.top1_success() && !self.adapted_pred_in_original_top5
    }

    /// Attack-only success (Table 2's "evasion cost" comparison): the
    /// adapted model mispredicts, regardless of the original model.
    pub fn attack_only_success(&self) -> bool {
        !self.adapted_correct
    }
}

/// Aggregated outcome counts over a validation set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuccessCounts {
    /// Samples attacked.
    pub total: usize,
    /// Joint top-1 successes.
    pub top1: usize,
    /// Joint top-5 successes.
    pub top5: usize,
    /// Attack-only successes (adapted fooled).
    pub attack_only: usize,
    /// Samples where the original model was also fooled (the detectable
    /// collateral the paper's Fig. 1 counts).
    pub original_fooled: usize,
    /// Samples whose adapted-model label flipped at a tracked step.
    pub flipped: usize,
    /// Sum of tracked first-flip steps (for the mean).
    pub flip_step_sum: usize,
    /// Samples whose attack failed (divergence past the recovery budget,
    /// or a worker panic). Counted in `total` but in no success metric, so
    /// partial results stay honest: rates are over all attempted samples.
    pub failed: usize,
    /// Samples stopped by their per-item deadline.
    pub timed_out: usize,
    /// Samples stopped by run cancellation.
    pub cancelled: usize,
    /// Samples that failed every attempt of a retry policy.
    pub quarantined: usize,
}

impl SuccessCounts {
    /// Folds one outcome into the counts.
    pub fn add(&mut self, o: &AttackOutcome) {
        self.total += 1;
        match o.status {
            JobStatus::Ok => {}
            JobStatus::Failed => {
                self.failed += 1;
                return;
            }
            JobStatus::TimedOut => {
                self.timed_out += 1;
                return;
            }
            JobStatus::Cancelled => {
                self.cancelled += 1;
                return;
            }
            JobStatus::Quarantined => {
                self.quarantined += 1;
                return;
            }
        }
        self.top1 += usize::from(o.top1_success());
        self.top5 += usize::from(o.top5_success());
        self.attack_only += usize::from(o.attack_only_success());
        self.original_fooled += usize::from(!o.original_correct);
        if let Some(step) = o.first_flip_step {
            self.flipped += 1;
            self.flip_step_sum += step;
        }
    }

    /// Mean first-flip step over the samples that flipped, if any were
    /// tracked. Lower means the attack needs fewer steps to move the edge
    /// model off its clean label.
    pub fn mean_first_flip_step(&self) -> Option<f32> {
        if self.flipped == 0 {
            None
        } else {
            Some(self.flip_step_sum as f32 / self.flipped as f32)
        }
    }

    /// Joint top-1 success rate.
    pub fn top1_rate(&self) -> f32 {
        ratio(self.top1, self.total)
    }

    /// Joint top-5 success rate.
    pub fn top5_rate(&self) -> f32 {
        ratio(self.top5, self.total)
    }

    /// Attack-only success rate (Table 2).
    pub fn attack_only_rate(&self) -> f32 {
        ratio(self.attack_only, self.total)
    }

    /// Rate at which the original model was collaterally fooled.
    pub fn original_fooled_rate(&self) -> f32 {
        ratio(self.original_fooled, self.total)
    }

    /// Samples that produced no scoreable result, for any reason — the sum
    /// of the `failed`, `timed_out`, `cancelled`, and `quarantined`
    /// buckets. `total - unscored()` samples were actually evaluated.
    pub fn unscored(&self) -> usize {
        self.failed + self.timed_out + self.cancelled + self.quarantined
    }
}

impl std::iter::FromIterator<AttackOutcome> for SuccessCounts {
    fn from_iter<I: IntoIterator<Item = AttackOutcome>>(iter: I) -> Self {
        let mut c = SuccessCounts::default();
        for o in iter {
            c.add(&o);
        }
        c
    }
}

fn ratio(num: usize, den: usize) -> f32 {
    if den == 0 {
        0.0
    } else {
        num as f32 / den as f32
    }
}

/// Confidence delta (§5.1): difference between the original and adapted
/// models' softmax confidence in the **true** class, averaged over a batch.
///
/// On a clean dataset this measures the drift quantization alone causes
/// (~7.9% in the paper); after an attack it separates DIVA (56.6–72.4%) from
/// PGD (18.6–25%).
pub fn confidence_delta<O: Infer + ?Sized, A: Infer + ?Sized>(
    original: &O,
    adapted: &A,
    images: &Tensor,
    labels: &[usize],
) -> f32 {
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "labels/images mismatch");
    if n == 0 {
        return 0.0;
    }
    let po = softmax_rows(&original.logits(images));
    let pa = softmax_rows(&adapted.logits(images));
    let c = po.dims()[1];
    let mut sum = 0.0;
    for (i, &y) in labels.iter().enumerate() {
        sum += po.data()[i * c + y] - pa.data()[i * c + y];
    }
    sum / n as f32
}

/// Instability (§3, after Cidon et al.): the fraction of samples on which
/// the two models *disagree about correctness* — one is right where the
/// other is wrong.
///
/// Returns `(original_correct_adapted_wrong, original_wrong_adapted_correct,
/// instability_rate)`, the three columns of Table 1.
pub fn instability<O: Infer + ?Sized, A: Infer + ?Sized>(
    original: &O,
    adapted: &A,
    images: &Tensor,
    labels: &[usize],
) -> (usize, usize, f32) {
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "labels/images mismatch");
    if n == 0 {
        return (0, 0, 0.0);
    }
    let mut o_right_a_wrong = 0usize;
    let mut o_wrong_a_right = 0usize;
    let bs = 64;
    let mut i = 0;
    while i < n {
        let hi = (i + bs).min(n);
        let idx: Vec<usize> = (i..hi).collect();
        let x = diva_nn::train::gather(images, &idx);
        let po = original.predict(&x);
        let pa = adapted.predict(&x);
        for j in 0..idx.len() {
            let y = labels[i + j];
            match (po[j] == y, pa[j] == y) {
                (true, false) => o_right_a_wrong += 1,
                (false, true) => o_wrong_a_right += 1,
                _ => {}
            }
        }
        i = hi;
    }
    let rate = (o_right_a_wrong + o_wrong_a_right) as f32 / n as f32;
    (o_right_a_wrong, o_wrong_a_right, rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic stub model: a fixed logits row per sample brightness
    /// bucket.
    struct Stub {
        classes: usize,
        /// Maps mean brightness to a predicted class.
        rule: fn(f32) -> usize,
    }

    impl Infer for Stub {
        fn logits(&self, x: &Tensor) -> Tensor {
            let n = x.dims()[0];
            let mut out = Tensor::zeros(&[n, self.classes]);
            for i in 0..n {
                let c = (self.rule)(x.index_batch(i).mean()).min(self.classes - 1);
                out.data_mut()[i * self.classes + c] = 5.0;
            }
            out
        }

        fn num_classes(&self) -> usize {
            self.classes
        }
    }

    fn img(v: f32) -> Tensor {
        Tensor::full(&[1, 1, 2, 2], v)
    }

    #[test]
    fn outcome_criteria() {
        // Original always says 0; adapted says 1 for bright images.
        let original = Stub {
            classes: 6,
            rule: |_| 0,
        };
        let adapted = Stub {
            classes: 6,
            rule: |m| usize::from(m > 0.5),
        };
        // label 0, bright image: original right, adapted wrong -> success.
        let o = AttackOutcome::evaluate(&original, &adapted, &img(0.9), 0);
        assert!(o.top1_success());
        assert!(o.attack_only_success());
        // adapted's wrong pred (1) IS in original's top5 (6 classes, top5 of
        // one-hot row includes ties) — top5 then fails.
        // label 0, dark image: both right -> no success.
        let o = AttackOutcome::evaluate(&original, &adapted, &img(0.1), 0);
        assert!(!o.top1_success());
        assert!(!o.attack_only_success());
        // label 1, bright image: original wrong, adapted right.
        let o = AttackOutcome::evaluate(&original, &adapted, &img(0.9), 1);
        assert!(!o.top1_success());
        assert!(!o.original_correct);
    }

    #[test]
    fn counts_aggregate() {
        let original = Stub {
            classes: 6,
            rule: |_| 0,
        };
        let adapted = Stub {
            classes: 6,
            rule: |m| usize::from(m > 0.5),
        };
        let outcomes = vec![
            AttackOutcome::evaluate(&original, &adapted, &img(0.9), 0), // success
            AttackOutcome::evaluate(&original, &adapted, &img(0.1), 0), // none
            AttackOutcome::evaluate(&original, &adapted, &img(0.9), 1), // orig fooled
        ];
        let counts: SuccessCounts = outcomes.into_iter().collect();
        assert_eq!(counts.total, 3);
        assert_eq!(counts.top1, 1);
        assert_eq!(counts.attack_only, 1); // only sample 1: adapted wrong
        assert_eq!(counts.original_fooled, 1);
        assert!((counts.top1_rate() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn first_flip_steps_aggregate_into_mean() {
        let base = AttackOutcome {
            original_correct: true,
            adapted_correct: false,
            adapted_pred_in_original_top5: false,
            first_flip_step: None,
            status: JobStatus::Ok,
        };
        let counts: SuccessCounts = vec![
            base.with_first_flip(Some(3)),
            base.with_first_flip(Some(7)),
            base.with_first_flip(None), // tracked but never flipped
        ]
        .into_iter()
        .collect();
        assert_eq!(counts.flipped, 2);
        assert_eq!(counts.mean_first_flip_step(), Some(5.0));
        // Untracked runs report no mean at all.
        let untracked: SuccessCounts = vec![base].into_iter().collect();
        assert_eq!(untracked.mean_first_flip_step(), None);
    }

    #[test]
    fn failed_outcomes_count_only_toward_total_and_failed() {
        let success = AttackOutcome {
            original_correct: true,
            adapted_correct: false,
            adapted_pred_in_original_top5: false,
            first_flip_step: Some(4),
            status: JobStatus::Ok,
        };
        // A would-be success marked failed must contribute to no metric.
        let counts: SuccessCounts = vec![success, success.as_failed()].into_iter().collect();
        assert_eq!(counts.total, 2);
        assert_eq!(counts.failed, 1);
        assert_eq!(counts.top1, 1);
        assert_eq!(counts.attack_only, 1);
        assert_eq!(counts.flipped, 1);
        assert!((counts.top1_rate() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn supervision_statuses_bucket_separately() {
        let success = AttackOutcome {
            original_correct: true,
            adapted_correct: false,
            adapted_pred_in_original_top5: false,
            first_flip_step: Some(2),
            status: JobStatus::Ok,
        };
        let counts: SuccessCounts = vec![
            success,
            success.with_status(JobStatus::TimedOut),
            success.with_status(JobStatus::Cancelled),
            success.with_status(JobStatus::Quarantined),
            success.with_status(JobStatus::Failed),
        ]
        .into_iter()
        .collect();
        assert_eq!(counts.total, 5);
        assert_eq!(counts.timed_out, 1);
        assert_eq!(counts.cancelled, 1);
        assert_eq!(counts.quarantined, 1);
        assert_eq!(counts.failed, 1);
        assert_eq!(counts.unscored(), 4);
        // Only the Ok sample scores; rates stay over all attempted samples.
        assert_eq!(counts.top1, 1);
        assert_eq!(counts.flipped, 1);
        assert!((counts.top1_rate() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn confidence_delta_signs() {
        // Original confident in class 0, adapted confident in class 1.
        let original = Stub {
            classes: 2,
            rule: |_| 0,
        };
        let adapted = Stub {
            classes: 2,
            rule: |_| 1,
        };
        let images = Tensor::stack(&[img(0.5).index_batch(0)]);
        let d = confidence_delta(&original, &adapted, &images, &[0]);
        assert!(d > 0.9, "delta {d}"); // orig ~0.99 on label, adapted ~0.01
        let d_rev = confidence_delta(&adapted, &original, &images, &[0]);
        assert!(d_rev < -0.9);
        // Identical models: zero delta.
        let d0 = confidence_delta(&original, &original, &images, &[0]);
        assert_eq!(d0, 0.0);
    }

    #[test]
    fn instability_counts_both_directions() {
        let original = Stub {
            classes: 2,
            rule: |m| usize::from(m > 0.5),
        };
        let adapted = Stub {
            classes: 2,
            rule: |m| usize::from(m > 0.3),
        };
        // Brightness 0.4: original says 0, adapted says 1.
        let images = Tensor::stack(&[
            img(0.4).index_batch(0),  // disagree
            img(0.2).index_batch(0),  // both 0
            img(0.8).index_batch(0),  // both 1
            img(0.45).index_batch(0), // disagree
        ]);
        // Labels chosen so disagreements split both ways.
        let (ow, wo, rate) = instability(&original, &adapted, &images, &[1, 0, 1, 0]);
        assert_eq!(ow + wo, 2);
        assert_eq!(ow, 1); // label 0 case: original right (0), adapted wrong
        assert_eq!(wo, 1); // label 1 case: original wrong, adapted right
        assert!((rate - 0.5).abs() < 1e-6);
    }
}
