//! SSIM / DSSIM image similarity (Hore & Ziou 2010), used to verify that
//! adversarial images remain perceptually indistinguishable from their
//! natural sources (§5.2: "The resulting DSSIM for all images are below
//! 0.0092").

use diva_tensor::Tensor;

const C1: f32 = 0.01 * 0.01; // (k1·L)^2 with L = 1.0 dynamic range
const C2: f32 = 0.03 * 0.03;

/// Mean structural similarity between two same-shaped images (`[c, h, w]`
/// or `[h, w]`), computed over sliding 8×8 windows per channel.
///
/// Returns a value in `[-1, 1]`; 1 means identical.
///
/// # Panics
///
/// Panics if shapes differ or the image is smaller than one window.
pub fn ssim(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.dims(), b.dims(), "ssim requires identical shapes");
    let (c, h, w) = match a.dims() {
        [c, h, w] => (*c, *h, *w),
        [h, w] => (1, *h, *w),
        d => panic!("ssim expects [c,h,w] or [h,w], got {d:?}"),
    };
    let win = 8.min(h).min(w);
    assert!(win >= 2, "image too small for SSIM");
    let mut total = 0.0;
    let mut windows = 0usize;
    for ch in 0..c {
        let base = ch * h * w;
        let mut y = 0;
        while y + win <= h {
            let mut x = 0;
            while x + win <= w {
                total += window_ssim(a.data(), b.data(), base, x, y, w, win);
                windows += 1;
                x += win / 2;
            }
            y += win / 2;
        }
    }
    total / windows as f32
}

/// Structural dissimilarity: `(1 − SSIM) / 2`, in `[0, 1]`.
pub fn dssim(a: &Tensor, b: &Tensor) -> f32 {
    (1.0 - ssim(a, b)) / 2.0
}

fn window_ssim(
    a: &[f32],
    b: &[f32],
    base: usize,
    x0: usize,
    y0: usize,
    w: usize,
    win: usize,
) -> f32 {
    let n = (win * win) as f32;
    let (mut ma, mut mb) = (0.0f32, 0.0f32);
    for y in 0..win {
        for x in 0..win {
            let i = base + (y0 + y) * w + x0 + x;
            ma += a[i];
            mb += b[i];
        }
    }
    ma /= n;
    mb /= n;
    let (mut va, mut vb, mut cov) = (0.0f32, 0.0f32, 0.0f32);
    for y in 0..win {
        for x in 0..win {
            let i = base + (y0 + y) * w + x0 + x;
            let da = a[i] - ma;
            let db = b[i] - mb;
            va += da * da;
            vb += db * db;
            cov += da * db;
        }
    }
    va /= n - 1.0;
    vb /= n - 1.0;
    cov /= n - 1.0;
    ((2.0 * ma * mb + C1) * (2.0 * cov + C2)) / ((ma * ma + mb * mb + C1) * (va + vb + C2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_img(rng: &mut StdRng, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(0.0..1.0)).collect(), dims)
    }

    #[test]
    fn identical_images_have_ssim_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = rand_img(&mut rng, &[3, 16, 16]);
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-6);
        assert!(dssim(&a, &a) < 1e-6);
    }

    #[test]
    fn small_perturbations_give_small_dssim() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = rand_img(&mut rng, &[3, 16, 16]);
        // 8/255 L∞ perturbation — the attack budget.
        let eps = 8.0 / 255.0;
        let b = a.zip(&rand_img(&mut rng, &[3, 16, 16]), |x, r| {
            (x + (r - 0.5).signum() * eps).clamp(0.0, 1.0)
        });
        let d = dssim(&a, &b);
        assert!(d < 0.05, "dssim {d} too large for an eps-ball perturbation");
        assert!(d > 0.0);
    }

    #[test]
    fn unrelated_images_have_large_dssim() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = rand_img(&mut rng, &[1, 16, 16]);
        let b = a.map(|x| 1.0 - x); // inverted
        assert!(dssim(&a, &b) > 0.3);
    }

    #[test]
    fn dssim_monotone_in_perturbation_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = rand_img(&mut rng, &[1, 16, 16]);
        let noise = rand_img(&mut rng, &[1, 16, 16]).add_scalar(-0.5);
        let d_small = dssim(&a, &a.add(&noise.scale(0.02)).clamp(0.0, 1.0));
        let d_big = dssim(&a, &a.add(&noise.scale(0.3)).clamp(0.0, 1.0));
        assert!(d_big > d_small);
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn shape_mismatch_panics() {
        let _ = ssim(&Tensor::zeros(&[1, 16, 16]), &Tensor::zeros(&[3, 16, 16]));
    }
}
