//! Bench baseline files (`BENCH_*.json`) and the regression comparator.
//!
//! The bench suites emit one summary file per area (`kernels`, `attacks`)
//! with a median ns/iter per stable bench id. Baselines are committed at
//! the repo root; `repro regress` re-measures and compares against them
//! with a configurable threshold, so perf regressions show up in review
//! instead of months later.

use std::collections::BTreeMap;
use std::path::Path;

use diva_trace::json::{self, Json};
use diva_trace::ArtifactError;

/// Schema tag written into every summary file; bumps on layout changes.
pub const BENCH_SCHEMA: &str = "diva-bench/1";

/// Measurements for one bench id.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: u64,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Number of measured iterations behind the statistics.
    pub iters: u64,
}

/// One `BENCH_<area>.json` file: an area plus its per-bench medians.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Suite area, e.g. `kernels` or `attacks`.
    pub area: String,
    /// Per-bench measurements keyed by stable bench id.
    pub benches: BTreeMap<String, BenchEntry>,
}

impl BenchSummary {
    /// An empty summary for `area`.
    pub fn new(area: &str) -> BenchSummary {
        BenchSummary {
            area: area.to_string(),
            benches: BTreeMap::new(),
        }
    }

    /// Records raw per-iteration samples for `id`, reducing them to
    /// median/mean. Empty samples are ignored.
    pub fn record_samples(&mut self, id: &str, samples_ns: &[u64]) {
        if samples_ns.is_empty() {
            return;
        }
        let mut sorted = samples_ns.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let median_ns = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            // Midpoint of the two central samples, rounding down.
            let lo = sorted[n / 2 - 1];
            let hi = sorted[n / 2];
            lo + (hi - lo) / 2
        };
        let mean_ns = sorted.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        self.benches.insert(
            id.to_string(),
            BenchEntry {
                median_ns,
                mean_ns,
                iters: n as u64,
            },
        );
    }

    /// Serializes to the `BENCH_<area>.json` layout (sorted keys, so the
    /// committed baseline diffs cleanly).
    pub fn to_json(&self) -> Json {
        let mut benches = Json::obj();
        for (id, e) in &self.benches {
            let mut obj = Json::obj();
            obj.set("median_ns", Json::Num(e.median_ns as f64));
            obj.set("mean_ns", Json::Num(e.mean_ns));
            obj.set("iters", Json::Num(e.iters as f64));
            benches.set(id, obj);
        }
        let mut out = Json::obj();
        out.set("schema", Json::Str(BENCH_SCHEMA.to_string()));
        out.set("area", Json::Str(self.area.clone()));
        out.set("benches", benches);
        out
    }

    /// Parses a summary from a JSON tree, validating the schema tag.
    pub fn from_json(v: &Json) -> Result<BenchSummary, ArtifactError> {
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| ArtifactError::Schema("`schema` missing or not a string".into()))?;
        if schema != BENCH_SCHEMA {
            return Err(ArtifactError::Schema(format!(
                "unsupported bench schema `{schema}` (want `{BENCH_SCHEMA}`)"
            )));
        }
        let area = v
            .get("area")
            .and_then(Json::as_str)
            .ok_or_else(|| ArtifactError::Schema("`area` missing or not a string".into()))?
            .to_string();
        let mut benches = BTreeMap::new();
        let bench_map = v
            .get("benches")
            .and_then(Json::as_obj)
            .ok_or_else(|| ArtifactError::Schema("`benches` missing or not an object".into()))?;
        for (id, e) in bench_map {
            let field = |key: &str| -> Result<u64, ArtifactError> {
                e.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    ArtifactError::Schema(format!(
                        "`benches.{id}.{key}` missing or not a non-negative integer"
                    ))
                })
            };
            let mean_ns = e.get("mean_ns").and_then(Json::as_f64).ok_or_else(|| {
                ArtifactError::Schema(format!("`benches.{id}.mean_ns` missing or not a number"))
            })?;
            benches.insert(
                id.clone(),
                BenchEntry {
                    median_ns: field("median_ns")?,
                    mean_ns,
                    iters: field("iters")?,
                },
            );
        }
        Ok(BenchSummary { area, benches })
    }

    /// Parses `BENCH_<area>.json` text.
    pub fn parse(text: &str) -> Result<BenchSummary, ArtifactError> {
        BenchSummary::from_json(&json::parse(text)?)
    }

    /// Loads and parses a summary file.
    pub fn load(path: impl AsRef<Path>) -> Result<BenchSummary, ArtifactError> {
        BenchSummary::parse(&std::fs::read_to_string(path)?)
    }

    /// Writes the summary (pretty, trailing newline) to `path`, creating
    /// missing parent directories (`DIVA_BENCH_JSON` may name a fresh dir).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut body = self.to_json().to_string_pretty();
        body.push('\n');
        std::fs::write(path, body)
    }
}

/// Outcome of comparing one bench id between baseline and fresh runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressStatus {
    /// Delta within the threshold (either direction).
    Ok,
    /// Fresh median slower than baseline by more than the threshold.
    Regressed,
    /// Fresh median faster than baseline by more than the threshold.
    Improved,
    /// Present only in the fresh run (new bench, stale baseline).
    New,
    /// Present only in the baseline (bench removed or skipped).
    Missing,
}

impl RegressStatus {
    fn label(self) -> &'static str {
        match self {
            RegressStatus::Ok => "ok",
            RegressStatus::Regressed => "REGRESSED",
            RegressStatus::Improved => "improved",
            RegressStatus::New => "new",
            RegressStatus::Missing => "missing",
        }
    }
}

/// One comparator row.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressRow {
    /// Bench id.
    pub id: String,
    /// Baseline median, if the id existed in the baseline.
    pub baseline_ns: Option<u64>,
    /// Fresh median, if the id was measured this run.
    pub fresh_ns: Option<u64>,
    /// Percent change fresh vs baseline (`+` = slower); `None` when either
    /// side is absent or the baseline median is 0.
    pub delta_pct: Option<f64>,
    /// Classification against the threshold.
    pub status: RegressStatus,
}

/// Full comparison of a fresh [`BenchSummary`] against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressReport {
    /// Area the comparison covers.
    pub area: String,
    /// Regression threshold in percent.
    pub threshold_pct: f64,
    /// One row per bench id in either summary, sorted by id.
    pub rows: Vec<RegressRow>,
}

impl RegressReport {
    /// Compares `fresh` against `baseline`: a delta beyond
    /// `threshold_pct` percent is a regression (slower) or an improvement
    /// (faster); ids on only one side are flagged, never silently dropped.
    pub fn compare(baseline: &BenchSummary, fresh: &BenchSummary, threshold_pct: f64) -> Self {
        let mut ids: Vec<&String> = baseline.benches.keys().collect();
        for id in fresh.benches.keys() {
            if !baseline.benches.contains_key(id) {
                ids.push(id);
            }
        }
        ids.sort();
        let rows = ids
            .into_iter()
            .map(|id| {
                let base = baseline.benches.get(id).map(|e| e.median_ns);
                let new = fresh.benches.get(id).map(|e| e.median_ns);
                let (delta_pct, status) = match (base, new) {
                    (Some(b), Some(f)) if b > 0 => {
                        let delta = 100.0 * (f as f64 - b as f64) / b as f64;
                        let status = if delta > threshold_pct {
                            RegressStatus::Regressed
                        } else if delta < -threshold_pct {
                            RegressStatus::Improved
                        } else {
                            RegressStatus::Ok
                        };
                        (Some(delta), status)
                    }
                    (Some(_), Some(_)) => (None, RegressStatus::Ok),
                    (None, Some(_)) => (None, RegressStatus::New),
                    (Some(_), None) => (None, RegressStatus::Missing),
                    (None, None) => unreachable!("id came from one of the maps"),
                };
                RegressRow {
                    id: id.clone(),
                    baseline_ns: base,
                    fresh_ns: new,
                    delta_pct,
                    status,
                }
            })
            .collect();
        RegressReport {
            area: fresh.area.clone(),
            threshold_pct,
            rows,
        }
    }

    /// Number of rows classified as regressions.
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.status == RegressStatus::Regressed)
            .count()
    }

    /// Renders the aligned comparison table.
    pub fn render(&self) -> String {
        let id_w = self
            .rows
            .iter()
            .map(|r| r.id.len())
            .max()
            .unwrap_or(5)
            .max("bench".len());
        let fmt_opt = |v: Option<u64>| match v {
            Some(ns) => crate::profile::fmt_ns(ns),
            None => "-".to_string(),
        };
        let mut out = format!(
            "area {} (threshold {:.1}%)\n{:<id_w$}  {:>10}  {:>10}  {:>8}  {}\n",
            self.area, self.threshold_pct, "bench", "baseline", "fresh", "delta", "status"
        );
        for r in &self.rows {
            let delta = match r.delta_pct {
                Some(d) => format!("{d:+.1}%"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<id_w$}  {:>10}  {:>10}  {:>8}  {}\n",
                r.id,
                fmt_opt(r.baseline_ns),
                fmt_opt(r.fresh_ns),
                delta,
                r.status.label()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(area: &str, entries: &[(&str, u64)]) -> BenchSummary {
        let mut s = BenchSummary::new(area);
        for (id, median) in entries {
            s.benches.insert(
                id.to_string(),
                BenchEntry {
                    median_ns: *median,
                    mean_ns: *median as f64,
                    iters: 9,
                },
            );
        }
        s
    }

    #[test]
    fn record_samples_reduces_to_median_and_mean() {
        let mut s = BenchSummary::new("kernels");
        s.record_samples("conv/a", &[30, 10, 20]);
        s.record_samples("conv/b", &[10, 20, 30, 100]);
        s.record_samples("conv/none", &[]);
        let a = &s.benches["conv/a"];
        assert_eq!((a.median_ns, a.iters), (20, 3));
        assert!((a.mean_ns - 20.0).abs() < 1e-12);
        // Even count: midpoint of the two central samples.
        assert_eq!(s.benches["conv/b"].median_ns, 25);
        assert!((s.benches["conv/b"].mean_ns - 40.0).abs() < 1e-12);
        assert!(!s.benches.contains_key("conv/none"));
    }

    #[test]
    fn bench_summary_round_trips_through_json() {
        let mut s = BenchSummary::new("attacks");
        s.record_samples("attack/pgd_grad/r16_b8", &[1_000, 1_200, 1_100]);
        s.record_samples("infer/fp32/r16_b8", &[500_000, 480_000, 520_000]);
        let text = {
            let mut t = s.to_json().to_string_pretty();
            t.push('\n');
            t
        };
        assert!(text.contains("\"schema\": \"diva-bench/1\""), "{text}");
        let back = BenchSummary::parse(&text).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn bench_summary_save_load_round_trip_on_disk() {
        let mut s = BenchSummary::new("kernels");
        s.record_samples("conv2d/im2col/x", &[10, 20, 30]);
        // Save into a directory that does not exist yet: `save` must create
        // it (DIVA_BENCH_JSON can point at a fresh output dir).
        let dir = std::env::temp_dir().join(format!("diva_prof_bench_rt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("nested").join("BENCH_kernels.json");
        s.save(&path).expect("save creates parent dirs");
        let back = BenchSummary::load(&path).expect("load");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_bench_files_are_typed_errors() {
        assert!(matches!(
            BenchSummary::parse("{nope"),
            Err(ArtifactError::Json(_))
        ));
        match BenchSummary::parse(r#"{"schema":"other/9","area":"x","benches":{}}"#) {
            Err(ArtifactError::Schema(msg)) => assert!(msg.contains("other/9"), "{msg}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
        match BenchSummary::parse(
            r#"{"schema":"diva-bench/1","area":"x","benches":{"b":{"iters":3}}}"#,
        ) {
            Err(ArtifactError::Schema(msg)) => assert!(msg.contains("benches.b"), "{msg}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
        assert!(matches!(
            BenchSummary::load("/nonexistent/BENCH_x.json"),
            Err(ArtifactError::Io(_))
        ));
    }

    #[test]
    fn comparator_classifies_all_statuses() {
        let baseline = summary(
            "kernels",
            &[
                ("steady", 1_000),
                ("slower", 1_000),
                ("faster", 1_000),
                ("gone", 1_000),
            ],
        );
        let fresh = summary(
            "kernels",
            &[
                ("steady", 1_030),
                ("slower", 1_200),
                ("faster", 700),
                ("added", 42),
            ],
        );
        let report = RegressReport::compare(&baseline, &fresh, 5.0);
        let by_id = |id: &str| report.rows.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id("steady").status, RegressStatus::Ok);
        assert_eq!(by_id("slower").status, RegressStatus::Regressed);
        assert!((by_id("slower").delta_pct.unwrap() - 20.0).abs() < 1e-9);
        assert_eq!(by_id("faster").status, RegressStatus::Improved);
        assert_eq!(by_id("added").status, RegressStatus::New);
        assert_eq!(by_id("gone").status, RegressStatus::Missing);
        assert_eq!(report.regressions(), 1);
        let table = report.render();
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("threshold 5.0%"), "{table}");
    }

    #[test]
    fn comparator_threshold_is_configurable() {
        let baseline = summary("kernels", &[("b", 1_000)]);
        let fresh = summary("kernels", &[("b", 1_200)]);
        assert_eq!(
            RegressReport::compare(&baseline, &fresh, 5.0).regressions(),
            1
        );
        assert_eq!(
            RegressReport::compare(&baseline, &fresh, 25.0).regressions(),
            0
        );
        // Zero-median baselines cannot produce a ratio; they stay `Ok`.
        let zero = summary("kernels", &[("b", 0)]);
        let report = RegressReport::compare(&zero, &fresh, 5.0);
        assert_eq!(report.rows[0].status, RegressStatus::Ok);
        assert_eq!(report.rows[0].delta_pct, None);
    }
}
