//! Per-op time profiles reconstructed from trace artifacts.
//!
//! `metrics.json` alone gives per-span totals and percentiles but no
//! structure: `nn.forward` *includes* every `nn.fwd.conv2d` beneath it, so
//! totals double-count and never answer "where did the time actually go?".
//! At `DIVA_TRACE=2` every span close is also an event carrying its
//! duration, depth, and thread ordinal — enough to rebuild the dynamic
//! call tree offline and split each op's time into *total* (inclusive)
//! and *self* (exclusive of traced children).

use std::collections::BTreeMap;

use diva_trace::{MetricsSummary, TraceEvent};

/// One reconstructed span invocation in the dynamic call tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CallNode {
    /// Span name (`nn.fwd.conv2d`, `attack.run`, ...).
    pub name: String,
    /// Inclusive duration in nanoseconds.
    pub ns: u64,
    /// Directly nested spans, in completion order.
    pub children: Vec<CallNode>,
}

impl CallNode {
    /// Time spent in this span but not in any traced child.
    ///
    /// Saturates at 0: children are timed by their own clock reads, so
    /// rounding can make their sum exceed the parent by a few ns.
    pub fn self_ns(&self) -> u64 {
        let children: u64 = self
            .children
            .iter()
            .fold(0u64, |acc, c| acc.saturating_add(c.ns));
        self.ns.saturating_sub(children)
    }
}

/// Rebuilds per-thread call trees from span-close events.
///
/// Span closes appear in completion order, and RAII nesting guarantees a
/// span's children close before it does *on the same thread*. So per
/// thread we keep completed-but-unclaimed nodes keyed by depth: when a
/// span at depth `d` closes, everything pending at depth `d + 1` is its
/// direct children. Nodes whose parent never closed (crash, truncated
/// buffer) surface as extra roots rather than being dropped.
pub fn build_call_trees(events: &[TraceEvent]) -> Vec<CallNode> {
    let mut per_tid: BTreeMap<u64, BTreeMap<u32, Vec<CallNode>>> = BTreeMap::new();
    for e in events {
        if e.name != "span" {
            continue;
        }
        let (Some(name), Some(ns)) = (e.str("name"), e.u64("ns")) else {
            continue;
        };
        let pending = per_tid.entry(e.tid).or_default();
        let children = pending.remove(&(e.depth + 1)).unwrap_or_default();
        pending.entry(e.depth).or_default().push(CallNode {
            name: name.to_string(),
            ns,
            children,
        });
    }
    let mut roots = Vec::new();
    for (_tid, pending) in per_tid {
        for (_depth, nodes) in pending {
            roots.extend(nodes);
        }
    }
    roots
}

/// Aggregates self time per span name across all trees.
pub fn self_time_by_name(roots: &[CallNode]) -> BTreeMap<String, u64> {
    fn walk(node: &CallNode, out: &mut BTreeMap<String, u64>) {
        let slot = out.entry(node.name.clone()).or_insert(0);
        *slot = slot.saturating_add(node.self_ns());
        for c in &node.children {
            walk(c, out);
        }
    }
    let mut out = BTreeMap::new();
    for r in roots {
        walk(r, &mut out);
    }
    out
}

/// Folds the trees into collapsed-stack lines (`a;b;c self_ns`), the input
/// format of standard flamegraph tooling. Weights are self time in
/// nanoseconds; identical paths are merged.
pub fn collapsed_stacks(roots: &[CallNode]) -> BTreeMap<String, u64> {
    fn walk(node: &CallNode, prefix: &str, out: &mut BTreeMap<String, u64>) {
        let frame = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix};{}", node.name)
        };
        let self_ns = node.self_ns();
        if self_ns > 0 || node.children.is_empty() {
            let slot = out.entry(frame.clone()).or_insert(0);
            *slot = slot.saturating_add(self_ns);
        }
        for c in &node.children {
            walk(c, &frame, out);
        }
    }
    let mut out = BTreeMap::new();
    for r in roots {
        walk(r, "", &mut out);
    }
    out
}

/// Renders collapsed stacks, one `path weight` line each, sorted by path.
pub fn render_collapsed(stacks: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (path, ns) in stacks {
        out.push_str(path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// One row of the per-op profile table.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRow {
    /// Span/histogram name.
    pub name: String,
    /// Number of recorded invocations.
    pub count: u64,
    /// Inclusive total, nanoseconds.
    pub total_ns: u64,
    /// Exclusive total from the call tree; `None` when the name never
    /// appeared as a span event (level-1 artifact, or a plain histogram
    /// such as `bench.attack_gen_seconds.*`).
    pub self_ns: Option<u64>,
    /// Approximate median invocation, nanoseconds.
    pub p50_ns: u64,
    /// Approximate 95th-percentile invocation, nanoseconds.
    pub p95_ns: u64,
    /// Slowest invocation, nanoseconds.
    pub max_ns: u64,
}

/// The per-op profile: one row per metrics histogram, self time filled in
/// from the call trees where available, sorted by inclusive total.
#[derive(Debug, Clone, Default)]
pub struct OpProfile {
    /// Rows sorted by `total_ns` descending (name as tie-break).
    pub rows: Vec<OpRow>,
}

impl OpProfile {
    /// Joins `metrics.json` stats with call-tree self times.
    pub fn build(summary: &MetricsSummary, roots: &[CallNode]) -> OpProfile {
        let self_time = self_time_by_name(roots);
        let mut rows: Vec<OpRow> = summary
            .spans
            .iter()
            .map(|(name, s)| OpRow {
                name: name.clone(),
                count: s.count,
                total_ns: s.total_ns,
                self_ns: self_time.get(name).copied(),
                p50_ns: s.p50_ns,
                p95_ns: s.p95_ns,
                max_ns: s.max_ns,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        OpProfile { rows }
    }

    /// Renders the aligned text table. Durations use adaptive units;
    /// histogram-only rows (no span events) show `-` for self time.
    /// `self%` is each row's share of the summed self time.
    pub fn render(&self) -> String {
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(2)
            .max("op".len());
        let total_self: u64 = self
            .rows
            .iter()
            .filter_map(|r| r.self_ns)
            .fold(0u64, |a, b| a.saturating_add(b));
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>9}  {:>10}  {:>10}  {:>6}  {:>10}  {:>10}  {:>10}\n",
            "op", "count", "total", "self", "self%", "p50", "p95", "max"
        ));
        for r in &self.rows {
            let (self_s, pct_s) = match r.self_ns {
                Some(s) => {
                    let pct = if total_self > 0 {
                        format!("{:.1}", 100.0 * s as f64 / total_self as f64)
                    } else {
                        "0.0".to_string()
                    };
                    (fmt_ns(s), pct)
                }
                None => ("-".to_string(), "-".to_string()),
            };
            out.push_str(&format!(
                "{:<name_w$}  {:>9}  {:>10}  {:>10}  {:>6}  {:>10}  {:>10}  {:>10}\n",
                r.name,
                r.count,
                fmt_ns(r.total_ns),
                self_s,
                pct_s,
                fmt_ns(r.p50_ns),
                fmt_ns(r.p95_ns),
                fmt_ns(r.max_ns),
            ));
        }
        out
    }
}

/// Formats a nanosecond count with an adaptive unit (`ns`, `us`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", v / 1e6)
    } else {
        format!("{:.3}s", v / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_trace::Json;

    fn span_event(tid: u64, depth: u32, name: &str, ns: u64) -> TraceEvent {
        let mut fields = std::collections::BTreeMap::new();
        fields.insert("name".to_string(), Json::Str(name.to_string()));
        fields.insert("ns".to_string(), Json::Num(ns as f64));
        TraceEvent {
            name: "span".to_string(),
            t_us: 0.0,
            depth,
            tid,
            fields,
        }
    }

    /// Simulated close order for `root{ a{ leaf } b }` on one thread plus
    /// an unrelated span on a second thread.
    fn sample_events() -> Vec<TraceEvent> {
        vec![
            span_event(1, 2, "leaf", 30),
            span_event(1, 1, "a", 50),
            span_event(1, 1, "b", 40),
            span_event(2, 0, "other", 25),
            span_event(1, 0, "root", 100),
        ]
    }

    #[test]
    fn call_tree_reconstruction_nests_by_depth_and_tid() {
        let roots = build_call_trees(&sample_events());
        assert_eq!(roots.len(), 2);
        let root = roots.iter().find(|r| r.name == "root").expect("root");
        assert_eq!(root.ns, 100);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "a");
        assert_eq!(root.children[0].children[0].name, "leaf");
        assert_eq!(root.children[1].name, "b");
        // `other` ran on another thread: depth numbering there is
        // independent and it must not be adopted by tid 1's tree.
        let other = roots.iter().find(|r| r.name == "other").expect("other");
        assert!(other.children.is_empty());
        // Self time: root spent 100 - (50 + 40) = 10ns itself.
        assert_eq!(root.self_ns(), 10);
        assert_eq!(root.children[0].self_ns(), 20);
    }

    #[test]
    fn orphaned_children_become_roots() {
        // A deep span closed but its parent never did (truncated trace).
        let events = vec![span_event(1, 3, "deep", 7)];
        let roots = build_call_trees(&events);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "deep");
    }

    #[test]
    fn collapsed_stacks_merge_paths_and_weight_by_self_time() {
        let stacks = collapsed_stacks(&build_call_trees(&sample_events()));
        assert_eq!(stacks.get("root"), Some(&10));
        assert_eq!(stacks.get("root;a"), Some(&20));
        assert_eq!(stacks.get("root;a;leaf"), Some(&30));
        assert_eq!(stacks.get("root;b"), Some(&40));
        assert_eq!(stacks.get("other"), Some(&25));
        let text = render_collapsed(&stacks);
        assert!(text.contains("root;a;leaf 30\n"), "{text}");
        // Total self time equals total inclusive root time.
        let sum: u64 = stacks.values().sum();
        assert_eq!(sum, 125);
    }

    #[test]
    fn profile_rows_join_metrics_with_self_time() {
        let mut summary = MetricsSummary::default();
        for (name, total) in [("root", 100u64), ("a", 50), ("b", 40), ("leaf", 30)] {
            summary.spans.insert(
                name.to_string(),
                diva_trace::SpanStats {
                    count: 1,
                    p50_ns: total,
                    p95_ns: total,
                    max_ns: total,
                    mean_ns: total as f64,
                    total_ns: total,
                },
            );
        }
        // A histogram that never appears as a span event.
        summary.spans.insert(
            "bench.attack_gen_seconds".to_string(),
            diva_trace::SpanStats {
                count: 4,
                p50_ns: 2_000_000_000,
                p95_ns: 3_000_000_000,
                max_ns: 3_000_000_000,
                mean_ns: 2e9,
                total_ns: 8_000_000_000,
            },
        );
        let roots = build_call_trees(&sample_events());
        let prof = OpProfile::build(&summary, &roots);
        assert_eq!(prof.rows[0].name, "bench.attack_gen_seconds");
        assert_eq!(prof.rows[0].self_ns, None);
        let root = prof.rows.iter().find(|r| r.name == "root").unwrap();
        assert_eq!(root.self_ns, Some(10));
        let table = prof.render();
        assert!(table.contains("bench.attack_gen_seconds"), "{table}");
        assert!(table.lines().next().unwrap().contains("self%"), "{table}");
    }

    #[test]
    fn fmt_ns_picks_adaptive_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
