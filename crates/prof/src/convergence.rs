//! Attack-convergence analytics from `attack.step` / `attack.trajectory`
//! events.
//!
//! At `DIVA_TRACE=2` the projected-ascent driver emits one `attack.step`
//! event per optimizer step (loss, FP/quantized gradient sign agreement)
//! and the parallel attack runner emits one `attack.trajectory` event per
//! finished image (first label-flip step, guard outcome). Both are stamped
//! with a stable `(attack, item)` id, so the interleaved multi-thread
//! stream aggregates into per-attack curves regardless of `DIVA_JOBS`.

use std::collections::BTreeMap;

use diva_trace::{Json, TraceEvent};

/// Aggregate over all `attack.step` events for one `(attack, step)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StepAgg {
    /// Number of step events with a loss sample.
    pub n: u64,
    /// Sum of losses (for the mean).
    pub loss_sum: f64,
    /// Smallest observed loss.
    pub loss_min: f64,
    /// Largest observed loss.
    pub loss_max: f64,
    /// Sum of gradient-sign-agreement samples.
    pub agree_sum: f64,
    /// Number of agreement samples (absent for single-model attacks).
    pub agree_n: u64,
}

impl Default for StepAgg {
    fn default() -> Self {
        StepAgg {
            n: 0,
            loss_sum: 0.0,
            loss_min: f64::INFINITY,
            loss_max: f64::NEG_INFINITY,
            agree_sum: 0.0,
            agree_n: 0,
        }
    }
}

impl StepAgg {
    /// Mean loss at this step (0 if no samples).
    pub fn loss_mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.loss_sum / self.n as f64
        }
    }

    /// Mean gradient sign agreement at this step, if sampled.
    pub fn agree_mean(&self) -> Option<f64> {
        if self.agree_n == 0 {
            None
        } else {
            Some(self.agree_sum / self.agree_n as f64)
        }
    }
}

/// Per-attack trajectory outcomes from `attack.trajectory` events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrajStats {
    /// Trajectories (images) attacked.
    pub n: u64,
    /// Trajectories where the victim label flipped at some step.
    pub flipped: u64,
    /// Trajectories aborted by the divergence guard.
    pub failed: u64,
    /// First-flip step of each flipped trajectory (unordered).
    pub first_flip_steps: Vec<u64>,
}

/// All convergence analytics for one trace.
#[derive(Debug, Clone, Default)]
pub struct Convergence {
    /// `(attack, step)` loss/agreement aggregates.
    pub steps: BTreeMap<(String, u64), StepAgg>,
    /// Per-attack trajectory outcomes.
    pub trajectories: BTreeMap<String, TrajStats>,
}

/// Attack label used when an event carries no `attack` field (events
/// recorded outside a labelled scope, or pre-label artifacts).
pub const UNATTRIBUTED: &str = "unattributed";

/// Folds the event stream into convergence aggregates. Non-attack events
/// are ignored; malformed attack events (missing `step`) are skipped
/// rather than failing the whole analysis.
pub fn analyze(events: &[TraceEvent]) -> Convergence {
    let mut out = Convergence::default();
    for e in events {
        match e.name.as_str() {
            "attack.step" => {
                let Some(step) = e.u64("step") else { continue };
                let attack = e.str("attack").unwrap_or(UNATTRIBUTED).to_string();
                let agg = out.steps.entry((attack, step)).or_default();
                if let Some(loss) = e.f64("loss") {
                    agg.n += 1;
                    agg.loss_sum += loss;
                    agg.loss_min = agg.loss_min.min(loss);
                    agg.loss_max = agg.loss_max.max(loss);
                }
                if let Some(a) = e.f64("grad_sign_agreement") {
                    agg.agree_sum += a;
                    agg.agree_n += 1;
                }
            }
            "attack.trajectory" => {
                let attack = e.str("attack").unwrap_or(UNATTRIBUTED).to_string();
                let t = out.trajectories.entry(attack).or_default();
                t.n += 1;
                if matches!(e.fields.get("failed"), Some(Json::Bool(true))) {
                    t.failed += 1;
                }
                // `first_flip` is -1 when the label never flipped.
                if let Some(step) = e.f64("first_flip").filter(|s| *s >= 0.0) {
                    t.flipped += 1;
                    t.first_flip_steps.push(step as u64);
                }
            }
            _ => {}
        }
    }
    out
}

impl Convergence {
    /// True when the trace carried no attack telemetry at all.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty() && self.trajectories.is_empty()
    }

    /// Per-attack loss curve: `attack,step,n,loss_mean,loss_min,loss_max`.
    pub fn loss_csv(&self) -> String {
        let mut out = String::from("attack,step,n,loss_mean,loss_min,loss_max\n");
        for ((attack, step), agg) in &self.steps {
            if agg.n == 0 {
                continue;
            }
            out.push_str(&format!(
                "{attack},{step},{},{:.6},{:.6},{:.6}\n",
                agg.n,
                agg.loss_mean(),
                agg.loss_min,
                agg.loss_max
            ));
        }
        out
    }

    /// Gradient-sign-agreement trajectory:
    /// `attack,step,n,grad_sign_agreement_mean`.
    pub fn agreement_csv(&self) -> String {
        let mut out = String::from("attack,step,n,grad_sign_agreement_mean\n");
        for ((attack, step), agg) in &self.steps {
            let Some(mean) = agg.agree_mean() else {
                continue;
            };
            out.push_str(&format!("{attack},{step},{},{mean:.6}\n", agg.agree_n));
        }
        out
    }

    /// First-flip-step distribution: `attack,first_flip_step,count`, with a
    /// trailing `never` row counting trajectories that never flipped.
    pub fn first_flip_csv(&self) -> String {
        let mut out = String::from("attack,first_flip_step,count\n");
        for (attack, t) in &self.trajectories {
            let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
            for &s in &t.first_flip_steps {
                *counts.entry(s).or_insert(0) += 1;
            }
            for (step, n) in counts {
                out.push_str(&format!("{attack},{step},{n}\n"));
            }
            let never = t.n - t.flipped.min(t.n);
            if never > 0 {
                out.push_str(&format!("{attack},never,{never}\n"));
            }
        }
        out
    }

    /// One-line-per-attack human summary of trajectory outcomes.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        for (attack, t) in &self.trajectories {
            let mut flips = t.first_flip_steps.clone();
            flips.sort_unstable();
            let median = flips
                .get(flips.len() / 2)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{attack}: {} trajectories, {} flipped, {} guard-failed, median first flip {median}\n",
                t.n, t.flipped, t.failed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, fields: &[(&str, Json)]) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            t_us: 0.0,
            depth: 0,
            tid: 1,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    fn step(attack: &str, item: u64, step: u64, loss: f64, agree: Option<f64>) -> TraceEvent {
        let mut fields = vec![
            ("attack", Json::Str(attack.to_string())),
            ("item", Json::Num(item as f64)),
            ("step", Json::Num(step as f64)),
            ("loss", Json::Num(loss)),
        ];
        if let Some(a) = agree {
            fields.push(("grad_sign_agreement", Json::Num(a)));
        }
        ev("attack.step", &fields)
    }

    fn trajectory(attack: &str, item: u64, first_flip: i64, failed: bool) -> TraceEvent {
        ev(
            "attack.trajectory",
            &[
                ("attack", Json::Str(attack.to_string())),
                ("item", Json::Num(item as f64)),
                ("first_flip", Json::Num(first_flip as f64)),
                ("failed", Json::Bool(failed)),
            ],
        )
    }

    #[test]
    fn step_events_aggregate_into_per_attack_curves() {
        let events = vec![
            step("PGD", 0, 0, 2.0, None),
            step("PGD", 1, 0, 4.0, None),
            step("PGD", 0, 1, 1.0, None),
            step("DIVA", 0, 0, 8.0, Some(0.75)),
            step("DIVA", 0, 1, 6.0, Some(0.25)),
            // Ignored: unrelated event and a step event with no step field.
            ev("nn.forward", &[]),
            ev("attack.step", &[("loss", Json::Num(9.0))]),
        ];
        let c = analyze(&events);
        let pgd0 = &c.steps[&("PGD".to_string(), 0)];
        assert_eq!(pgd0.n, 2);
        assert!((pgd0.loss_mean() - 3.0).abs() < 1e-12);
        assert_eq!(pgd0.loss_min, 2.0);
        assert_eq!(pgd0.loss_max, 4.0);
        assert_eq!(pgd0.agree_mean(), None);
        let diva1 = &c.steps[&("DIVA".to_string(), 1)];
        assert_eq!(diva1.agree_mean(), Some(0.25));

        let loss = c.loss_csv();
        assert!(loss.starts_with("attack,step,n,loss_mean"), "{loss}");
        assert!(
            loss.contains("PGD,0,2,3.000000,2.000000,4.000000\n"),
            "{loss}"
        );
        let agree = c.agreement_csv();
        // PGD rows carry no agreement samples and are omitted entirely.
        assert!(!agree.contains("PGD"), "{agree}");
        assert!(agree.contains("DIVA,1,1,0.250000\n"), "{agree}");
    }

    #[test]
    fn trajectories_build_first_flip_distribution() {
        let events = vec![
            trajectory("DIVA", 0, 3, false),
            trajectory("DIVA", 1, 3, false),
            trajectory("DIVA", 2, 7, false),
            trajectory("DIVA", 3, -1, true),
        ];
        let c = analyze(&events);
        let t = &c.trajectories["DIVA"];
        assert_eq!((t.n, t.flipped, t.failed), (4, 3, 1));
        let csv = c.first_flip_csv();
        assert!(csv.contains("DIVA,3,2\n"), "{csv}");
        assert!(csv.contains("DIVA,7,1\n"), "{csv}");
        assert!(csv.contains("DIVA,never,1\n"), "{csv}");
        let summary = c.render_summary();
        assert!(
            summary.contains("DIVA: 4 trajectories, 3 flipped, 1 guard-failed"),
            "{summary}"
        );
    }

    #[test]
    fn events_without_attack_field_fall_back_to_unattributed() {
        let events = vec![ev(
            "attack.step",
            &[("step", Json::Num(0.0)), ("loss", Json::Num(1.0))],
        )];
        let c = analyze(&events);
        assert!(c.steps.contains_key(&(UNATTRIBUTED.to_string(), 0)));
        assert!(!c.is_empty());
        assert!(Convergence::default().is_empty());
    }
}
