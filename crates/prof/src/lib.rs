//! diva-prof: offline analysis of diva-trace artifacts.
//!
//! The tracing layer (diva-trace) records; this crate *explains*. It is
//! the analysis half of the observability stack, and — like the recorder —
//! dependency-free, so it builds anywhere the workspace does:
//!
//! - [`profile`]: per-op time tables (total/self/p50/p95) and
//!   collapsed-stack output for flamegraph tooling, reconstructed from
//!   span-close events.
//! - [`convergence`]: per-attack loss curves, gradient-sign-agreement
//!   trajectories, and first-flip-step distributions from `attack.*`
//!   events, written as CSVs.
//! - [`bench`]: the `BENCH_<area>.json` baseline format and the
//!   threshold-based regression comparator behind `repro regress`.
//!
//! The `repro profile` subcommand is a thin CLI over [`Analysis`]: load a
//! trace directory, write the report files, print the table.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub mod bench;
pub mod convergence;
pub mod profile;

pub use bench::{BenchEntry, BenchSummary, RegressReport, RegressRow, RegressStatus, BENCH_SCHEMA};
pub use convergence::Convergence;
pub use profile::{CallNode, OpProfile, OpRow};

use diva_trace::{ArtifactError, MetricsSummary};

/// Everything `repro profile` derives from one trace directory.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The parsed `metrics.json`.
    pub summary: MetricsSummary,
    /// Per-op table joining metrics with call-tree self times.
    pub profile: OpProfile,
    /// Attack convergence aggregates (empty below `DIVA_TRACE=2`).
    pub convergence: Convergence,
    /// Collapsed stacks (`a;b;c -> self ns`), empty without span events.
    pub collapsed: BTreeMap<String, u64>,
    /// Number of trace events consumed.
    pub events: usize,
}

impl Analysis {
    /// Builds the full analysis from already-loaded artifacts.
    pub fn from_artifacts(summary: MetricsSummary, events: &[diva_trace::TraceEvent]) -> Analysis {
        let roots = profile::build_call_trees(events);
        Analysis {
            profile: OpProfile::build(&summary, &roots),
            convergence: convergence::analyze(events),
            collapsed: profile::collapsed_stacks(&roots),
            events: events.len(),
            summary,
        }
    }

    /// Loads `metrics.json` + `trace.jsonl` from a trace directory.
    ///
    /// `metrics.json` is required; a missing `trace.jsonl` (or one with no
    /// span events — a level-1 run) degrades to a metrics-only profile
    /// rather than failing.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Analysis, ArtifactError> {
        let dir = dir.as_ref();
        let summary = MetricsSummary::load(dir.join("metrics.json"))?;
        let events = match diva_trace::summary::load_events(dir.join("trace.jsonl")) {
            Ok(events) => events,
            Err(ArtifactError::Io(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok(Analysis::from_artifacts(summary, &events))
    }

    /// Writes all report files under `out_dir` (created if needed) and
    /// returns their paths: `profile.txt`, `collapsed_stacks.txt`, and —
    /// when the trace carried attack telemetry — `loss_curves.csv`,
    /// `grad_agreement.csv`, `first_flip.csv`.
    pub fn write_reports(&self, out_dir: impl AsRef<Path>) -> std::io::Result<Vec<PathBuf>> {
        let out_dir = out_dir.as_ref();
        std::fs::create_dir_all(out_dir)?;
        let mut written = Vec::new();
        let mut emit = |name: &str, body: &str| -> std::io::Result<()> {
            let path = out_dir.join(name);
            std::fs::write(&path, body)?;
            written.push(path);
            Ok(())
        };
        emit("profile.txt", &self.profile.render())?;
        emit(
            "collapsed_stacks.txt",
            &profile::render_collapsed(&self.collapsed),
        )?;
        if !self.convergence.is_empty() {
            emit("loss_curves.csv", &self.convergence.loss_csv())?;
            emit("grad_agreement.csv", &self.convergence.agreement_csv())?;
            emit("first_flip.csv", &self.convergence.first_flip_csv())?;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End to end against the live recorder: record real nested spans and
    /// attack events, write artifacts, re-load them through `Analysis`.
    /// The only test in this crate that touches the (global) recorder.
    #[test]
    fn analysis_round_trips_real_artifacts() {
        diva_trace::set_level(2);
        diva_trace::reset();
        {
            let _outer = diva_trace::span(1, "experiment.test");
            for _ in 0..3 {
                let _inner = diva_trace::span(2, "nn.forward");
                std::hint::black_box(());
            }
            diva_trace::event_at(
                2,
                "attack.step",
                &[
                    ("attack", diva_trace::Value::from("PGD")),
                    ("item", diva_trace::Value::from(0u64)),
                    ("step", diva_trace::Value::from(0u64)),
                    ("loss", diva_trace::Value::from(1.5f64)),
                ],
            );
            diva_trace::event_at(
                2,
                "attack.trajectory",
                &[
                    ("attack", diva_trace::Value::from("PGD")),
                    ("item", diva_trace::Value::from(0u64)),
                    ("first_flip", diva_trace::Value::from(0i64)),
                    ("failed", diva_trace::Value::from(false)),
                ],
            );
        }
        let dir = std::env::temp_dir().join(format!("diva_prof_e2e_{}", std::process::id()));
        diva_trace::write_artifacts(&dir).expect("write artifacts");
        diva_trace::set_level(0);
        diva_trace::reset();

        let analysis = Analysis::load_dir(&dir).expect("load");
        assert!(analysis.events >= 5, "events: {}", analysis.events);
        let fwd = analysis
            .profile
            .rows
            .iter()
            .find(|r| r.name == "nn.forward")
            .expect("nn.forward row");
        assert_eq!(fwd.count, 3);
        assert!(fwd.self_ns.is_some(), "span events give self time");
        assert!(
            analysis
                .collapsed
                .keys()
                .any(|k| k == "experiment.test;nn.forward"),
            "collapsed: {:?}",
            analysis.collapsed
        );
        assert_eq!(analysis.convergence.trajectories["PGD"].n, 1);

        let out = dir.join("prof");
        let written = analysis.write_reports(&out).expect("write reports");
        assert_eq!(written.len(), 5, "{written:?}");
        for path in &written {
            assert!(path.exists(), "{path:?}");
        }
        let table = std::fs::read_to_string(out.join("profile.txt")).unwrap();
        assert!(table.contains("nn.forward"), "{table}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A level-1 style artifact set (metrics only, no events) degrades to
    /// a metrics-only profile instead of erroring.
    #[test]
    fn metrics_only_directory_degrades_gracefully() {
        let dir = std::env::temp_dir().join(format!("diva_prof_l1_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("metrics.json"),
            r#"{"level":1,"spans":{"attack.run":{"count":2,"p50_ns":10,"p95_ns":20,"max_ns":20,"mean_ns":15.0,"total_ns":30}},"counters":{},"events_buffered":0,"events_dropped":0}"#,
        )
        .unwrap();
        let analysis = Analysis::load_dir(&dir).expect("load");
        assert_eq!(analysis.events, 0);
        assert!(analysis.convergence.is_empty());
        assert_eq!(analysis.profile.rows[0].self_ns, None);
        let written = analysis.write_reports(dir.join("prof")).expect("reports");
        // No attack telemetry: only the profile + (empty) stacks files.
        assert_eq!(written.len(), 2, "{written:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_metrics_is_an_io_error() {
        let dir = std::env::temp_dir().join(format!("diva_prof_missing_{}", std::process::id()));
        assert!(matches!(
            Analysis::load_dir(&dir),
            Err(ArtifactError::Io(_))
        ));
    }
}
