//! Differential battery for the cache-blocked GEMM core.
//!
//! The tentpole rewrite (ISSUE 7) moved every matmul variant, im2col
//! convolution, and the int8 engine onto `diva_tensor::gemm`. The paper's
//! attacks run thousands of forward/backward passes through these kernels,
//! so "fast but subtly wrong" is the failure mode to fear — this battery
//! pins the blocked paths against retained naive references on seeded-LCG
//! random shapes, deliberately crossing every tile boundary (MR=4, NR=8,
//! KC=256) plus the k=1, 1×N, and empty degenerate shapes:
//!
//! * f32 paths match the naive ascending-k fold within 1e-4 relative error
//!   (in fact bitwise, but the tolerance contract is what callers rely on);
//! * the i8×i8→i32 core matches a naive i32 accumulate **exactly**;
//! * NaN/Inf in either operand propagates to the output — the regression
//!   guard for the old pruned-path bug where skipping `a == 0.0` silently
//!   turned `0·NaN` into `0` and hid non-finite activations.
//!
//! All data comes from an in-file LCG, never `rand`, so every shape and
//! value is identical on any platform.

use std::sync::Mutex;

use diva_tensor::conv::{conv2d, conv2d_naive, Conv2dCfg};
use diva_tensor::gemm::{self, CaptureAcc, Layout, NoEpilogue};
use diva_tensor::Tensor;
use diva_tensor::{ops, packcache};

/// Serializes tests that mutate the process-global `diva_par` job override.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the worker-pool override pinned to `jobs`, restoring the
/// env-driven default afterwards.
fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    diva_par::set_jobs(jobs);
    let r = f();
    diva_par::set_jobs(0);
    r
}

/// 32-bit LCG (Numerical Recipes constants), the same generator family the
/// QAT golden-vector suite uses.
struct Lcg(u32);

impl Lcg {
    fn next_u32(&mut self) -> u32 {
        self.0 = self.0.wrapping_mul(1664525).wrapping_add(1013904223);
        self.0
    }

    /// Uniform in [-1, 1).
    fn unit(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
    }

    /// Uniform in [0, bound).
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u32() as usize) % bound
    }

    fn i8(&mut self) -> i8 {
        (self.next_u32() >> 16) as u8 as i8
    }

    fn tensor(&mut self, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| self.unit()).collect(), dims)
    }
}

fn assert_close(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (idx, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
            "{what}[{idx}]: blocked {g} vs naive {w}"
        );
    }
}

/// Shape list: LCG-random draws spanning below/at/above each tile edge,
/// plus the degenerate shapes the blocking must special-case.
fn shapes(lcg: &mut Lcg) -> Vec<(usize, usize, usize)> {
    let mut s = vec![
        (1, 1, 1),
        (1, 1, 300),    // k crosses KC? no (KC=256 needs k>256) — k=300 does
        (1, 97, 1),     // 1×N with ragged NR strip
        (3, 8, 1),      // k = 1
        (4, 8, 256),    // exact MR/NR/KC multiples
        (5, 9, 257),    // one past every tile edge
        (0, 7, 5),      // empty m
        (7, 0, 5),      // empty n
        (7, 5, 0),      // empty k
        (67, 130, 530), // several blocks in every dimension, all ragged
    ];
    for _ in 0..8 {
        s.push((1 + lcg.below(70), 1 + lcg.below(90), 1 + lcg.below(310)));
    }
    s
}

#[test]
fn matmul_matches_naive_reference() {
    let mut lcg = Lcg(0xD1FF);
    for (m, n, k) in shapes(&mut lcg) {
        let a = lcg.tensor(&[m, k]);
        let b = lcg.tensor(&[k, n]);
        let got = ops::matmul(&a, &b).unwrap();
        let want = gemm::naive_f32(
            m,
            n,
            k,
            a.data(),
            Layout::RowMajor,
            b.data(),
            Layout::RowMajor,
        );
        assert_close(got.data(), &want, &format!("matmul {m}x{k}·{k}x{n}"));
    }
}

#[test]
fn matmul_at_b_matches_naive_reference() {
    let mut lcg = Lcg(0xA7B);
    for (m, n, k) in shapes(&mut lcg) {
        let a = lcg.tensor(&[k, m]); // stored transposed
        let b = lcg.tensor(&[k, n]);
        let got = ops::matmul_at_b(&a, &b).unwrap();
        let want = gemm::naive_f32(
            m,
            n,
            k,
            a.data(),
            Layout::Transposed,
            b.data(),
            Layout::RowMajor,
        );
        assert_close(got.data(), &want, &format!("matmul_at_b {k}x{m}ᵀ·{k}x{n}"));
    }
}

#[test]
fn matmul_a_bt_matches_naive_reference() {
    let mut lcg = Lcg(0xAB7);
    for (m, n, k) in shapes(&mut lcg) {
        let a = lcg.tensor(&[m, k]);
        let b = lcg.tensor(&[n, k]); // stored transposed
        let got = ops::matmul_a_bt(&a, &b).unwrap();
        let want = gemm::naive_f32(
            m,
            n,
            k,
            a.data(),
            Layout::RowMajor,
            b.data(),
            Layout::Transposed,
        );
        assert_close(got.data(), &want, &format!("matmul_a_bt {m}x{k}·{n}x{k}ᵀ"));
    }
}

#[test]
fn conv2d_matches_naive_reference() {
    let mut lcg = Lcg(0xC0);
    // Fixed grid of configs crossing tile edges in co (rows) and oh*ow
    // (cols), plus random draws; empty batch included.
    let mut cases = vec![
        (2usize, 3usize, 9usize, 17usize, 3usize, 2usize, 1usize), // co=17 ragged MR, ohow=25 ragged NR
        (1, 1, 5, 1, 1, 1, 0),                                     // 1×1 kernel
        (1, 4, 8, 8, 5, 1, 2),                                     // big kernel, heavy pad
        (0, 2, 6, 3, 3, 1, 1),                                     // empty batch
        (2, 2, 7, 4, 3, 3, 0),                                     // stride > kernel step
    ];
    for _ in 0..4 {
        cases.push((
            1 + lcg.below(2),
            1 + lcg.below(4),
            5 + lcg.below(6),
            1 + lcg.below(20),
            1 + 2 * lcg.below(2), // k ∈ {1, 3}
            1 + lcg.below(2),
            lcg.below(2),
        ));
    }
    for (n, c, side, co, k, s, p) in cases {
        if side + 2 * p < k {
            continue;
        }
        let cfg = Conv2dCfg::square(k, s, p);
        let x = lcg.tensor(&[n, c, side, side]);
        let w = lcg.tensor(&[co, c, k, k]);
        let b = lcg.tensor(&[co]);
        let fast = conv2d(&x, &w, &b, cfg).unwrap();
        let slow = conv2d_naive(&x, &w, &b, cfg).unwrap();
        assert_eq!(fast.dims(), slow.dims());
        assert_close(
            fast.data(),
            slow.data(),
            &format!("conv2d n{n} c{c} s{side} co{co} k{k} st{s} p{p}"),
        );
    }
}

#[test]
fn i8_gemm_matches_naive_i32_accumulate_exactly() {
    let mut lcg = Lcg(0x18);
    let mut cases = vec![
        (1usize, 1usize, 1usize),
        (1, 64, 9),     // depthwise shape
        (24, 256, 108), // engine conv shape
        (4, 2, 120),    // dense shape (features × batch)
        (5, 9, 257),    // past every tile edge
        (0, 4, 4),
        (4, 0, 4),
        (4, 4, 0),
    ];
    for _ in 0..6 {
        cases.push((1 + lcg.below(40), 1 + lcg.below(300), 1 + lcg.below(200)));
    }
    for (m, n, k) in cases {
        let a: Vec<i8> = (0..m * k).map(|_| lcg.i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| lcg.i8()).collect();
        for layout in [Layout::RowMajor, Layout::Transposed] {
            for off in [0i32, -128, 127, 11] {
                let want = gemm::naive_i8_i32(m, n, k, &a, &b, layout, off);
                let mut got = vec![0i32; m * n];
                let mut sink: Vec<i8> = Vec::new();
                gemm::gemm_i8(
                    m,
                    n,
                    k,
                    &a,
                    &b,
                    layout,
                    off,
                    &mut sink,
                    &mut CaptureAcc { acc: &mut got, n },
                );
                assert_eq!(got, want, "i8 gemm m={m} n={n} k={k} {layout:?} off={off}");
            }
        }
    }
}

/// Builds a `[dim, dim]` tensor that is ~94% zeros (the pruned-weight
/// pattern that makes the sparse fast path eligible).
fn mostly_zero(lcg: &mut Lcg, dim: usize) -> Tensor {
    let mut data = vec![0.0f32; dim * dim];
    for (i, v) in data.iter_mut().enumerate() {
        if i % 16 == 0 {
            *v = lcg.unit();
        }
    }
    Tensor::from_vec(data, &[dim, dim])
}

#[test]
fn nan_and_inf_in_b_propagate_through_pruned_matmul() {
    // Regression for the old zero-skip bug: with `a` heavily pruned and a
    // NaN/Inf sitting in `b` where every `a` multiplier is zero, the skip
    // turned 0·NaN into 0 and the non-finite value vanished. The sparse
    // path now refuses non-finite `b`, so the dense core runs and IEEE
    // semantics (0·NaN = NaN, 0·Inf = NaN) propagate.
    let dim = 48; // above the sparsity-scan threshold (m·n·k > 32³)
    for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let mut lcg = Lcg(0xBAD);
        let a = mostly_zero(&mut lcg, dim);
        let mut b = lcg.tensor(&[dim, dim]);
        // Column 5, a k-row where a is zero for every i (k=1: 1 % 16 != 0).
        b.data_mut()[dim + 5] = bad;
        let out = ops::matmul(&a, &b).unwrap();
        for i in 0..dim {
            assert!(
                out.data()[i * dim + 5].is_nan(),
                "matmul: {bad} in b was swallowed at row {i}"
            );
        }
        let out = ops::matmul_at_b(&a.transpose(), &b).unwrap();
        for i in 0..dim {
            assert!(
                out.data()[i * dim + 5].is_nan(),
                "matmul_at_b: {bad} in b was swallowed at row {i}"
            );
        }
    }
}

#[test]
fn nan_in_a_propagates_through_pruned_matmul() {
    // The pruned path itself must also propagate: NaN is not `== 0.0`, so
    // it is never skipped, and the finite-b guard keeps the path eligible.
    let dim = 48;
    let mut lcg = Lcg(0xF00D);
    let mut a = mostly_zero(&mut lcg, dim);
    a.data_mut()[3 * dim + 7] = f32::NAN; // row 3, k = 7
    let b = lcg.tensor(&[dim, dim]);
    let out = ops::matmul(&a, &b).unwrap();
    for j in 0..dim {
        assert!(
            out.data()[3 * dim + j].is_nan(),
            "matmul: NaN in a was swallowed at column {j}"
        );
    }
    assert!(
        out.data()[..3 * dim].iter().all(|v| v.is_finite()),
        "NaN leaked into unrelated rows"
    );
}

#[test]
fn dense_forward_matches_unfused_reference() {
    let mut lcg = Lcg(0xDE);
    for (batch, features, inputs) in [(1usize, 1usize, 1usize), (3, 13, 108), (9, 40, 530)] {
        let x = lcg.tensor(&[batch, inputs]);
        let w = lcg.tensor(&[features, inputs]);
        let bias = lcg.tensor(&[features]);
        let fused = ops::dense_forward(&x, &w, &bias).unwrap();
        let unfused = ops::matmul_a_bt(&x, &w).unwrap().add(&bias);
        assert_eq!(
            fused.data(),
            unfused.data(),
            "dense_forward b{batch} f{features} i{inputs}"
        );
    }
}

/// Shapes big enough to cross the intra-op threading threshold (m·n·k ≥ 2²¹
/// multiply-adds), chosen to land below/at/past every `NC`/`MC` tile edge so
/// the fan-out sees exact, ragged, and single-strip boundaries:
///
/// * jc fan-out (n > 512): n = 1100 (2 full + 1 ragged), 1024 (exact 2),
///   1025 (2 full + 1-column block), with m both below and above MC;
/// * ic fan-out (single jc block, m > 64): m = 200 (3 full + ragged 8),
///   128 (exact 2), 513 (8 full + 1-row block).
fn threaded_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (48, 1100, 64),
        (8, 1024, 300),
        (5, 1025, 520),
        (96, 1500, 33),
        (200, 96, 128),
        (128, 128, 200),
        (513, 40, 150),
    ]
}

#[test]
fn threaded_f32_is_byte_identical_across_job_counts() {
    // The intra-op fan-out obeys the DESIGN.md §7 fixed-order-reduction
    // rule: tile boundaries are the NC/MC constants (never jobs()-derived),
    // each C tile is written by one worker running the full ascending-k
    // fold, and the merge + epilogue sweep run on the calling thread in
    // ascending tile order — so output is byte-identical at any DIVA_JOBS.
    let mut lcg = Lcg(0x7A11);
    for (m, n, k) in threaded_shapes() {
        let a = lcg.tensor(&[m, k]);
        let b = lcg.tensor(&[k, n]);
        let bias = lcg.tensor(&[n]);
        let run = |jobs: usize| {
            with_jobs(jobs, || {
                let mut out = vec![0.0f32; m * n];
                gemm::gemm_f32(
                    m,
                    n,
                    k,
                    a.data(),
                    Layout::RowMajor,
                    b.data(),
                    Layout::RowMajor,
                    &mut out,
                    &mut gemm::BiasCols(bias.data()),
                );
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            })
        };
        let serial = run(1);
        for jobs in [2, 4] {
            assert_eq!(
                serial,
                run(jobs),
                "f32 {m}x{n}x{k}: jobs={jobs} diverged from serial"
            );
        }
    }
}

#[test]
fn threaded_i8_is_byte_identical_across_job_counts() {
    let mut lcg = Lcg(0x7A12);
    for (m, n, k) in [
        (130usize, 600usize, 40usize),
        (300, 64, 128),
        (40, 1100, 60),
    ] {
        let a: Vec<i8> = (0..m * k).map(|_| lcg.i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| lcg.i8()).collect();
        let run = |jobs: usize| {
            with_jobs(jobs, || {
                let mut acc = vec![0i32; m * n];
                let mut sink: Vec<i8> = Vec::new();
                gemm::gemm_i8(
                    m,
                    n,
                    k,
                    &a,
                    &b,
                    Layout::RowMajor,
                    -7,
                    &mut sink,
                    &mut CaptureAcc { acc: &mut acc, n },
                );
                acc
            })
        };
        let serial = run(1);
        for jobs in [2, 4] {
            assert_eq!(
                serial,
                run(jobs),
                "i8 {m}x{n}x{k}: jobs={jobs} diverged from serial"
            );
        }
    }
}

#[test]
fn threaded_path_still_matches_naive_references() {
    // Bit-identity across job counts is necessary but not sufficient — the
    // fan-out must also still compute the right product.
    let mut lcg = Lcg(0x7A13);
    let (m, n, k) = (48, 1100, 64);
    let a = lcg.tensor(&[m, k]);
    let b = lcg.tensor(&[k, n]);
    with_jobs(4, || {
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_f32(
            m,
            n,
            k,
            a.data(),
            Layout::RowMajor,
            b.data(),
            Layout::RowMajor,
            &mut out,
            &mut NoEpilogue,
        );
        let want = gemm::naive_f32(
            m,
            n,
            k,
            a.data(),
            Layout::RowMajor,
            b.data(),
            Layout::RowMajor,
        );
        assert_close(&out, &want, "threaded f32 vs naive");
    });
    let (m, n, k) = (130, 600, 40);
    let a: Vec<i8> = (0..m * k).map(|_| lcg.i8()).collect();
    let b: Vec<i8> = (0..k * n).map(|_| lcg.i8()).collect();
    with_jobs(4, || {
        let mut acc = vec![0i32; m * n];
        let mut sink: Vec<i8> = Vec::new();
        gemm::gemm_i8(
            m,
            n,
            k,
            &a,
            &b,
            Layout::RowMajor,
            5,
            &mut sink,
            &mut CaptureAcc { acc: &mut acc, n },
        );
        assert_eq!(
            acc,
            gemm::naive_i8_i32(m, n, k, &a, &b, Layout::RowMajor, 5)
        );
    });
}

#[test]
fn cached_pack_is_bit_identical_to_fresh_pack_f32() {
    // Cold miss, then hot hit: both calls must produce the same bytes as
    // the never-packed path, and the second fetch must come from cache.
    let mut lcg = Lcg(0xCAC4E);
    let (batch, features, inputs) = (9, 40, 531); // unique shape → unique key
    let x = lcg.tensor(&[batch, inputs]);
    let w = lcg.tensor(&[features, inputs]);
    let bias = lcg.tensor(&[features]);
    let fresh = {
        let mut out = vec![0.0f32; batch * features];
        gemm::gemm_f32(
            batch,
            features,
            inputs,
            x.data(),
            Layout::RowMajor,
            w.data(),
            Layout::Transposed,
            &mut out,
            &mut gemm::BiasCols(bias.data()),
        );
        out
    };
    let before = packcache::stats();
    let cold = ops::dense_forward(&x, &w, &bias).unwrap();
    let hot = ops::dense_forward(&x, &w, &bias).unwrap();
    let after = packcache::stats();
    assert_eq!(
        fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        cold.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "cold cached pack diverged from fresh pack"
    );
    assert_eq!(
        cold.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        hot.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "hot cached pack diverged from cold"
    );
    assert!(
        after.hits > before.hits,
        "second dense_forward on identical weights did not hit the cache"
    );
}

#[test]
fn cached_pack_is_bit_identical_to_fresh_pack_i8() {
    let mut lcg = Lcg(0xCAC4F);
    let (m, n, k) = (26, 250, 111); // blocked path, unique shape → unique key
    let a: Vec<i8> = (0..m * k).map(|_| lcg.i8()).collect();
    let b: Vec<i8> = (0..k * n).map(|_| lcg.i8()).collect();
    let run = |pre: Option<&gemm::PackedI16>| {
        let mut acc = vec![0i32; m * n];
        let mut sink: Vec<i8> = Vec::new();
        gemm::gemm_i8_pre(
            m,
            n,
            k,
            &a,
            pre.map(|p| p.as_a()),
            &b,
            Layout::RowMajor,
            3,
            &mut sink,
            &mut CaptureAcc { acc: &mut acc, n },
        );
        acc
    };
    let fresh = run(None);
    let before = packcache::stats();
    let cold_pack = packcache::pack_i16_a(&a, m, k);
    let hot_pack = packcache::pack_i16_a(&a, m, k);
    let after = packcache::stats();
    assert_eq!(fresh, run(Some(&cold_pack)), "cold cached i8 pack diverged");
    assert_eq!(fresh, run(Some(&hot_pack)), "hot cached i8 pack diverged");
    assert!(
        after.hits > before.hits,
        "second i8 pack fetch on identical weights did not hit the cache"
    );
}

#[test]
fn blocked_f32_accumulation_order_is_thread_invariant() {
    // Determinism contract (DESIGN.md §9): accumulation order is fixed by
    // the tiling, so repeated runs — and runs under any DIVA_JOBS, since
    // the core is single-threaded per call — are bitwise identical.
    let mut lcg = Lcg(0x5EED);
    let (m, n, k) = (37, 41, 530);
    let a = lcg.tensor(&[m, k]);
    let b = lcg.tensor(&[k, n]);
    let mut first = vec![0.0f32; m * n];
    gemm::gemm_f32(
        m,
        n,
        k,
        a.data(),
        Layout::RowMajor,
        b.data(),
        Layout::RowMajor,
        &mut first,
        &mut NoEpilogue,
    );
    for _ in 0..3 {
        let mut again = vec![0.0f32; m * n];
        gemm::gemm_f32(
            m,
            n,
            k,
            a.data(),
            Layout::RowMajor,
            b.data(),
            Layout::RowMajor,
            &mut again,
            &mut NoEpilogue,
        );
        assert_eq!(
            first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            again.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
