//! Allocation-count regression for the serial GEMM hot path.
//!
//! The attack loop is thousands of GEMM calls on repeating shapes; the
//! packing workspace is thread-local and grown monotonically (never shrunk),
//! and hot pack-cache fetches clone an `Arc`, so after one warmup call per
//! shape the steady state must perform **zero** heap allocations inside the
//! core — on the blocked path (fresh-pack and pre-packed), the small-shape
//! fallback, and the i8 sibling. A counting `#[global_allocator]` enforces
//! it; any per-call `Vec` that sneaks back into the core fails this test.
//!
//! The counter is a const-initialized thread-local `Cell` (no `Drop`, so
//! registering it never allocates from inside the allocator), and this
//! binary holds exactly one test so no parallel test thread can confuse the
//! count. The threaded fan-out is excluded by pinning jobs to 1: workers
//! allocate their output stripes per call by design (fresh scoped threads
//! cannot reuse thread-locals), which is amortized by the `PAR_MIN_MNK`
//! work floor.

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::cell::Cell;

use diva_tensor::gemm::{self, CaptureAcc, Layout, NoEpilogue};
use diva_tensor::packcache;

struct CountingAlloc;

thread_local! {
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        ALLOC_CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.with(|c| c.get());
    f();
    ALLOC_CALLS.with(|c| c.get()) - before
}

#[test]
fn steady_state_gemm_calls_do_not_allocate() {
    diva_par::set_jobs(1); // serial hot path; workers may allocate stripes

    // Blocked f32 shape (m·n·k > 32³) and a small-path shape.
    let (m, n, k) = (40, 96, 300);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.25 - 1.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.5 - 1.5).collect();
    let mut out = vec![0.0f32; m * n];
    let pre = packcache::pack_f32_b(&b, Layout::RowMajor, k, n);

    let ai: Vec<i8> = (0..m * k).map(|i| (i % 251) as i8).collect();
    let bi: Vec<i8> = (0..k * n).map(|i| (i % 119) as i8).collect();
    let mut acc = vec![0i32; m * n];
    let mut sink: Vec<i8> = Vec::new();
    let pre_i = packcache::pack_i16_a(&ai, m, k);

    let (sm, sn, sk) = (8, 16, 24); // under the small-path cutoff
    let mut small_out = vec![0.0f32; sm * sn];
    let mut small_acc = vec![0i32; sm * sn];

    let mut run_all = |fresh_pack: bool| {
        gemm::gemm_f32_pre(
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            (!fresh_pack).then_some(&*pre),
            &mut out,
            &mut NoEpilogue,
        );
        gemm::gemm_i8_pre(
            m,
            n,
            k,
            &ai,
            (!fresh_pack).then(|| pre_i.as_a()),
            &bi,
            Layout::RowMajor,
            -7,
            &mut sink,
            &mut CaptureAcc { acc: &mut acc, n },
        );
        gemm::gemm_f32(
            sm,
            sn,
            sk,
            &a[..sm * sk],
            Layout::RowMajor,
            &b[..sk * sn],
            Layout::RowMajor,
            &mut small_out,
            &mut NoEpilogue,
        );
        gemm::gemm_i8(
            sm,
            sn,
            sk,
            &ai[..sm * sk],
            &bi[..sk * sn],
            Layout::RowMajor,
            3,
            &mut sink,
            &mut CaptureAcc {
                acc: &mut small_acc,
                n: sn,
            },
        );
        // Hot cache fetch: identical bytes, must be a no-alloc Arc clone.
        let again = packcache::pack_f32_b(&b, Layout::RowMajor, k, n);
        assert_eq!(again.footprint(), pre.footprint());
    };

    // Warmup grows the thread-local workspace to these shapes once.
    run_all(true);
    run_all(false);

    for fresh_pack in [true, false] {
        let allocs = allocs_during(|| {
            for _ in 0..5 {
                run_all(fresh_pack);
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state GEMM calls allocated (fresh_pack={fresh_pack}); \
             a per-call buffer has crept back into the hot path"
        );
    }

    diva_par::set_jobs(0);
}
