//! Property-based tests for the tensor substrate.
//!
//! These exercise algebraic laws that the rest of the stack silently assumes:
//! broadcasting commutativity, matmul linearity, im2col/col2im adjointness,
//! and conv fast-path/naive agreement on arbitrary shapes.

use diva_tensor::conv::{col2im, conv2d, conv2d_naive, im2col, Conv2dCfg};
use diva_tensor::ops::{matmul, softmax_rows};
use diva_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    proptest::collection::vec(-10.0f32..10.0, n).prop_map(move |data| Tensor::from_vec(data, &dims))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in tensor_strategy(vec![3, 4]), b in tensor_strategy(vec![3, 4])) {
        prop_assert!(a.add(&b).allclose(&b.add(&a), 1e-6));
    }

    #[test]
    fn broadcast_add_row_matches_manual(
        m in tensor_strategy(vec![3, 4]),
        row in tensor_strategy(vec![4]),
    ) {
        let broadcasted = m.add(&row);
        for i in 0..3 {
            for j in 0..4 {
                let want = m.at(&[i, j]).unwrap() + row.at(&[j]).unwrap();
                prop_assert!((broadcasted.at(&[i, j]).unwrap() - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        a in tensor_strategy(vec![2, 3]),
        b in tensor_strategy(vec![3, 4]),
        c in tensor_strategy(vec![3, 4]),
    ) {
        let lhs = matmul(&a, &b.add(&c)).unwrap();
        let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap());
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn matmul_identity(a in tensor_strategy(vec![4, 4])) {
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 { eye.data_mut()[i * 4 + i] = 1.0; }
        prop_assert!(matmul(&a, &eye).unwrap().allclose(&a, 1e-6));
        prop_assert!(matmul(&eye, &a).unwrap().allclose(&a, 1e-6));
    }

    #[test]
    fn softmax_rows_are_distributions(logits in tensor_strategy(vec![5, 7])) {
        let p = softmax_rows(&logits);
        for i in 0..5 {
            let row = p.row(i);
            prop_assert!(row.min() >= 0.0);
            prop_assert!((row.sum() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn conv_fast_matches_naive(
        x in tensor_strategy(vec![1, 2, 6, 6]),
        w in tensor_strategy(vec![3, 2, 3, 3]),
        b in tensor_strategy(vec![3]),
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let cfg = Conv2dCfg::square(3, stride, pad);
        let fast = conv2d(&x, &w, &b, cfg).unwrap();
        let slow = conv2d_naive(&x, &w, &b, cfg).unwrap();
        prop_assert!(fast.allclose(&slow, 1e-3));
    }

    #[test]
    fn im2col_col2im_adjoint(
        x in tensor_strategy(vec![1, 2, 5, 5]),
        stride in 1usize..3,
    ) {
        let cfg = Conv2dCfg::square(3, stride, 1);
        let cols = im2col(&x, cfg);
        // y = all-ones cotangent
        let y = Tensor::ones(cols.dims());
        let lhs = cols.sum();
        let back = col2im(&y, 1, 2, 5, 5, cfg);
        let rhs = x.mul(&back).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn clamp_idempotent(a in tensor_strategy(vec![10])) {
        let c1 = a.clamp(-1.0, 1.0);
        let c2 = c1.clamp(-1.0, 1.0);
        prop_assert!(c1.allclose(&c2, 0.0));
        prop_assert!(c1.min() >= -1.0 && c1.max() <= 1.0);
    }

    #[test]
    fn signum_times_abs_recovers(a in tensor_strategy(vec![16])) {
        let rebuilt = a.signum().mul(&a.abs());
        prop_assert!(rebuilt.allclose(&a, 1e-6));
    }

    #[test]
    fn topk_sorted_descending(a in tensor_strategy(vec![20]), k in 1usize..20) {
        let idx = a.topk(k);
        prop_assert_eq!(idx.len(), k);
        for pair in idx.windows(2) {
            prop_assert!(a.data()[pair[0]] >= a.data()[pair[1]]);
        }
        // topk(1) agrees with argmax
        prop_assert_eq!(a.topk(1)[0], a.argmax().unwrap());
    }

    #[test]
    fn stack_then_index_batch_round_trips(
        a in tensor_strategy(vec![2, 3]),
        b in tensor_strategy(vec![2, 3]),
    ) {
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        prop_assert!(s.index_batch(0).allclose(&a, 0.0));
        prop_assert!(s.index_batch(1).allclose(&b, 0.0));
    }
}
