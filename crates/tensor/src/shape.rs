//! Shape bookkeeping: dimension lists, strides, and broadcasting rules.

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension sizes.
///
/// Shapes follow NumPy conventions: row-major (C order) layout, and
/// right-aligned broadcasting where size-1 dimensions stretch.
///
/// ```
/// use diva_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The scalar shape `[]` (one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when the shape holds no elements (some dimension is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for (stride, &dim) in strides.iter_mut().zip(self.0.iter()).rev() {
            *stride = acc;
            acc *= dim;
        }
        strides
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfRange`] if `index` has the wrong rank
    /// or any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.0.len() || index.iter().zip(&self.0).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfRange {
                index: index.to_vec(),
                shape: self.0.clone(),
            });
        }
        Ok(index.iter().zip(self.strides()).map(|(&i, s)| i * s).sum())
    }

    /// Broadcasts two shapes together under NumPy rules.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when a non-1 dimension pair
    /// disagrees.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape, TensorError> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0; rank];
        for (i, d) in dims.iter_mut().enumerate() {
            let a = dim_right_aligned(&self.0, rank, i);
            let b = dim_right_aligned(&other.0, rank, i);
            *d = match (a, b) {
                (x, y) if x == y => x,
                (1, y) => y,
                (x, 1) => x,
                _ => {
                    return Err(TensorError::ShapeMismatch {
                        op: "broadcast",
                        lhs: self.0.clone(),
                        rhs: other.0.clone(),
                    })
                }
            };
        }
        Ok(Shape(dims))
    }
}

/// Dimension at result-position `i` (left-indexed in a rank-`rank` result)
/// when `dims` is right-aligned against the result; missing dims are 1.
fn dim_right_aligned(dims: &[usize], rank: usize, i: usize) -> usize {
    let pad = rank - dims.len();
    if i < pad {
        1
    } else {
        dims[i - pad]
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offsets() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new(&[4, 1, 3]);
        let b = Shape::new(&[2, 3]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new(&[4, 2, 3]));
        let c = Shape::new(&[5]);
        assert!(a.broadcast(&c).is_err());
        assert_eq!(
            Shape::scalar().broadcast(&a).unwrap(),
            Shape::new(&[4, 1, 3])
        );
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Shape::new(&[2, 0, 3]).len(), 0);
        assert!(Shape::new(&[2, 0, 3]).is_empty());
        assert_eq!(Shape::scalar().len(), 1);
    }
}
