//! Content-addressed cache of pre-packed GEMM weight panels.
//!
//! Attacks and serving run thousands of forward passes against *fixed*
//! weights, so the weight operand's pack step (see [`crate::gemm`]) is pure
//! amortizable overhead. This module keys a [`PackedF32`] / [`PackedI16`]
//! artifact by an fnv1a64 fingerprint over the weight **bytes + shape +
//! layout + operand role**, so:
//!
//! * a hot layer packs once and every later call hits;
//! * *any* mutation — a training step, a `diva-fault` bitflip, an engine
//!   weight reload — changes the bytes, changes the key, and misses
//!   cleanly. There is no explicit invalidation API to forget to call;
//!   stale panels are unreachable by construction and age out via LRU.
//!
//! The cache is process-global behind a mutex, but packing happens
//! *outside* the lock: two threads racing on a cold layer both pack
//! (identical artifacts — packing is deterministic) and the last insert
//! wins. Entries are `Arc`ed out, so eviction never invalidates a borrow
//! in flight.
//!
//! Deliberately **not** instrumented with `diva-trace` counters: engine
//! batch chunking varies the number of GEMM calls per job count, so
//! hit/miss totals would differ across `DIVA_JOBS` and break the
//! metrics-equality half of the determinism harness. Stats are private
//! atomics, exposed via [`stats`] for tests and benches.
//!
//! Environment knobs:
//!
//! * `DIVA_PACK_CACHE=0` disables the cache (every lookup packs fresh);
//! * `DIVA_PACK_CACHE_MB` caps the resident footprint (default 64 MiB);
//!   least-recently-used artifacts are evicted past the cap.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::gemm::{Layout, PackedF32, PackedI16};

/// Default budget when `DIVA_PACK_CACHE_MB` is unset.
const DEFAULT_BUDGET_MB: usize = 64;

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// fnv1a64 folded 8 bytes per multiply (local to keep `diva-tensor` at the
/// bottom of the crate graph). The word-wise fold matters: the fingerprint
/// runs on *every* GEMM call, and a byte-at-a-time FNV is a serial multiply
/// chain per byte — slow enough to rival the pack cost it amortizes.
fn fnv1a64(mut h: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Role/type tag folded into the key so identical bytes packed differently
/// can never collide.
#[derive(Clone, Copy)]
enum Kind {
    F32A = 0,
    F32B = 1,
    I16A = 2,
    I16Dw = 3,
}

fn key_f32(kind: Kind, layout: Layout, d0: usize, d1: usize, data: &[f32]) -> u64 {
    let mut h = fnv1a64(FNV_SEED, &[kind as u8, layout as u8]);
    h = fnv1a64(h, &(d0 as u64).to_le_bytes());
    h = fnv1a64(h, &(d1 as u64).to_le_bytes());
    // f32 has no padding bits, so its raw bytes are a faithful identity
    // (NaN payloads and -0.0 vs 0.0 included — bitwise, like the panels).
    let bytes: &[u8] =
        unsafe { std::slice::from_raw_parts(data.as_ptr().cast(), std::mem::size_of_val(data)) };
    fnv1a64(h, bytes)
}

fn key_i8(kind: Kind, d0: usize, d1: usize, data: &[i8]) -> u64 {
    let mut h = fnv1a64(FNV_SEED, &[kind as u8]);
    h = fnv1a64(h, &(d0 as u64).to_le_bytes());
    h = fnv1a64(h, &(d1 as u64).to_le_bytes());
    // i8 slices reinterpret losslessly as u8 for hashing.
    let bytes: &[u8] = unsafe { std::slice::from_raw_parts(data.as_ptr().cast(), data.len()) };
    fnv1a64(h, bytes)
}

enum Packed {
    F32(Arc<PackedF32>),
    I16(Arc<PackedI16>),
}

struct Entry {
    packed: Packed,
    bytes: usize,
    tick: u64,
}

#[derive(Default)]
struct Cache {
    map: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
}

struct Shared {
    cache: Mutex<Cache>,
    budget: usize,
    enabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let enabled = !matches!(std::env::var("DIVA_PACK_CACHE").as_deref(), Ok("0"));
        let budget_mb = std::env::var("DIVA_PACK_CACHE_MB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_BUDGET_MB);
        Shared {
            cache: Mutex::new(Cache::default()),
            budget: budget_mb.saturating_mul(1 << 20),
            enabled,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    })
}

/// Point-in-time cache statistics (private atomics, **not** trace counters —
/// see the module docs for why).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a resident artifact.
    pub hits: u64,
    /// Lookups that packed fresh (cold, evicted, or cache disabled).
    pub misses: u64,
    /// Artifacts dropped to stay under the byte budget.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: usize,
    /// Resident footprint in bytes.
    pub bytes: usize,
}

/// Snapshot the cache counters.
pub fn stats() -> CacheStats {
    let s = shared();
    let c = s.cache.lock().unwrap();
    CacheStats {
        hits: s.hits.load(Ordering::Relaxed),
        misses: s.misses.load(Ordering::Relaxed),
        evictions: s.evictions.load(Ordering::Relaxed),
        entries: c.map.len(),
        bytes: c.bytes,
    }
}

/// Drop every resident artifact (counters keep accumulating). Used by the
/// cold-cache microbench and tests; in production entries age out via LRU.
pub fn clear() {
    let s = shared();
    let mut c = s.cache.lock().unwrap();
    c.map.clear();
    c.bytes = 0;
}

fn lookup(s: &'static Shared, key: u64) -> Option<Packed> {
    let mut c = s.cache.lock().unwrap();
    c.tick += 1;
    let tick = c.tick;
    match c.map.get_mut(&key) {
        Some(e) => {
            e.tick = tick;
            s.hits.fetch_add(1, Ordering::Relaxed);
            Some(match &e.packed {
                Packed::F32(p) => Packed::F32(Arc::clone(p)),
                Packed::I16(p) => Packed::I16(Arc::clone(p)),
            })
        }
        None => {
            s.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

fn insert(s: &'static Shared, key: u64, packed: Packed, bytes: usize) {
    let mut c = s.cache.lock().unwrap();
    c.tick += 1;
    let tick = c.tick;
    if let Some(old) = c.map.insert(
        key,
        Entry {
            packed,
            bytes,
            tick,
        },
    ) {
        c.bytes -= old.bytes;
    }
    c.bytes += bytes;
    // LRU eviction keeps training loops (a new key per step) bounded.
    while c.bytes > s.budget && c.map.len() > 1 {
        let (&victim, _) = c
            .map
            .iter()
            .filter(|&(k, _)| *k != key)
            .min_by_key(|&(_, e)| e.tick)
            .expect("len > 1 guarantees a non-self victim");
        let e = c.map.remove(&victim).unwrap();
        c.bytes -= e.bytes;
        s.evictions.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fetch-or-pack a full `f32` `A` operand (`[m, k]` mathematical shape).
pub fn pack_f32_a(a: &[f32], layout: Layout, m: usize, k: usize) -> Arc<PackedF32> {
    let s = shared();
    if !s.enabled {
        s.misses.fetch_add(1, Ordering::Relaxed);
        return Arc::new(PackedF32::pack_a(a, layout, m, k));
    }
    let key = key_f32(Kind::F32A, layout, m, k, &a[..m * k]);
    if let Some(Packed::F32(p)) = lookup(s, key) {
        return p;
    }
    let p = Arc::new(PackedF32::pack_a(a, layout, m, k));
    insert(s, key, Packed::F32(Arc::clone(&p)), p.footprint());
    p
}

/// Fetch-or-pack a full `f32` `B` operand (`[k, n]` mathematical shape).
pub fn pack_f32_b(b: &[f32], layout: Layout, k: usize, n: usize) -> Arc<PackedF32> {
    let s = shared();
    if !s.enabled {
        s.misses.fetch_add(1, Ordering::Relaxed);
        return Arc::new(PackedF32::pack_b(b, layout, k, n));
    }
    let key = key_f32(Kind::F32B, layout, k, n, &b[..k * n]);
    if let Some(Packed::F32(p)) = lookup(s, key) {
        return p;
    }
    let p = Arc::new(PackedF32::pack_b(b, layout, k, n));
    insert(s, key, Packed::F32(Arc::clone(&p)), p.footprint());
    p
}

/// Fetch-or-pack full `[m, k]` row-major `i8` weights, widened to `i16`.
pub fn pack_i16_a(w: &[i8], m: usize, k: usize) -> Arc<PackedI16> {
    let s = shared();
    if !s.enabled {
        s.misses.fetch_add(1, Ordering::Relaxed);
        return Arc::new(PackedI16::pack_a(w, m, k));
    }
    let key = key_i8(Kind::I16A, m, k, &w[..m * k]);
    if let Some(Packed::I16(p)) = lookup(s, key) {
        return p;
    }
    let p = Arc::new(PackedI16::pack_a(w, m, k));
    insert(s, key, Packed::I16(Arc::clone(&p)), p.footprint());
    p
}

/// Fetch-or-pack depthwise `i8` weights (`[c, k]`, one `1×k` GEMM per
/// channel), widened to `i16`.
pub fn pack_i16_dw(w: &[i8], c: usize, k: usize) -> Arc<PackedI16> {
    let s = shared();
    if !s.enabled {
        s.misses.fetch_add(1, Ordering::Relaxed);
        return Arc::new(PackedI16::pack_dw(w, c, k));
    }
    let key = key_i8(Kind::I16Dw, c, k, &w[..c * k]);
    if let Some(Packed::I16(p)) = lookup(s, key) {
        return p;
    }
    let p = Arc::new(PackedI16::pack_dw(w, c, k));
    insert(s, key, Packed::I16(Arc::clone(&p)), p.footprint());
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(f: impl FnOnce()) -> (u64, u64, u64) {
        let a = stats();
        f();
        let b = stats();
        (
            b.hits - a.hits,
            b.misses - a.misses,
            b.evictions - a.evictions,
        )
    }

    #[test]
    fn identical_bytes_hit_and_mutation_misses() {
        // Shapes unique to this test so parallel tests can't interfere.
        let mut w: Vec<f32> = (0..61 * 47).map(|i| i as f32 * 0.25).collect();
        let (_, m0, _) = delta(|| {
            pack_f32_b(&w, Layout::Transposed, 61, 47);
        });
        assert_eq!(m0, 1, "cold lookup must miss");
        let (h1, m1, _) = delta(|| {
            pack_f32_b(&w, Layout::Transposed, 61, 47);
        });
        assert_eq!((h1, m1), (1, 0), "identical bytes must hit");
        // A single bit of mutation (what a diva-fault bitflip does) re-keys.
        w[100] = f32::from_bits(w[100].to_bits() ^ 1);
        let (h2, m2, _) = delta(|| {
            pack_f32_b(&w, Layout::Transposed, 61, 47);
        });
        assert_eq!((h2, m2), (0, 1), "mutated bytes must miss");
    }

    #[test]
    fn role_and_layout_are_part_of_the_key() {
        let w: Vec<f32> = (0..52 * 52).map(|i| (i % 17) as f32).collect();
        let (_, ma, _) = delta(|| {
            pack_f32_a(&w, Layout::RowMajor, 52, 52);
        });
        let (_, mb, _) = delta(|| {
            pack_f32_b(&w, Layout::RowMajor, 52, 52);
        });
        let (_, mt, _) = delta(|| {
            pack_f32_a(&w, Layout::Transposed, 52, 52);
        });
        assert_eq!(
            (ma, mb, mt),
            (1, 1, 1),
            "same bytes under a different role or layout must not collide"
        );
    }

    #[test]
    fn i8_variants_round_trip() {
        let w: Vec<i8> = (0..37 * 53).map(|i| (i % 251) as i8).collect();
        let (_, m0, _) = delta(|| {
            pack_i16_a(&w, 37, 53);
        });
        let (h1, _, _) = delta(|| {
            pack_i16_a(&w, 37, 53);
        });
        assert_eq!((m0, h1), (1, 1));
        let (_, md, _) = delta(|| {
            pack_i16_dw(&w, 37, 53);
        });
        assert_eq!(md, 1, "dw pack of the same bytes is a distinct key");
    }
}
