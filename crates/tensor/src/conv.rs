//! 2-D convolution kernels: im2col-based standard convolution and depthwise
//! convolution, with the backward passes the attack stack needs (gradients
//! w.r.t. weights *and* inputs).
//!
//! Layout conventions: activations are `[n, c, h, w]` (NCHW), standard conv
//! weights are `[c_out, c_in, kh, kw]`, depthwise weights are `[c, kh, kw]`
//! (channel multiplier fixed at 1, as in MobileNet-style blocks).

use crate::gemm::{self, Layout};
use crate::{ops, Result, Tensor, TensorError};

/// Hyper-parameters of a convolution: square-agnostic kernel, stride and
/// symmetric zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dCfg {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same for both axes).
    pub stride: usize,
    /// Symmetric zero padding (same for both axes).
    pub pad: usize,
}

impl Conv2dCfg {
    /// A `k`×`k` kernel with the given stride and padding.
    pub fn square(k: usize, stride: usize, pad: usize) -> Self {
        Conv2dCfg {
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// Output spatial size for an input of `h`×`w`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.kh) / self.stride + 1,
            (w + 2 * self.pad - self.kw) / self.stride + 1,
        )
    }
}

/// Unfolds input patches into a `[n*oh*ow, c*kh*kw]` matrix (im2col).
///
/// Each row is the receptive field of one output pixel, so convolution
/// becomes one big matmul against the reshaped weight matrix.
pub fn im2col(x: &Tensor, cfg: Conv2dCfg) -> Tensor {
    let (n, c, h, w) = nchw(x);
    let (oh, ow) = cfg.out_hw(h, w);
    let cols_per_row = c * cfg.kh * cfg.kw;
    let mut out = Tensor::zeros(&[n * oh * ow, cols_per_row]);
    let xd = x.data();
    let od = out.data_mut();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * cols_per_row;
                let iy0 = oy * cfg.stride;
                let ix0 = ox * cfg.stride;
                let mut col = 0;
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for ky in 0..cfg.kh {
                        let iy = iy0 + ky;
                        for kx in 0..cfg.kw {
                            let ix = ix0 + kx;
                            // Padding applied virtually: out-of-range reads are 0.
                            if iy >= cfg.pad && ix >= cfg.pad {
                                let (yy, xx) = (iy - cfg.pad, ix - cfg.pad);
                                if yy < h && xx < w {
                                    od[row + col] = xd[base + yy * w + xx];
                                }
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Folds an im2col matrix (gradient) back into an input-shaped tensor,
/// accumulating overlapping patches — the adjoint of [`im2col`].
pub fn col2im(cols: &Tensor, n: usize, c: usize, h: usize, w: usize, cfg: Conv2dCfg) -> Tensor {
    let (oh, ow) = cfg.out_hw(h, w);
    let cols_per_row = c * cfg.kh * cfg.kw;
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let cd = cols.data();
    let od = out.data_mut();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * cols_per_row;
                let iy0 = oy * cfg.stride;
                let ix0 = ox * cfg.stride;
                let mut col = 0;
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for ky in 0..cfg.kh {
                        let iy = iy0 + ky;
                        for kx in 0..cfg.kw {
                            let ix = ix0 + kx;
                            if iy >= cfg.pad && ix >= cfg.pad {
                                let (yy, xx) = (iy - cfg.pad, ix - cfg.pad);
                                if yy < h && xx < w {
                                    od[base + yy * w + xx] += cd[row + col];
                                }
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Standard 2-D convolution: `x [n,ci,h,w]` * `weight [co,ci,kh,kw]` + `bias [co]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when channel counts or ranks are
/// inconsistent.
pub fn conv2d(x: &Tensor, weight: &Tensor, bias: &Tensor, cfg: Conv2dCfg) -> Result<Tensor> {
    check_conv_shapes(x, weight, bias, cfg)?;
    let (n, c, h, w) = nchw(x);
    let co = weight.dims()[0];
    let (oh, ow) = cfg.out_hw(h, w);
    let ohow = oh * ow;
    let wk = c * cfg.kh * cfg.kw;
    let cols = im2col(x, cfg);
    // One GEMM per image: W [co, k] · cols_i^T [k, oh*ow] lands directly in
    // the image's NCHW slab (rows are channels), with the bias added by the
    // epilogue while each output row is still hot — no rearrange pass.
    let mut out = Tensor::zeros(&[n, co, oh, ow]);
    let cd = cols.data();
    let od = out.data_mut();
    let wd = weight.data();
    let bd = bias.data();
    // Weights are the A operand of every per-image GEMM — one cache fetch
    // amortizes the pack across the batch and, for hot layers, across calls.
    let pre = gemm::blocked_path(co, ohow, wk)
        .then(|| crate::packcache::pack_f32_a(wd, Layout::RowMajor, co, wk));
    for ni in 0..n {
        let bcols = &cd[ni * ohow * wk..(ni + 1) * ohow * wk]; // [oh*ow, k] = Bᵀ
        let oslice = &mut od[ni * co * ohow..(ni + 1) * co * ohow];
        gemm::gemm_f32_pre(
            co,
            ohow,
            wk,
            wd,
            Layout::RowMajor,
            bcols,
            Layout::Transposed,
            pre.as_deref(),
            oslice,
            &mut gemm::BiasRows(bd),
        );
    }
    Ok(out)
}

/// Gradients of [`conv2d`] given the upstream gradient `dy [n,co,oh,ow]`.
///
/// Returns `(dx, dweight, dbias)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent shapes.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    cfg: Conv2dCfg,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c, h, w) = nchw(x);
    let co = weight.dims()[0];
    let (oh, ow) = cfg.out_hw(h, w);
    if dy.dims() != [n, co, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: dy.dims().to_vec(),
            rhs: vec![n, co, oh, ow],
        });
    }
    // dy as [n*oh*ow, co]
    let mut dy_mat = Tensor::zeros(&[n * oh * ow, co]);
    {
        let dd = dy.data();
        let dm = dy_mat.data_mut();
        for ni in 0..n {
            for ci in 0..co {
                for oy in 0..oh {
                    for ox in 0..ow {
                        dm[((ni * oh + oy) * ow + ox) * co + ci] =
                            dd[((ni * co + ci) * oh + oy) * ow + ox];
                    }
                }
            }
        }
    }
    let cols = im2col(x, cfg);
    let wk = c * cfg.kh * cfg.kw;
    // dW = dy_mat^T x cols -> [co, k]
    let dw_mat = ops::matmul_at_b(&dy_mat, &cols)?;
    let dweight = dw_mat.reshape(&[co, c, cfg.kh, cfg.kw])?;
    // db = column sums of dy_mat
    let mut dbias = Tensor::zeros(&[co]);
    for row in 0..n * oh * ow {
        for ci in 0..co {
            dbias.data_mut()[ci] += dy_mat.data()[row * co + ci];
        }
    }
    // dcols = dy_mat x W -> [n*oh*ow, k]; dx = col2im(dcols)
    let wmat = weight.reshape(&[co, wk])?;
    let dcols = ops::matmul(&dy_mat, &wmat)?;
    let dx = col2im(&dcols, n, c, h, w, cfg);
    Ok((dx, dweight, dbias))
}

/// Depthwise 2-D convolution: each channel convolved with its own
/// `[kh, kw]` filter. `weight` is `[c, kh, kw]`, `bias` is `[c]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on rank or channel mismatches.
pub fn depthwise_conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    cfg: Conv2dCfg,
) -> Result<Tensor> {
    let (n, c, h, w) = nchw(x);
    if weight.shape().rank() != 3 || weight.dims()[0] != c || bias.dims() != [c] {
        return Err(TensorError::ShapeMismatch {
            op: "depthwise_conv2d",
            lhs: weight.dims().to_vec(),
            rhs: vec![c, cfg.kh, cfg.kw],
        });
    }
    let (oh, ow) = cfg.out_hw(h, w);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let xd = x.data();
    let wd = weight.data();
    let bd = bias.data();
    let od = out.data_mut();
    for ni in 0..n {
        for (ci, &bias_c) in bd.iter().enumerate().take(c) {
            let xbase = (ni * c + ci) * h * w;
            let wbase = ci * cfg.kh * cfg.kw;
            let obase = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias_c;
                    for ky in 0..cfg.kh {
                        let iy = oy * cfg.stride + ky;
                        if iy < cfg.pad || iy - cfg.pad >= h {
                            continue;
                        }
                        for kx in 0..cfg.kw {
                            let ix = ox * cfg.stride + kx;
                            if ix < cfg.pad || ix - cfg.pad >= w {
                                continue;
                            }
                            acc += xd[xbase + (iy - cfg.pad) * w + (ix - cfg.pad)]
                                * wd[wbase + ky * cfg.kw + kx];
                        }
                    }
                    od[obase + oy * ow + ox] = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Gradients of [`depthwise_conv2d`]; returns `(dx, dweight, dbias)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent shapes.
pub fn depthwise_conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    cfg: Conv2dCfg,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c, h, w) = nchw(x);
    let (oh, ow) = cfg.out_hw(h, w);
    if dy.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "depthwise_conv2d_backward",
            lhs: dy.dims().to_vec(),
            rhs: vec![n, c, oh, ow],
        });
    }
    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let mut dweight = Tensor::zeros(&[c, cfg.kh, cfg.kw]);
    let mut dbias = Tensor::zeros(&[c]);
    let xd = x.data();
    let wd = weight.data();
    let dyd = dy.data();
    for ni in 0..n {
        for ci in 0..c {
            let xbase = (ni * c + ci) * h * w;
            let wbase = ci * cfg.kh * cfg.kw;
            let obase = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dyd[obase + oy * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    dbias.data_mut()[ci] += g;
                    for ky in 0..cfg.kh {
                        let iy = oy * cfg.stride + ky;
                        if iy < cfg.pad || iy - cfg.pad >= h {
                            continue;
                        }
                        for kx in 0..cfg.kw {
                            let ix = ox * cfg.stride + kx;
                            if ix < cfg.pad || ix - cfg.pad >= w {
                                continue;
                            }
                            let xi = xbase + (iy - cfg.pad) * w + (ix - cfg.pad);
                            dweight.data_mut()[wbase + ky * cfg.kw + kx] += g * xd[xi];
                            dx.data_mut()[xi] += g * wd[wbase + ky * cfg.kw + kx];
                        }
                    }
                }
            }
        }
    }
    Ok((dx, dweight, dbias))
}

/// Reference (naive loop) convolution used by tests and the kernel ablation
/// bench to validate the im2col fast path.
pub fn conv2d_naive(x: &Tensor, weight: &Tensor, bias: &Tensor, cfg: Conv2dCfg) -> Result<Tensor> {
    check_conv_shapes(x, weight, bias, cfg)?;
    let (n, c, h, w) = nchw(x);
    let co = weight.dims()[0];
    let (oh, ow) = cfg.out_hw(h, w);
    let mut out = Tensor::zeros(&[n, co, oh, ow]);
    for ni in 0..n {
        for oi in 0..co {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.data()[oi];
                    for ci in 0..c {
                        for ky in 0..cfg.kh {
                            for kx in 0..cfg.kw {
                                let iy = (oy * cfg.stride + ky) as isize - cfg.pad as isize;
                                let ix = (ox * cfg.stride + kx) as isize - cfg.pad as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                    continue;
                                }
                                acc += x.at(&[ni, ci, iy as usize, ix as usize]).unwrap()
                                    * weight.at(&[oi, ci, ky, kx]).unwrap();
                            }
                        }
                    }
                    out.data_mut()[((ni * co + oi) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Ok(out)
}

fn check_conv_shapes(x: &Tensor, weight: &Tensor, bias: &Tensor, _cfg: Conv2dCfg) -> Result<()> {
    if x.shape().rank() != 4
        || weight.shape().rank() != 4
        || weight.dims()[1] != x.dims()[1]
        || bias.dims() != [weight.dims()[0]]
    {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: x.dims().to_vec(),
            rhs: weight.dims().to_vec(),
        });
    }
    Ok(())
}

fn nchw(x: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(x.shape().rank(), 4, "expected NCHW tensor");
    (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_tensor(rng: &mut StdRng, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), dims)
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: im2col is a channel-last reshuffle.
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let cols = im2col(&x, Conv2dCfg::square(1, 1, 0));
        assert_eq!(cols.dims(), &[4, 2]);
        assert_eq!(cols.at(&[0, 0]).unwrap(), 0.0); // (0,0) ch0
        assert_eq!(cols.at(&[0, 1]).unwrap(), 4.0); // (0,0) ch1
        assert_eq!(cols.at(&[3, 1]).unwrap(), 7.0);
    }

    #[test]
    fn conv_matches_naive_across_configs() {
        let mut rng = StdRng::seed_from_u64(7);
        for (k, s, p) in [(3, 1, 1), (3, 2, 1), (1, 1, 0), (5, 1, 2), (3, 2, 0)] {
            let x = rand_tensor(&mut rng, &[2, 3, 8, 8]);
            let w = rand_tensor(&mut rng, &[4, 3, k, k]);
            let b = rand_tensor(&mut rng, &[4]);
            let cfg = Conv2dCfg::square(k, s, p);
            let fast = conv2d(&x, &w, &b, cfg).unwrap();
            let slow = conv2d_naive(&x, &w, &b, cfg).unwrap();
            assert!(fast.allclose(&slow, 1e-4), "mismatch at k={k} s={s} p={p}");
        }
    }

    #[test]
    fn conv_known_values() {
        // Single-channel 3x3 input, 2x2 kernel of ones: output = patch sums.
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let b = Tensor::zeros(&[1]);
        let y = conv2d(&x, &w, &b, Conv2dCfg::square(2, 1, 0)).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = Conv2dCfg::square(3, 1, 1);
        let x = rand_tensor(&mut rng, &[1, 2, 5, 5]);
        let w = rand_tensor(&mut rng, &[3, 2, 3, 3]);
        let b = rand_tensor(&mut rng, &[3]);
        // Scalar objective: sum of outputs -> dy = ones.
        let y = conv2d(&x, &w, &b, cfg).unwrap();
        let dy = Tensor::ones(y.dims());
        let (dx, dw, db) = conv2d_backward(&x, &w, &dy, cfg).unwrap();

        let eps = 1e-3;
        // Check a handful of coordinates of each gradient.
        for &i in &[0usize, 7, 23] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = conv2d(&xp, &w, &b, cfg).unwrap().sum();
            let fm = conv2d(&xm, &w, &b, cfg).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 1e-2,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
        for &i in &[0usize, 10, 35] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fp = conv2d(&x, &wp, &b, cfg).unwrap().sum();
            let fm = conv2d(&x, &wm, &b, cfg).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - dw.data()[i]).abs() < 1e-2);
        }
        for i in 0..3 {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let fp = conv2d(&x, &w, &bp, cfg).unwrap().sum();
            let fm = conv2d(&x, &w, &bm, cfg).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - db.data()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
        // property of an adjoint pair, which backward passes rely on.
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = Conv2dCfg::square(3, 2, 1);
        let x = rand_tensor(&mut rng, &[2, 2, 6, 6]);
        let cols = im2col(&x, cfg);
        let y = rand_tensor(&mut rng, cols.dims());
        let lhs: f32 = cols.mul(&y).sum();
        let back = col2im(&y, 2, 2, 6, 6, cfg);
        let rhs: f32 = x.mul(&back).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn depthwise_matches_grouped_naive() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = rand_tensor(&mut rng, &[2, 3, 6, 6]);
        let w = rand_tensor(&mut rng, &[3, 3, 3]);
        let b = rand_tensor(&mut rng, &[3]);
        let cfg = Conv2dCfg::square(3, 1, 1);
        let y = depthwise_conv2d(&x, &w, &b, cfg).unwrap();
        // Reference: run each channel through conv2d with a 1-channel kernel.
        for ci in 0..3 {
            let xc = {
                let mut d = Vec::new();
                for ni in 0..2 {
                    let s = x.index_batch(ni);
                    d.extend_from_slice(&s.data()[ci * 36..(ci + 1) * 36]);
                }
                Tensor::from_vec(d, &[2, 1, 6, 6])
            };
            let wc = Tensor::from_vec(w.data()[ci * 9..(ci + 1) * 9].to_vec(), &[1, 1, 3, 3]);
            let bc = Tensor::from_vec(vec![b.data()[ci]], &[1]);
            let yc = conv2d(&xc, &wc, &bc, cfg).unwrap();
            for ni in 0..2 {
                for p in 0..36 {
                    let got = y.data()[((ni * 3 + ci) * 36) + p];
                    let want = yc.data()[ni * 36 + p];
                    assert!((got - want).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn depthwise_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = Conv2dCfg::square(3, 1, 1);
        let x = rand_tensor(&mut rng, &[1, 2, 4, 4]);
        let w = rand_tensor(&mut rng, &[2, 3, 3]);
        let b = rand_tensor(&mut rng, &[2]);
        let y = depthwise_conv2d(&x, &w, &b, cfg).unwrap();
        let dy = Tensor::ones(y.dims());
        let (dx, dw, db) = depthwise_conv2d_backward(&x, &w, &dy, cfg).unwrap();
        let eps = 1e-3;
        for &i in &[0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (depthwise_conv2d(&xp, &w, &b, cfg).unwrap().sum()
                - depthwise_conv2d(&xm, &w, &b, cfg).unwrap().sum())
                / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-2);
        }
        for &i in &[0usize, 8, 17] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (depthwise_conv2d(&x, &wp, &b, cfg).unwrap().sum()
                - depthwise_conv2d(&x, &wm, &b, cfg).unwrap().sum())
                / (2.0 * eps);
            assert!((num - dw.data()[i]).abs() < 1e-2);
        }
        for i in 0..2 {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let num = (depthwise_conv2d(&x, &w, &bp, cfg).unwrap().sum()
                - depthwise_conv2d(&x, &w, &bm, cfg).unwrap().sum())
                / (2.0 * eps);
            assert!((num - db.data()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn bad_shapes_error() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 4, 3, 3]); // wrong c_in
        let b = Tensor::zeros(&[2]);
        assert!(conv2d(&x, &w, &b, Conv2dCfg::square(3, 1, 1)).is_err());
        let w = Tensor::zeros(&[2, 3, 3, 3]);
        let bad_b = Tensor::zeros(&[3]);
        assert!(conv2d(&x, &w, &bad_b, Conv2dCfg::square(3, 1, 1)).is_err());
    }
}
