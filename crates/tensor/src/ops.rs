//! Linear-algebra kernels: matrix multiplication and friends.
//!
//! The three matmul variants are thin shape-checking fronts over the
//! cache-blocked core in [`crate::gemm`] — transposed operands are handled
//! in the pack step, so all of them share one micro-kernel. `matmul` and
//! `matmul_at_b` keep a pruned-weight fast path (skip zero multipliers)
//! that dispatches only when the left operand is mostly zeros *and* the
//! right operand is entirely finite; the finite guard is what keeps the
//! skip from laundering `0·NaN`/`0·Inf` into `0` and hiding non-finite
//! activations from the divergence guards.

use crate::gemm::{self, Layout};
use crate::{Result, Tensor, TensorError};

/// Below this many multiply-adds the sparsity scan costs more than the
/// multiply; small products always take the dense blocked core.
const SPARSE_MIN_MNK: usize = 32 * 32 * 32;

/// The pruned fast path needs at least this fraction of zeros in the left
/// operand to beat the packed dense core (17/20 = 85%).
const SPARSE_NUM: usize = 17;
const SPARSE_DEN: usize = 20;

/// True when the zero-skip loop is both profitable (`a` mostly zeros) and
/// safe (`b` entirely finite, so skipped `0·b` terms are exactly zero and
/// cannot swallow a NaN/Inf).
fn prefers_sparse(a: &[f32], b: &[f32]) -> bool {
    let zeros = a.iter().filter(|v| **v == 0.0).count();
    zeros * SPARSE_DEN >= a.len() * SPARSE_NUM && b.iter().all(|v| v.is_finite())
}

/// Multiplies two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
///
/// Dispatches to the blocked GEMM core ([`crate::gemm::gemm_f32`]), or to a
/// zero-skipping loop when the left operand is heavily pruned and the right
/// operand is finite. Both paths fold `k` in ascending order per output
/// element, so dispatch never changes results on finite inputs.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[m, k]` and `b` is
/// `[k, n]`.
///
/// ```
/// use diva_tensor::{ops::matmul, Tensor};
///
/// # fn main() -> Result<(), diva_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 || a.dims()[1] != b.dims()[0] {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    if m * n * k > SPARSE_MIN_MNK && prefers_sparse(ad, bd) {
        for i in 0..m {
            let a_row = &ad[i * k..(i + 1) * k];
            let o_row = &mut od[i * n..(i + 1) * n];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue; // exact: b is all-finite, so 0·b contributes +0
                }
                let b_row = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    } else {
        gemm::gemm_f32(
            m,
            n,
            k,
            ad,
            Layout::RowMajor,
            bd,
            Layout::RowMajor,
            od,
            &mut gemm::NoEpilogue,
        );
    }
    Ok(out)
}

/// `a^T x b` without materialising the transpose: `[k, m]^T x [k, n] -> [m, n]`.
///
/// Used in dense-layer backward passes where the weight gradient is
/// `x^T · dy`. Same dispatch rule as [`matmul`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[k, m]` and `b` is
/// `[k, n]`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 || a.dims()[0] != b.dims()[0] {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    if m * n * k > SPARSE_MIN_MNK && prefers_sparse(ad, bd) {
        for kk in 0..k {
            let a_row = &ad[kk * m..(kk + 1) * m];
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let o_row = &mut od[i * n..(i + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    } else {
        gemm::gemm_f32(
            m,
            n,
            k,
            ad,
            Layout::Transposed,
            bd,
            Layout::RowMajor,
            od,
            &mut gemm::NoEpilogue,
        );
    }
    Ok(out)
}

/// `a x b^T`: `[m, k] x [n, k]^T -> [m, n]`.
///
/// Used in dense-layer backward passes where the input gradient is
/// `dy · W` with `W` stored `[out, in]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[m, k]` and `b` is
/// `[n, k]`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 || a.dims()[1] != b.dims()[1] {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[0];
    let mut out = Tensor::zeros(&[m, n]);
    gemm::gemm_f32(
        m,
        n,
        k,
        a.data(),
        Layout::RowMajor,
        b.data(),
        Layout::Transposed,
        out.data_mut(),
        &mut gemm::NoEpilogue,
    );
    Ok(out)
}

/// Fused dense layer forward: `x [n, in] · w [out, in]^T + bias [out]`.
///
/// Equivalent to `matmul_a_bt(x, w)` followed by a broadcast bias add, but
/// the bias lands in the GEMM epilogue while the output row is still hot.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent shapes.
pub fn dense_forward(x: &Tensor, w: &Tensor, bias: &Tensor) -> Result<Tensor> {
    if x.shape().rank() != 2
        || w.shape().rank() != 2
        || x.dims()[1] != w.dims()[1]
        || bias.dims() != [w.dims()[0]]
    {
        return Err(TensorError::ShapeMismatch {
            op: "dense_forward",
            lhs: x.dims().to_vec(),
            rhs: w.dims().to_vec(),
        });
    }
    let (m, k) = (x.dims()[0], x.dims()[1]);
    let n = w.dims()[0];
    let mut out = Tensor::zeros(&[m, n]);
    // Weights are the B operand and fixed across attack steps — fetch their
    // packed panels from the content-addressed cache when the shape actually
    // takes the packing path (small shapes would pay the hash for nothing).
    let pre = gemm::blocked_path(m, n, k)
        .then(|| crate::packcache::pack_f32_b(w.data(), Layout::Transposed, k, n));
    gemm::gemm_f32_pre(
        m,
        n,
        k,
        x.data(),
        Layout::RowMajor,
        w.data(),
        Layout::Transposed,
        pre.as_deref(),
        out.data_mut(),
        &mut gemm::BiasCols(bias.data()),
    );
    Ok(out)
}

/// Numerically stable softmax along the last dimension of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `logits` is not rank-2.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax_rows requires rank 2");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    let data = out.data_mut();
    for i in 0..n {
        let row = &mut data[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
    out
}

/// Natural-log of softmax along the last dimension of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `logits` is not rank-2.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "log_softmax_rows requires rank 2");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    let data = out.data_mut();
    for i in 0..n {
        let row = &mut data[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
        for x in row.iter_mut() {
            *x -= log_sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]).unwrap() * b.at(&[kk, j]).unwrap();
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5 - 2.0).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..20).map(|x| (x as f32).sin()).collect(), &[4, 5]);
        let fast = matmul(&a, &b).unwrap();
        assert!(fast.allclose(&naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn transposed_variants_match() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.1).collect(), &[2, 6]);
        // a^T b via explicit transpose
        let expect = matmul(&a.transpose(), &b).unwrap();
        assert!(matmul_at_b(&a, &b).unwrap().allclose(&expect, 1e-5));

        let c = Tensor::from_vec((0..18).map(|x| x as f32 * 0.3).collect(), &[6, 3]);
        let expect = matmul(&a, &c.transpose()).unwrap();
        assert!(matmul_a_bt(&a, &c).unwrap().allclose(&expect, 1e-5));
    }

    #[test]
    fn dense_forward_is_matmul_a_bt_plus_bias() {
        let x = Tensor::from_vec((0..15).map(|v| v as f32 * 0.2 - 1.0).collect(), &[3, 5]);
        let w = Tensor::from_vec((0..20).map(|v| (v as f32).cos()).collect(), &[4, 5]);
        let bias = Tensor::from_vec(vec![0.5, -1.0, 0.0, 2.0], &[4]);
        let fused = dense_forward(&x, &w, &bias).unwrap();
        let unfused = matmul_a_bt(&x, &w).unwrap().add(&bias);
        assert_eq!(fused.data(), unfused.data());
        assert!(dense_forward(&x, &w, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn sparse_dispatch_matches_dense_path() {
        // Shape above the sparsity-scan threshold, left operand ~94% zeros:
        // the pruned path must produce the same values as the dense core.
        let (m, k, n) = (40, 48, 40);
        let mut av = vec![0.0f32; m * k];
        let mut bv = vec![0.0f32; k * n];
        let mut state = 1u32;
        let mut next = move || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / (1u32 << 24) as f32 * 2.0 - 1.0
        };
        for (i, v) in av.iter_mut().enumerate() {
            if i % 16 == 0 {
                *v = next();
            }
        }
        for v in bv.iter_mut() {
            *v = next();
        }
        let a = Tensor::from_vec(av, &[m, k]);
        let b = Tensor::from_vec(bv, &[k, n]);
        let sparse = matmul(&a, &b).unwrap();
        // Force the dense path by breaking the sparsity ratio with a
        // value-preserving trick: compare against the naive reference.
        assert!(sparse.allclose(&naive_matmul(&a, &b), 1e-4));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1001.0, 999.0], &[2, 3]);
        let s = softmax_rows(&t);
        for i in 0..2 {
            let row_sum: f32 = s.row(i).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // Stability: huge logits must not produce NaN.
        assert!(s.data().iter().all(|x| x.is_finite()));
        // Monotone: bigger logit, bigger probability.
        assert!(s.at(&[0, 2]).unwrap() > s.at(&[0, 0]).unwrap());
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]);
        let p = softmax_rows(&t);
        let lp = log_softmax_rows(&t);
        for j in 0..3 {
            assert!((p.at(&[0, j]).unwrap().ln() - lp.at(&[0, j]).unwrap()).abs() < 1e-5);
        }
    }
}
