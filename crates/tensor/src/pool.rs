//! Pooling kernels: max pooling (with argmax-routing backward) and global
//! average pooling.

use crate::{Result, Tensor, TensorError};

/// 2-D max pooling over NCHW input with a `k`×`k` window and given stride.
///
/// Returns the pooled tensor and the flat argmax index of each output element
/// (into the input buffer), which the backward pass uses to route gradients.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the input is not rank 4 or the
/// window does not fit.
pub fn max_pool2d(x: &Tensor, k: usize, stride: usize) -> Result<(Tensor, Vec<usize>)> {
    if x.shape().rank() != 4 || x.dims()[2] < k || x.dims()[3] < k {
        return Err(TensorError::ShapeMismatch {
            op: "max_pool2d",
            lhs: x.dims().to_vec(),
            rhs: vec![k, k],
        });
    }
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut arg = vec![0usize; n * c * oh * ow];
    let xd = x.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0;
                    for ky in 0..k {
                        for kx in 0..k {
                            let idx = base + (oy * stride + ky) * w + (ox * stride + kx);
                            if xd[idx] > best {
                                best = xd[idx];
                                best_i = idx;
                            }
                        }
                    }
                    od[obase + oy * ow + ox] = best;
                    arg[obase + oy * ow + ox] = best_i;
                }
            }
        }
    }
    Ok((out, arg))
}

/// Backward pass of [`max_pool2d`]: routes each upstream gradient to the
/// input position that produced the max.
pub fn max_pool2d_backward(dy: &Tensor, arg: &[usize], input_dims: &[usize]) -> Tensor {
    let mut dx = Tensor::zeros(input_dims);
    let dd = dy.data();
    let dxd = dx.data_mut();
    for (g, &src) in dd.iter().zip(arg) {
        dxd[src] += g;
    }
    dx
}

/// Global average pooling: `[n, c, h, w] -> [n, c]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the input is not rank 4.
pub fn global_avg_pool(x: &Tensor) -> Result<Tensor> {
    if x.shape().rank() != 4 {
        return Err(TensorError::ShapeMismatch {
            op: "global_avg_pool",
            lhs: x.dims().to_vec(),
            rhs: vec![0, 0, 0, 0],
        });
    }
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let area = (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    let xd = x.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            od[ni * c + ci] = xd[base..base + h * w].iter().sum::<f32>() / area;
        }
    }
    Ok(out)
}

/// Backward pass of [`global_avg_pool`]: spreads each gradient uniformly over
/// the spatial positions it averaged.
pub fn global_avg_pool_backward(dy: &Tensor, input_dims: &[usize]) -> Tensor {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let area = (h * w) as f32;
    let mut dx = Tensor::zeros(input_dims);
    let dd = dy.data();
    let dxd = dx.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let g = dd[ni * c + ci] / area;
            let base = (ni * c + ci) * h * w;
            for v in &mut dxd[base..base + h * w] {
                *v = g;
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_known_values() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let (y, arg) = max_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let (_, arg) = max_pool2d(&x, 2, 2).unwrap();
        let dy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let dx = max_pool2d_backward(&dy, &arg, &[1, 1, 4, 4]);
        assert_eq!(dx.data()[5], 1.0);
        assert_eq!(dx.data()[7], 2.0);
        assert_eq!(dx.data()[13], 3.0);
        assert_eq!(dx.data()[15], 4.0);
        assert_eq!(dx.sum(), 10.0);
    }

    #[test]
    fn gap_and_backward() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let dy = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let dx = global_avg_pool_backward(&dy, &[1, 2, 2, 2]);
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_shape_errors() {
        assert!(max_pool2d(&Tensor::zeros(&[2, 2]), 2, 2).is_err());
        assert!(max_pool2d(&Tensor::zeros(&[1, 1, 1, 1]), 2, 2).is_err());
        assert!(global_avg_pool(&Tensor::zeros(&[3, 3])).is_err());
    }
}
